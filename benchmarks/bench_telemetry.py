"""Disabled-mode overhead benchmark for :mod:`repro.telemetry`.

The telemetry layer promises that the two hot loops — functional-sim
dispatch and the cycle-sim tick — run within 2% of their uninstrumented
throughput when ``REPRO_TELEMETRY`` is off.  The guarantee is structural:
instrumentation is installed at *setup* time (machine construction,
production-set installation), so the disabled dispatch path executes the
same bytecode as before the telemetry PR.  This benchmark pins both
halves of that claim:

* **structural** — a machine built with telemetry disabled has no opcode
  counting wrapper and its engine carries no telemetry sink; building
  with telemetry enabled installs both.  These assertions always run and
  are what actually guarantees zero steady-state overhead.
* **measured** — interleaved min-of-k timings of a functional run and a
  cycle replay with telemetry disabled vs enabled.  Two independent
  disabled series (A and B) bound the machine's noise floor; under
  ``REPRO_BENCH_STRICT=1`` the disabled series must agree within 2%
  (catching any accidental always-on instrumentation) and the structural
  invariants are re-asserted.

Writes ``benchmarks/BENCH_telemetry.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_telemetry.py [--scale 0.1] [--repeats 3]

or via pytest (``pytest benchmarks/bench_telemetry.py``).
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.acf.mfi import attach_mfi
from repro.harness.parallel import FUNCTIONAL_DISE, MAX_STEPS
from repro.sim.config import MachineConfig
from repro.sim.cycle import simulate_trace
from repro.telemetry import profile as _profile
from repro.telemetry import registry as _telemetry
from repro.telemetry import tracing as _tracing
from repro.workloads.generator import generate_benchmark
from repro.workloads.specint import get_profile

_BENCH_DIR = Path(__file__).parent


def _build_machine(image, enabled):
    """Construct an instrumented (or not) machine for one functional run."""
    with _telemetry.enabled_scope(enabled):
        installation = attach_mfi(image, "dise4")
        return installation.make_machine(FUNCTIONAL_DISE)


def _time_functional(image, enabled):
    machine = _build_machine(image, enabled)
    t0 = time.perf_counter()
    with _telemetry.enabled_scope(enabled):
        machine.run(max_steps=MAX_STEPS)
    return time.perf_counter() - t0


def _time_cycle(trace, enabled, iterations=20):
    # A single warm replay is a few milliseconds under the outcome engine
    # (memoised columns), well inside scheduler noise — time a batch and
    # report the per-replay mean so the 2% strict-mode spread bound still
    # has a usable noise floor.
    config = MachineConfig()
    t0 = time.perf_counter()
    with _telemetry.enabled_scope(enabled):
        for _ in range(iterations):
            simulate_trace(trace, config, warm_start=True)
    return (time.perf_counter() - t0) / iterations


def check_structural_invariants(image):
    """The actual zero-overhead guarantee: disabled builds carry no hooks."""
    from repro.sim.functional import Machine
    from repro.verify.observe import Observer

    disabled = _build_machine(image, False)
    assert disabled._opcode_counts is None, \
        "telemetry-disabled machine installed an opcode counting wrapper"
    assert disabled.engine is None or disabled.engine._tm is None, \
        "telemetry-disabled engine carries a telemetry sink"
    # The verification observer follows the same setup-time contract: a
    # machine built without one dispatches through the unwrapped bound
    # method, byte-identical to the pre-verify build.
    assert disabled._observer is None, \
        "observer-less machine carries a verification observer"
    assert disabled._execute.__func__ is Machine._execute_fast, \
        "observer-less machine dispatches through a wrapper"
    enabled = _build_machine(image, True)
    assert enabled._opcode_counts is not None, \
        "telemetry-enabled machine did not install the counting wrapper"
    assert enabled.engine is not None and enabled.engine._tm is not None, \
        "telemetry-enabled engine did not build its telemetry sink"
    with _telemetry.enabled_scope(False):
        observed = attach_mfi(image, "dise4").make_machine(
            FUNCTIONAL_DISE, observer=Observer("full"))
    assert observed._observer is not None, \
        "observer-built machine did not install the observation hook"
    assert getattr(observed._execute, "__func__", None) \
        is not Machine._execute_fast, \
        "observer-built machine left dispatch unwrapped"


def check_tracing_invariants(image):
    """Tracing/profiling keep PR 3's disabled-mode dispatch contract.

    With ``REPRO_TRACE`` and ``REPRO_TRACE_PROFILE`` off — merely
    *importable* is not enough to change anything — a machine still
    dispatches through the unwrapped bound method, stays on the
    translated tier, and carries no profile state.  Enabling the
    profiler attaches attribution dicts but, on the translated tier,
    still leaves dispatch unwrapped (the hooks live in the superblock
    runner, one dict bump per block execution).
    """
    from repro.sim.functional import Machine

    assert not _tracing.enabled() and not _profile.enabled(), \
        "tracing/profiling knobs leaked into the benchmark environment"
    plain = _build_machine(image, False)
    assert plain._profile is None, \
        "profiler-disabled machine carries profile state"
    assert plain._execute.__func__ is Machine._execute_fast, \
        "profiler-disabled machine dispatches through a wrapper"
    assert plain._translated, \
        "profiler-disabled machine fell off the translated tier"
    with _profile.profile_scope(True):
        profiled = _build_machine(image, False)
    assert profiled._profile is not None and \
        profiled._profile["tier"] == "translated", \
        "profiler-enabled machine did not attach translated-tier state"
    assert profiled._execute.__func__ is Machine._execute_fast, \
        "profiler-enabled translated machine wrapped dispatch"


def _time_profiled_functional(image):
    with _profile.profile_scope(True):
        machine = _build_machine(image, False)
    t0 = time.perf_counter()
    with _profile.profile_scope(True):
        machine.run(max_steps=MAX_STEPS)
    return time.perf_counter() - t0


def run_tracing_benchmark(scale=0.1, repeats=3, bench="bzip2"):
    """Tracing/profiler overhead: structural asserts plus warm-run timing.

    ``profiled_overhead_pct`` measures the hot-path profiler on a *warm
    translated* run (telemetry off, so the translated tier stays active)
    against the plain disabled baseline; the attribution is
    block-granular, so it must stay under 10%.
    """
    image = generate_benchmark(get_profile(bench), scale=scale)
    check_tracing_invariants(image)

    disabled, profiled = [], []
    for _ in range(repeats):
        disabled.append(_time_functional(image, False))
        profiled.append(_time_profiled_functional(image))
    base = min(disabled)
    prof = min(profiled)
    return {
        "meta": {"bench": bench, "scale": scale, "repeats": repeats},
        "timings": {
            "functional_disabled_seconds": round(base, 4),
            "functional_profiled_seconds": round(prof, 4),
            "profiled_overhead_pct": round(
                (prof / base - 1.0) * 100.0, 2) if base else None,
        },
        "structural_invariants": "ok",
    }


def run_telemetry_benchmark(scale=0.1, repeats=3, bench="bzip2"):
    """Interleaved min-of-k disabled/enabled timings for both hot loops."""
    image = generate_benchmark(get_profile(bench), scale=scale)
    check_structural_invariants(image)

    trace = _build_machine(image, False).run(max_steps=MAX_STEPS)

    samples = {"functional": {"disabled_a": [], "disabled_b": [],
                              "enabled": []},
               "cycle": {"disabled_a": [], "disabled_b": [], "enabled": []}}
    # Interleave every series within each repeat so drift (thermal, cache,
    # scheduler) lands on all of them equally.
    for _ in range(repeats):
        samples["functional"]["disabled_a"].append(
            _time_functional(image, False))
        samples["functional"]["enabled"].append(
            _time_functional(image, True))
        samples["functional"]["disabled_b"].append(
            _time_functional(image, False))
        samples["cycle"]["disabled_a"].append(_time_cycle(trace, False))
        samples["cycle"]["enabled"].append(_time_cycle(trace, True))
        samples["cycle"]["disabled_b"].append(_time_cycle(trace, False))

    def best(loop, series):
        return min(samples[loop][series])

    timings = {}
    for loop in ("functional", "cycle"):
        disabled = min(best(loop, "disabled_a"), best(loop, "disabled_b"))
        enabled = best(loop, "enabled")
        timings[loop] = {
            "disabled_seconds": round(disabled, 4),
            "enabled_seconds": round(enabled, 4),
            "enabled_overhead_pct": round(
                (enabled / disabled - 1.0) * 100.0, 2) if disabled else None,
            # Disagreement between the two disabled series bounds the noise
            # floor; a regression that instruments the disabled path shows
            # up here (and in the structural asserts) long before 2%.
            "disabled_spread_pct": round(
                abs(best(loop, "disabled_a") / best(loop, "disabled_b") - 1.0)
                * 100.0, 2),
        }

    payload = {
        "meta": {
            "bench": bench,
            "scale": scale,
            "repeats": repeats,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "timings": timings,
        "structural_invariants": "ok",
    }
    return payload


def _write_payload(payload):
    out = _BENCH_DIR / "BENCH_telemetry.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_telemetry_disabled_overhead():
    payload = run_telemetry_benchmark(
        scale=float(os.environ.get("REPRO_SCALE", "0.1")),
        repeats=int(os.environ.get("REPRO_BENCH_REPEATS", "3")),
    )
    _write_payload(payload)
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        for loop, numbers in payload["timings"].items():
            assert numbers["disabled_spread_pct"] <= 2.0, (loop, numbers)


def test_tracing_overhead():
    payload = run_tracing_benchmark(
        scale=float(os.environ.get("REPRO_SCALE", "0.1")),
        repeats=int(os.environ.get("REPRO_BENCH_REPEATS", "3")),
    )
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert payload["timings"]["profiled_overhead_pct"] <= 10.0, payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--bench", default="bzip2")
    args = parser.parse_args(argv)
    payload = run_telemetry_benchmark(scale=args.scale,
                                      repeats=args.repeats, bench=args.bench)
    payload["tracing_overhead"] = run_tracing_benchmark(
        scale=args.scale, repeats=args.repeats, bench=args.bench)["timings"]
    out = _write_payload(payload)
    print(json.dumps(payload, indent=2))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
