"""Shared fixtures for the figure-regeneration benchmarks.

Environment knobs:

* ``REPRO_BENCHMARKS`` — comma-separated benchmark subset
  (default: all twelve SPECint profiles).
* ``REPRO_SCALE`` — dynamic-length scale factor (default 1.0).
* ``REPRO_JOBS`` — parallel workers for the figure fan-out (default 1).
* ``REPRO_TRACE_CACHE`` — persistent trace-cache directory
  (``0``/``off`` disables; default ``~/.cache/repro-dise``).

Each ``bench_fig*.py`` module additionally emits a
``BENCH_<figure>.json`` wall-clock summary next to this file, so the
performance trajectory of the evaluation pipeline is tracked across PRs.
"""

import json
import os
import platform
from collections import defaultdict
from pathlib import Path

import pytest

from repro.harness import Suite
from repro.telemetry import registry as _telemetry

_BENCH_DIR = Path(__file__).parent

#: module stem -> {test name: seconds}, collected as tests finish.
_TIMINGS = defaultdict(dict)


def _benchmark_names():
    names = os.environ.get("REPRO_BENCHMARKS")
    if names:
        return tuple(name.strip() for name in names.split(",") if name.strip())
    return None


@pytest.fixture(scope="session")
def suite():
    scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    return Suite(benchmarks=_benchmark_names(), scale=scale)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


# ----------------------------------------------------------------------
# BENCH_*.json wall-clock summaries
# ----------------------------------------------------------------------
def pytest_runtest_logreport(report):
    if report.when != "call" or not report.passed:
        return
    module = Path(report.nodeid.split("::")[0]).stem
    if not module.startswith("bench_"):
        return
    test = report.nodeid.split("::")[-1]
    _TIMINGS[module][test] = round(report.duration, 3)


def pytest_sessionfinish(session, exitstatus):
    if not _TIMINGS:
        return
    meta = {
        "scale": float(os.environ.get("REPRO_SCALE", "1.0")),
        "benchmarks": os.environ.get("REPRO_BENCHMARKS", "all"),
        "jobs": os.environ.get("REPRO_JOBS", "1"),
        "trace_cache": os.environ.get("REPRO_TRACE_CACHE", "default"),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    for module, tests in _TIMINGS.items():
        out = _BENCH_DIR / f"BENCH_{module.removeprefix('bench_')}.json"
        # Some bench modules (harness, telemetry) write a richer payload
        # themselves during the session; fold the wall-clock summary into
        # it instead of clobbering.
        payload = {}
        if out.exists():
            try:
                payload = json.loads(out.read_text())
            except (OSError, ValueError):
                payload = {}
        payload.update({
            "meta": {**payload.get("meta", {}), **meta},
            "seconds": tests,
            "total_seconds": round(sum(tests.values()), 3),
        })
        if _telemetry.enabled():
            payload["telemetry"] = _telemetry.snapshot()
        out.write_text(json.dumps(payload, indent=2) + "\n")
