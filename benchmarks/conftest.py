"""Shared fixtures for the figure-regeneration benchmarks.

Environment knobs:

* ``REPRO_BENCHMARKS`` — comma-separated benchmark subset
  (default: all twelve SPECint profiles).
* ``REPRO_SCALE`` — dynamic-length scale factor (default 1.0).
"""

import os

import pytest

from repro.harness import Suite


def _benchmark_names():
    names = os.environ.get("REPRO_BENCHMARKS")
    if names:
        return tuple(name.strip() for name in names.split(",") if name.strip())
    return None


@pytest.fixture(scope="session")
def suite():
    scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    return Suite(benchmarks=_benchmark_names(), scale=scale)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
