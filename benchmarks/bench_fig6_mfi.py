"""Figure 6: memory fault isolation (Section 4.1).

Regenerates the three graphs — the implementation comparison, the I-cache
sweep, and the width sweep — and asserts the paper's qualitative claims:

* DISE MFI degrades performance less than binary rewriting.
* DISE3 (no defensive copy) beats DISE4.
* The per-expansion stall placement is costlier than the elongated pipe
  for MFI (expansion frequency ~30% >> misprediction frequency).
* Rewriting's disadvantage grows as the I-cache shrinks (its static cost)
  and as the processor widens (its relative cache-miss cost).
"""

from conftest import run_once

from repro.harness import fig6_cache, fig6_top, fig6_width


def test_fig6_top(suite, benchmark):
    table = run_once(benchmark, lambda: fig6_top(suite))
    print("\n" + table.render())

    rewrite = table.geomean("rewrite")
    dise4 = table.geomean("DISE4")
    dise3 = table.geomean("DISE3")
    stall = table.geomean("DISE4+stall")
    pipe = table.geomean("DISE4+pipe")

    assert dise4 < rewrite, "free DISE4 must beat binary rewriting"
    assert dise3 < dise4, "DISE3 executes fewer instructions than DISE4"
    assert pipe < stall, (
        "MFI expands ~30% of instructions, so per-expansion stalls must "
        "cost more than one extra pipe stage"
    )
    assert 1.0 < dise3 < rewrite


def test_fig6_cache_sweep(suite, benchmark):
    table = run_once(benchmark, lambda: fig6_cache(suite))
    print("\n" + table.render())

    # Rewriting's static cost grows as the cache shrinks: its disadvantage
    # relative to DISE3 must be at least as large at 8K as with a perfect
    # I-cache.
    gap_small = table.geomean("rewrite@8K") / table.geomean("DISE3@8K")
    gap_perfect = table.geomean("rewrite@perf") / table.geomean("DISE3@perf")
    assert gap_small >= gap_perfect * 0.98
    # DISE3 beats rewriting at every cache size.
    for label in ("8K", "32K", "128K", "perf"):
        assert table.geomean(f"DISE3@{label}") < table.geomean(f"rewrite@{label}")


def test_fig6_width_sweep(suite, benchmark):
    table = run_once(benchmark, lambda: fig6_width(suite))
    print("\n" + table.render())

    # Wider machines hide DISE's dynamic cost; rewriting keeps its static
    # cost, so DISE3's relative advantage must not collapse with width.
    # (The paper's growth trend is carried by the large-working-set
    # benchmarks; small subsets dilute it, hence the tolerance.)
    gap_2w = table.geomean("rewrite@2w") / table.geomean("DISE3@2w")
    gap_8w = table.geomean("rewrite@8w") / table.geomean("DISE3@8w")
    assert gap_8w >= gap_2w * 0.95
    for width in (2, 4, 8):
        assert (table.geomean(f"DISE3@{width}w")
                < table.geomean(f"rewrite@{width}w"))
