"""Figure 7: dynamic code decompression (Section 4.2).

Regenerates the compression-ratio feature ablation, the I-cache
performance sweep, and the RT-geometry sweep, asserting the paper's
qualitative results:

* Removing the dedicated decompressor's features (single-instruction
  compression, 2-byte codewords) degrades compression; adding DISE's
  (parameterization, branch compression) more than wins it back, ending
  better than the dedicated baseline.
* Decompression costs little at 32 KB and compensates for small I-caches.
* A 2K-entry 2-way RT comes close to a perfect RT; 512 entries hurt the
  benchmarks with large production working sets.
"""

from conftest import run_once

from repro.harness import fig7_perf, fig7_ratio, fig7_rt


def test_fig7_ratio(suite, benchmark):
    table = run_once(benchmark, lambda: fig7_ratio(suite))
    print("\n" + table.render())

    dedicated = table.geomean("dedicated")
    no_single = table.geomean("-1insn")
    no_2byte = table.geomean("-2byteCW")
    wide_entry = table.geomean("+8byteDE")
    param = table.geomean("+3param")
    dise = table.geomean("DISE")

    # The feature-removal chain monotonically degrades compression...
    assert dedicated < no_single < no_2byte < wide_entry
    # ...and the DISE features win it back:
    assert param < wide_entry, "parameterization must recover compression"
    assert dise < param, "branch compression must further help"
    assert dise < dedicated, (
        "full DISE must out-compress the dedicated decompressor (the "
        "paper's 65% vs 75%)"
    )
    # Everything compresses: ratios in (0, 1).
    for column in table.columns:
        assert 0.0 < table.geomean(column) <= 1.0


def test_fig7_perf(suite, benchmark):
    table = run_once(benchmark, lambda: fig7_perf(suite))
    print("\n" + table.render())

    # At 32 KB decompression costs little.
    assert table.geomean("DISE@32K") < 1.15
    # At 8 KB, compression compensates for the smaller cache: it must not
    # be further from 1.0 than the uncompressed program.
    assert table.geomean("DISE@8K") <= table.geomean("plain@8K") * 1.05
    # Perfect-cache runs bound the 128K runs.
    assert table.geomean("DISE@perf") <= table.geomean("DISE@8K")


def test_fig7_rt(suite, benchmark):
    table = run_once(benchmark, lambda: fig7_rt(suite))
    print("\n" + table.render())

    perfect = table.geomean("perfect")
    assert perfect <= table.geomean("2K-2way")
    # Associativity helps at equal capacity; capacity helps at equal assoc.
    assert table.geomean("2K-2way") <= table.geomean("512-2way")
    assert table.geomean("512-2way") <= table.geomean("512-DM") * 1.02
    # The 2K 2-way RT (nearly) matches perfect.
    assert table.geomean("2K-2way") <= perfect * 1.35
