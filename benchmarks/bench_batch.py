"""Cohort-throughput microbenchmark: batched lanes vs serial translated.

Measures warm steady-state *aggregate* retired instructions per second
for cohorts of 1/4/8/16 machines stepped by the batch engine
(:class:`repro.sim.batch.BatchMachine`) against the same machines run
one after another on the translated scalar tier.  All lanes share one
MFI installation, so the image-wide translation store and compiled-block
store are warm before any timed run — the regime batched fault campaigns
and figure sweeps actually execute in (the cold first batch pays the
one-off exec-compile cost instead).

Timings interleave serial and batched runs per cohort size within each
repeat and keep the best time per side.  A separate untimed pass runs a
cohort of eight with ``full``-projection observers attached and checks
the per-lane observation digests against serial runs bit-for-bit.

Merges a ``batch`` section into ``benchmarks/BENCH_sim.json`` and a
``sim_batch`` summary into ``benchmarks/BENCH_harness.json`` (both
read-merge-write: other sections are preserved).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_batch.py [--scale 1.0]

or via pytest (``pytest benchmarks/bench_batch.py``), which uses the
``REPRO_*`` environment knobs.  Under ``REPRO_BENCH_STRICT=1`` the
cohort-8 aggregate must beat serial translated by >= 5x (geomean).
"""

import argparse
import json
import math
import os
import platform
import sys
import time
from pathlib import Path

from repro.acf.mfi import attach_mfi, ensure_error_stub
from repro.harness.parallel import FUNCTIONAL_DISE, MAX_STEPS
from repro.sim.batch import BatchMachine
from repro.verify.observe import Observer
from repro.workloads import BENCHMARK_NAMES
from repro.workloads.generator import generate_benchmark
from repro.workloads.specint import get_profile

_BENCH_DIR = Path(__file__).parent

COHORTS = (1, 4, 8, 16)


def _installation(name, scale):
    image = generate_benchmark(get_profile(name), scale=scale)
    # Pre-stub so attach_mfi keeps this exact image: every machine then
    # shares the image-wide translation and compiled-block stores.
    ensure_error_stub(image)
    return attach_mfi(image, "dise3")


def _machines(installation, count):
    return [
        installation.make_machine(FUNCTIONAL_DISE, record_trace=False,
                                  dispatch="translated")
        for _ in range(count)
    ]


def _run_serial(machines):
    t0 = time.perf_counter()
    for machine in machines:
        machine.run(max_steps=MAX_STEPS)
    return time.perf_counter() - t0


def _run_batched(machines):
    cohort = BatchMachine()
    for machine in machines:
        cohort.add_lane(machine, max_steps=MAX_STEPS)
    t0 = time.perf_counter()
    cohort.run()
    elapsed = time.perf_counter() - t0
    for outcome in cohort.outcomes():
        outcome.raise_or_result(MAX_STEPS)
    return elapsed


def _digests_identical(installation, count=8):
    """Per-lane ``full`` observation digests: batched vs serial."""
    def observed(count):
        machines = _machines(installation, count)
        observers = []
        for machine in machines:
            obs = Observer("full")
            machine._install_observer(obs)
            observers.append(obs)
        return machines, observers

    serial_machines, serial_obs = observed(count)
    for machine in serial_machines:
        machine.run(max_steps=MAX_STEPS)
    batch_machines, batch_obs = observed(count)
    cohort = BatchMachine()
    for machine in batch_machines:
        cohort.add_lane(machine, max_steps=MAX_STEPS)
    cohort.run()
    for outcome in cohort.outcomes():
        outcome.raise_or_result(MAX_STEPS)
    return all(
        s.count == b.count and s.hexdigest() == b.hexdigest()
        for s, b in zip(serial_obs, batch_obs)
    )


def _profile_batch(name, scale, repeats):
    """Best aggregate rates per cohort size for one benchmark profile."""
    installation = _installation(name, scale)
    # Warm both stores: one scalar run seeds the translation store, one
    # full-width batch seeds the compiled-block store.
    _machines(installation, 1)[0].run(max_steps=MAX_STEPS)
    _run_batched(_machines(installation, max(COHORTS)))

    best_serial = {n: math.inf for n in COHORTS}
    best_batch = {n: math.inf for n in COHORTS}
    retired = {}
    for _ in range(repeats):
        for n in COHORTS:
            serial_machines = _machines(installation, n)
            best_serial[n] = min(best_serial[n], _run_serial(serial_machines))
            aggregate = sum(m.instructions for m in serial_machines)
            batch_machines = _machines(installation, n)
            best_batch[n] = min(best_batch[n], _run_batched(batch_machines))
            if sum(m.instructions for m in batch_machines) != aggregate:
                raise AssertionError(
                    f"{name}: batched cohort-{n} retired a different "
                    f"aggregate count than serial")
            retired[n] = aggregate
    return {
        "aggregate_instructions": {str(n): retired[n] for n in COHORTS},
        "instrs_per_sec": {
            "serial": {str(n): round(retired[n] / best_serial[n])
                       for n in COHORTS},
            "batch": {str(n): round(retired[n] / best_batch[n])
                      for n in COHORTS},
        },
        "speedup": {str(n): round(best_serial[n] / best_batch[n], 2)
                    for n in COHORTS},
        "digests_identical": _digests_identical(installation),
    }


def _geomean(values):
    return round(math.exp(sum(math.log(v) for v in values) / len(values)), 2)


def run_batch_benchmark(scale=1.0, repeats=2, benchmarks=None):
    """Aggregate cohort throughput across benchmark profiles."""
    names = tuple(benchmarks) if benchmarks else BENCHMARK_NAMES
    profiles = {name: _profile_batch(name, scale, repeats)
                for name in names}
    c8 = [p["speedup"]["8"] for p in profiles.values()]
    c16 = [p["speedup"]["16"] for p in profiles.values()]
    return {
        "meta": {
            "scale": scale,
            "repeats": repeats,
            "cohorts": list(COHORTS),
            "benchmarks": list(names),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "profiles": profiles,
        "summary": {
            "geomean_speedup_cohort8": _geomean(c8),
            "geomean_speedup_cohort16": _geomean(c16),
            "profiles_ge_5x_cohort8": sum(1 for s in c8 if s >= 5.0),
            "profiles_total": len(names),
            "all_digests_identical": all(
                p["digests_identical"] for p in profiles.values()),
        },
    }


def _merge_payload(payload):
    """Read-merge-write: only this benchmark's sections are replaced."""
    sim_path = _BENCH_DIR / "BENCH_sim.json"
    sim = json.loads(sim_path.read_text()) if sim_path.exists() else {}
    sim["batch"] = payload
    sim_path.write_text(json.dumps(sim, indent=2) + "\n")
    harness_path = _BENCH_DIR / "BENCH_harness.json"
    harness = (json.loads(harness_path.read_text())
               if harness_path.exists() else {})
    harness["sim_batch"] = payload["summary"]
    harness_path.write_text(json.dumps(harness, indent=2) + "\n")
    return sim_path


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_batch_cohort_throughput():
    names = os.environ.get("REPRO_BENCHMARKS")
    benchmarks = (
        tuple(n.strip() for n in names.split(",") if n.strip()) if names
        else None
    )
    payload = run_batch_benchmark(
        scale=float(os.environ.get("REPRO_SCALE", "1.0")),
        repeats=int(os.environ.get("REPRO_BENCH_REPEATS", "2")),
        benchmarks=benchmarks,
    )
    _merge_payload(payload)
    assert payload["summary"]["all_digests_identical"], \
        "batched lanes diverged from serial translated observations"
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        summary = payload["summary"]
        assert summary["geomean_speedup_cohort8"] >= 5.0, summary


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--benchmarks", help="comma-separated subset")
    args = parser.parse_args(argv)
    benchmarks = (
        tuple(args.benchmarks.split(",")) if args.benchmarks else None
    )
    payload = run_batch_benchmark(
        scale=args.scale, repeats=args.repeats, benchmarks=benchmarks
    )
    out = _merge_payload(payload)
    print(json.dumps(payload, indent=2))
    print(f"merged 'batch' into {out}")
    return 0 if payload["summary"]["all_digests_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
