"""Ablations of the reproduction's own design choices (DESIGN.md).

Not figures from the paper, but quantified justifications for the places
this model makes a choice the paper leaves open:

* **Replacement-branch prediction** — the paper's conservative design
  treats non-trigger replacement branches as predicted not-taken; this
  model optionally lets the predictor learn them via the PC:DISEPC pair.
  The ablation quantifies how much that matters for decompressed code
  (where compressed loop back-edges live inside replacement sequences).
* **Engine placement** — free vs stall vs pipe on decompression, the
  counterpart of Figure 6's MFI placement study.
"""

from conftest import run_once

from repro.acf.compression import DISE_OPTIONS
from repro.core.config import DiseConfig
from repro.harness.experiments import _machine
from repro.harness.tables import ResultTable


def _ablation_replacement_prediction(suite):
    table = ResultTable(
        "Ablation: predicting non-trigger replacement branches "
        "(decompressed execution, normalized to uncompressed)",
        ["predicted", "not-taken"],
    )
    for bench in suite.benchmarks:
        base = suite.cycles(suite.trace_plain(bench),
                            _machine(placement="free")).cycles
        trace = suite.trace_compressed(bench, DISE_OPTIONS, "DISE")
        cfg_on = _machine()
        cfg_off = _machine()
        cfg_off.predict_replacement_branches = False
        table.set(bench, "predicted",
                  suite.cycles(trace, cfg_on).cycles / base)
        table.set(bench, "not-taken",
                  suite.cycles(trace, cfg_off).cycles / base)
    return table


def test_ablation_replacement_branch_prediction(suite, benchmark):
    table = run_once(benchmark, lambda: _ablation_replacement_prediction(suite))
    print("\n" + table.render())
    # The not-taken design pays a refill on every taken compressed
    # back-edge, so it must be slower.
    assert table.geomean("not-taken") > table.geomean("predicted")


def _ablation_placement(suite):
    table = ResultTable(
        "Ablation: engine placement on decompression "
        "(normalized to uncompressed)",
        ["free", "stall", "pipe"],
    )
    for bench in suite.benchmarks:
        base = suite.cycles(suite.trace_plain(bench),
                            _machine(placement="free")).cycles
        trace = suite.trace_compressed(bench, DISE_OPTIONS, "DISE")
        for placement in ("free", "stall", "pipe"):
            cfg = _machine(placement=placement)
            table.set(bench, placement,
                      suite.cycles(trace, cfg).cycles / base)
    return table


def test_ablation_placement(suite, benchmark):
    table = run_once(benchmark, lambda: _ablation_placement(suite))
    print("\n" + table.render())
    free = table.geomean("free")
    stall = table.geomean("stall")
    pipe = table.geomean("pipe")
    assert free <= pipe
    assert free <= stall


def _ablation_rt_blocks(suite):
    """Section 2.2's RT block coalescing: read ports vs fragmentation.

    At a constrained (512-entry, 2-way) RT, larger blocks fragment the
    short decompression sequences and cost effective capacity.  (2-way
    keeps direct-mapped conflict-hash luck from obscuring the capacity
    effect.)"""
    table = ResultTable(
        "Ablation: RT block coalescing at 512 entries, 2-way "
        "(decompressed execution, normalized to uncompressed)",
        ["block=1", "block=2", "block=4"],
    )
    for bench in suite.benchmarks:
        base = suite.cycles(suite.trace_plain(bench),
                            _machine(placement="free")).cycles
        trace = suite.trace_compressed(bench, DISE_OPTIONS, "DISE")
        for block in (1, 2, 4):
            cfg = _machine(rt_entries=512, rt_assoc=2, rt_perfect=False)
            cfg.dise = cfg.dise.with_changes(rt_block_size=block)
            table.set(bench, f"block={block}",
                      suite.cycles(trace, cfg).cycles / base)
    return table


def test_ablation_rt_block_coalescing(suite, benchmark):
    table = run_once(benchmark, lambda: _ablation_rt_blocks(suite))
    print("\n" + table.render())
    # Internal fragmentation can only cost capacity at a fixed RT size.
    assert table.geomean("block=1") <= table.geomean("block=4") * 1.02
