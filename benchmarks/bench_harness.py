"""Micro-benchmark for the parallel figure harness and trace cache.

Measures three full Figure 6 regenerations (top + cache sweep + width
sweep) and checks they render identical tables:

* **serial** — ``jobs=1``, persistent cache disabled (the baseline path).
* **cold** — ``REPRO_JOBS``-style fan-out into a *fresh* cache directory.
* **warm** — a new suite over the now-populated cache.

Writes ``benchmarks/BENCH_harness.json`` with the wall-clock numbers and
speedups.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_harness.py [--jobs 4] [--scale 1.0]

or via pytest (``pytest benchmarks/bench_harness.py``), which uses the
``REPRO_*`` environment knobs and asserts table equality plus a warm-rerun
speedup.  Speedup expectations are hardware-dependent: the parallel cold
run needs multiple cores to win, so only the warm-vs-serial ratio is
asserted, and only under pytest when ``REPRO_BENCH_STRICT=1``.
"""

import argparse
import json
import multiprocessing
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.harness import Suite, fig6_cache, fig6_top, fig6_width

_BENCH_DIR = Path(__file__).parent
_FIGURES = (fig6_top, fig6_cache, fig6_width)


def _regenerate(suite):
    """Run the full Figure 6 and return the rendered tables."""
    return tuple(fn(suite).render() for fn in _FIGURES)


def run_harness_benchmark(jobs=4, scale=1.0, benchmarks=None):
    """Time serial vs cold-parallel vs warm-cached Figure 6 regeneration."""
    timings = {}
    tables = {}

    t0 = time.perf_counter()
    tables["serial"] = _regenerate(
        Suite(benchmarks=benchmarks, scale=scale, jobs=1, cache=None)
    )
    timings["serial_seconds"] = round(time.perf_counter() - t0, 2)

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as root:
        t0 = time.perf_counter()
        tables["cold"] = _regenerate(
            Suite(benchmarks=benchmarks, scale=scale, jobs=jobs, cache=root)
        )
        timings["cold_parallel_seconds"] = round(time.perf_counter() - t0, 2)

        t0 = time.perf_counter()
        tables["warm"] = _regenerate(
            Suite(benchmarks=benchmarks, scale=scale, jobs=jobs, cache=root)
        )
        timings["warm_cached_seconds"] = round(time.perf_counter() - t0, 2)

    identical = tables["serial"] == tables["cold"] == tables["warm"]
    serial = timings["serial_seconds"]

    # Telemetry must be free when off: record the disabled-mode overhead
    # of both hot loops alongside the harness numbers (see
    # bench_telemetry.py for the full structural + measured check).
    if str(_BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(_BENCH_DIR))
    from bench_telemetry import run_telemetry_benchmark, run_tracing_benchmark
    telemetry_overhead = run_telemetry_benchmark(
        scale=min(scale, 0.1), repeats=2
    )["timings"]
    # Same deal for the tracing/profiler layer: disabled-mode dispatch
    # stays structurally unwrapped, and the enabled-mode hot-path
    # profiler stays block-granular cheap on a warm translated run.
    tracing_overhead = run_tracing_benchmark(
        scale=min(scale, 0.1), repeats=2
    )["timings"]
    # Functional-dispatch summary (see bench_sim.py for the full
    # per-profile payload in BENCH_sim.json).
    from bench_sim import run_sim_benchmark
    sim_dispatch = run_sim_benchmark(
        scale=min(scale, 0.1), repeats=2,
        benchmarks=benchmarks or ("bzip2", "mcf", "parser"),
    )["summary"]
    payload = {
        "meta": {
            "jobs": jobs,
            "scale": scale,
            "benchmarks": list(benchmarks) if benchmarks else "all",
            "cpu_count": multiprocessing.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "timings": timings,
        "speedups": {
            "cold_parallel_vs_serial": round(
                serial / timings["cold_parallel_seconds"], 2
            ),
            "warm_cached_vs_serial": round(
                serial / timings["warm_cached_seconds"], 2
            ),
        },
        "tables_identical": identical,
        "telemetry_overhead": telemetry_overhead,
        "tracing_overhead": tracing_overhead,
        "sim_dispatch": sim_dispatch,
    }
    return payload, tables


def _write_payload(payload):
    # Read-merge-write: other benchmark modules (bench_batch,
    # bench_cycle) merge their own sections (sim_batch, cycle_engine)
    # into this file — preserve them regardless of run order.
    out = _BENCH_DIR / "BENCH_harness.json"
    previous = json.loads(out.read_text()) if out.exists() else {}
    for key, value in previous.items():
        payload.setdefault(key, value)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_harness_regeneration_identical_and_cached():
    names = os.environ.get("REPRO_BENCHMARKS")
    benchmarks = (
        tuple(n.strip() for n in names.split(",") if n.strip()) if names
        else None
    )
    payload, tables = run_harness_benchmark(
        jobs=int(os.environ.get("REPRO_JOBS", "2")),
        scale=float(os.environ.get("REPRO_SCALE", "1.0")),
        benchmarks=benchmarks,
    )
    _write_payload(payload)
    assert tables["serial"] == tables["cold"], \
        "parallel cold run changed the figure tables"
    assert tables["serial"] == tables["warm"], \
        "cached warm run changed the figure tables"
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert payload["speedups"]["warm_cached_vs_serial"] >= 10.0, payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--benchmarks", help="comma-separated subset")
    args = parser.parse_args(argv)
    benchmarks = (
        tuple(args.benchmarks.split(",")) if args.benchmarks else None
    )
    payload, _ = run_harness_benchmark(
        jobs=args.jobs, scale=args.scale, benchmarks=benchmarks
    )
    out = _write_payload(payload)
    print(json.dumps(payload, indent=2))
    print(f"wrote {out}")
    return 0 if payload["tables_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
