"""The Section 4 configuration table, regenerated from code defaults."""

from conftest import run_once

from repro.core.config import DiseConfig
from repro.harness import render_config_table
from repro.sim.config import KB, MachineConfig


def test_config_table(benchmark):
    text = run_once(benchmark, render_config_table)
    print("\n" + text)
    machine = MachineConfig()
    dise: DiseConfig = machine.dise
    # The paper's Section 4 parameters.
    assert machine.width == 4
    assert machine.pipeline_stages == 12
    assert machine.rob_entries == 128
    assert machine.rs_entries == 80
    assert machine.il1.size_bytes == 32 * KB
    assert machine.dl1.size_bytes == 32 * KB
    assert machine.l2.size_bytes == 1024 * KB
    assert dise.pt_entries == 32
    assert dise.rt_entries == 2048
    assert dise.rt_bytes == 16 * KB
    assert dise.simple_miss_cycles == 30
    assert dise.compose_miss_cycles == 150
    assert "32 entries" in text and "16 KB" in text
