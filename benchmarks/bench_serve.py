"""Serving-layer benchmark: session throughput, step latency, warm rate.

Drives the DISE simulation server the way the CI smoke job does — two
tenants opening sessions on the *same* image and stepping them round-robin
through an LRU machine pool — and measures what the serving layer is for:

* **sessions/sec** — open → step-to-halt → result → close, end to end;
* **p50/p99 step latency** — per ``step`` request, in-process (envelope
  only) and over TCP loopback (envelope + framing + socket);
* **warm-store hit rate** — the fraction of machine builds that bound
  warm to the shared ``image._translation_store`` entry.  The first
  tenant's first build translates; every later build (including all of
  the second tenant's) must re-bind warm, so the second tenant's warm
  rate is the cross-tenant sharing figure of merit (>= 0.9 required);
* **digest match** — every served digest is checked against
  :func:`repro.serve.session.batch_digest`, the byte-for-byte oracle.

Telemetry must stay *off* here: ``REPRO_TELEMETRY=1`` disables the
translated dispatch tier (digests are unchanged but nothing binds warm),
which would make the warm-rate gate meaningless.

Writes ``benchmarks/BENCH_serve.json`` next to this file.  Run
standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py [--tenants 2]

or via pytest (``pytest benchmarks/bench_serve.py``).  Under
``REPRO_BENCH_STRICT=1`` the digest and warm-rate gates become hard
failures standalone as well.
"""

import argparse
import asyncio
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

from repro.serve.client import InProcessClient, TcpClient
from repro.serve.loadgen import run_load
from repro.serve.server import ReproServer, ServerCore

_BENCH_DIR = Path(__file__).parent

#: The canonical serving spec (same as the CI smoke and tests/test_serve).
SPEC = {"benchmark": "gzip", "scale": 0.05, "acf": "dise3"}


def _in_process_summary(tenants, sessions, steps, pool):
    core = ServerCore(pool_capacity=pool)
    return run_load(
        lambda tenant: InProcessClient(core, tenant=tenant),
        tenants=tenants, sessions=sessions, spec=dict(SPEC), steps=steps,
        check_batch=True,
    )


def _tcp_summary(tenants, sessions, steps, pool):
    """The same cohort over TCP loopback (framing + socket overhead)."""
    server = ReproServer(core=ServerCore(pool_capacity=pool))
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    holder = {}

    async def _main():
        await server.start()
        ready.set()
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass

    def _thread():
        asyncio.set_event_loop(loop)
        holder["task"] = loop.create_task(_main())
        try:
            loop.run_until_complete(holder["task"])
            # Drain lingering per-connection handlers before closing.
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
        finally:
            loop.close()

    thread = threading.Thread(target=_thread, name="bench-serve",
                              daemon=True)
    thread.start()
    if not ready.wait(10):
        raise RuntimeError("bench server did not start")
    try:
        return run_load(
            lambda tenant: TcpClient("127.0.0.1", server.port,
                                     tenant=tenant),
            tenants=tenants, sessions=sessions, spec=dict(SPEC),
            steps=steps, check_batch=True,
        )
    finally:
        loop.call_soon_threadsafe(holder["task"].cancel)
        thread.join(10)


def run_serve_benchmark(tenants=2, sessions=3, steps=5000, pool=2):
    in_process = _in_process_summary(tenants, sessions, steps, pool)
    tcp = _tcp_summary(tenants, sessions, steps, pool)
    second = in_process["per_tenant"].get("tenant1") or {}
    return {
        "meta": {
            "spec": dict(SPEC),
            "tenants": tenants,
            "sessions_per_tenant": sessions,
            "steps_per_request": steps,
            "pool_capacity": pool,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "in_process": in_process,
        "tcp": tcp,
        "summary": {
            "sessions_per_s": in_process["sessions_per_s"],
            "tcp_sessions_per_s": tcp["sessions_per_s"],
            "step_latency_ms": in_process["step_latency_ms"],
            "tcp_step_latency_ms": tcp["step_latency_ms"],
            "second_tenant_warm_rate": second.get("warm_rate"),
            "digest_matches": bool(in_process["digest_matches"]
                                   and tcp["digest_matches"]),
        },
    }


def _merge_payload(payload):
    """Read-merge-write so conftest's wall-clock fold is preserved."""
    out = _BENCH_DIR / "BENCH_serve.json"
    existing = {}
    if out.exists():
        try:
            existing = json.loads(out.read_text())
        except (OSError, ValueError):
            existing = {}
    existing.update(payload)
    out.write_text(json.dumps(existing, indent=2) + "\n")
    return out


def _check_gates(payload, strict):
    summary = payload["summary"]
    assert summary["digest_matches"], (
        "served digests diverged from the batch oracle: "
        + json.dumps(payload["in_process"]["failures"]
                     + payload["tcp"]["failures"])
    )
    warm_rate = summary["second_tenant_warm_rate"]
    message = (f"second tenant warm-store hit rate {warm_rate} < 0.9 — "
               "cross-tenant translation sharing is broken")
    if strict:
        assert warm_rate is not None and warm_rate >= 0.9, message
    elif warm_rate is None or warm_rate < 0.9:
        print(f"WARNING: {message}", file=sys.stderr)


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_serve_throughput():
    payload = run_serve_benchmark(
        tenants=int(os.environ.get("REPRO_SERVE_BENCH_TENANTS", "2")),
        sessions=int(os.environ.get("REPRO_SERVE_BENCH_SESSIONS", "3")),
    )
    _merge_payload(payload)
    # Digest equality and the cross-tenant warm rate are correctness
    # gates, not perf gates: they hold on any machine.
    _check_gates(payload, strict=True)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="serving-layer throughput/latency benchmark")
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument("--sessions", type=int, default=3,
                        help="sessions per tenant (default 3)")
    parser.add_argument("--steps", type=int, default=5000,
                        help="retirements per step request (default 5000)")
    parser.add_argument("--pool", type=int, default=2,
                        help="machine-pool capacity (default 2)")
    args = parser.parse_args(argv)
    payload = run_serve_benchmark(tenants=args.tenants,
                                  sessions=args.sessions,
                                  steps=args.steps, pool=args.pool)
    out = _merge_payload(payload)
    print(json.dumps(payload["summary"], indent=2, sort_keys=True))
    print(f"wrote {out}", file=sys.stderr)
    _check_gates(payload,
                 strict=os.environ.get("REPRO_BENCH_STRICT") == "1")
    return 0


if __name__ == "__main__":
    sys.exit(main())
