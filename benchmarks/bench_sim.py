"""Interpreter-throughput microbenchmark: translated vs fast vs generic.

Measures retired dynamic instructions per second for the three functional
dispatch tiers (see docs/performance.md) across the twelve SPECint
profiles, each running under its MFI installation so the translation
cache's pre-bound expansion bodies are exercised.  Tracing is off — this
isolates dispatch cost from trace recording.

Timings interleave the tiers within each repeat (drift lands on all of
them equally) and keep the best rate per tier.  Repeats deliberately
reuse one installation: the translated tier's superblocks live on the
image, shared across machines, so later repeats measure the warm steady
state — the regime figure sweeps, fault campaigns, and verify oracles
actually run in.

Writes ``benchmarks/BENCH_sim.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_sim.py [--scale 1.0] [--repeats 3]

or via pytest (``pytest benchmarks/bench_sim.py``), which uses the
``REPRO_*`` environment knobs.  Under ``REPRO_BENCH_STRICT=1`` the
translated tier must beat the fast tier by >= 1.5x on at least 8 of the
12 profiles.
"""

import argparse
import json
import math
import os
import platform
import sys
import time
from pathlib import Path

from repro.acf.mfi import attach_mfi
from repro.harness.parallel import FUNCTIONAL_DISE, MAX_STEPS
from repro.workloads import BENCHMARK_NAMES
from repro.workloads.generator import generate_benchmark
from repro.workloads.specint import get_profile

_BENCH_DIR = Path(__file__).parent

DISPATCH_TIERS = ("generic", "fast", "translated")


def _time_tier(installation, dispatch):
    """One timed functional run; returns (seconds, run outcome tuple)."""
    machine = installation.make_machine(
        FUNCTIONAL_DISE, record_trace=False, dispatch=dispatch
    )
    t0 = time.perf_counter()
    result = machine.run(max_steps=MAX_STEPS)
    elapsed = time.perf_counter() - t0
    outcome = (tuple(result.outputs), result.fault_code,
               result.instructions, result.expansions)
    return elapsed, outcome


def _profile_throughput(name, scale, repeats):
    """Best instrs/sec per dispatch tier for one benchmark profile."""
    image = generate_benchmark(get_profile(name), scale=scale)
    installation = attach_mfi(image, "dise3")
    best = {tier: math.inf for tier in DISPATCH_TIERS}
    outcomes = {}
    for _ in range(repeats):
        for tier in DISPATCH_TIERS:
            elapsed, outcome = _time_tier(installation, tier)
            best[tier] = min(best[tier], elapsed)
            outcomes[tier] = outcome
    instructions = outcomes["generic"][2]
    rates = {tier: instructions / best[tier] for tier in DISPATCH_TIERS}
    return {
        "instructions": instructions,
        "expansions": outcomes["generic"][3],
        "instrs_per_sec": {t: round(rates[t]) for t in DISPATCH_TIERS},
        "speedup": {
            "translated_vs_fast": round(
                rates["translated"] / rates["fast"], 2),
            "translated_vs_generic": round(
                rates["translated"] / rates["generic"], 2),
            "fast_vs_generic": round(rates["fast"] / rates["generic"], 2),
        },
        # All three tiers must retire the same program: identical outputs,
        # fault code, retirement count, and expansion count.
        "outcomes_identical": len(set(outcomes.values())) == 1,
    }


def _geomean(values):
    return round(math.exp(sum(math.log(v) for v in values) / len(values)), 2)


def run_sim_benchmark(scale=1.0, repeats=3, benchmarks=None):
    """Throughput of the three dispatch tiers across benchmark profiles."""
    names = tuple(benchmarks) if benchmarks else BENCHMARK_NAMES
    profiles = {name: _profile_throughput(name, scale, repeats)
                for name in names}
    tf = [p["speedup"]["translated_vs_fast"] for p in profiles.values()]
    tg = [p["speedup"]["translated_vs_generic"] for p in profiles.values()]
    return {
        "meta": {
            "scale": scale,
            "repeats": repeats,
            "benchmarks": list(names),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "profiles": profiles,
        "summary": {
            "geomean_translated_vs_fast": _geomean(tf),
            "geomean_translated_vs_generic": _geomean(tg),
            "profiles_ge_1p5x_translated_vs_fast": sum(
                1 for s in tf if s >= 1.5),
            "profiles_total": len(names),
            "all_outcomes_identical": all(
                p["outcomes_identical"] for p in profiles.values()),
        },
    }


def _write_payload(payload):
    out = _BENCH_DIR / "BENCH_sim.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_dispatch_tier_throughput():
    names = os.environ.get("REPRO_BENCHMARKS")
    benchmarks = (
        tuple(n.strip() for n in names.split(",") if n.strip()) if names
        else None
    )
    payload = run_sim_benchmark(
        scale=float(os.environ.get("REPRO_SCALE", "1.0")),
        repeats=int(os.environ.get("REPRO_BENCH_REPEATS", "3")),
        benchmarks=benchmarks,
    )
    _write_payload(payload)
    assert payload["summary"]["all_outcomes_identical"], \
        "dispatch tiers disagreed on a program outcome"
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        summary = payload["summary"]
        assert summary["profiles_ge_1p5x_translated_vs_fast"] >= min(
            8, summary["profiles_total"]), summary


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--benchmarks", help="comma-separated subset")
    args = parser.parse_args(argv)
    benchmarks = (
        tuple(args.benchmarks.split(",")) if args.benchmarks else None
    )
    payload = run_sim_benchmark(
        scale=args.scale, repeats=args.repeats, benchmarks=benchmarks
    )
    out = _write_payload(payload)
    print(json.dumps(payload, indent=2))
    print(f"wrote {out}")
    return 0 if payload["summary"]["all_outcomes_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
