"""Warm config-sweep throughput: outcome engine vs the reference loop.

The figure harness replays each trace under dozens of machine
configurations (Figures 6-8: placements, widths, RT geometries, cache
sizes).  This benchmark measures that regime directly: per SPECint
profile it builds one MFI trace, checks every ``CycleResult`` field is
bit-identical between the two engines over a 12-config sweep, then
times warm full-sweep replays for each engine (interleaved, best-of-k)
and reports replays per second.  A separate telemetry pass over a
fresh (serialization round-tripped, so memo-free) trace records the
per-component outcome-memo hit rates the sweep achieves.

Merges a ``cycle`` section into ``benchmarks/BENCH_sim.json`` and a
``cycle_engine`` summary into ``benchmarks/BENCH_harness.json`` (both
read-merge-write: other sections are preserved).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_cycle.py [--scale 0.3]

or via pytest (``pytest benchmarks/bench_cycle.py``), which uses the
``REPRO_*`` environment knobs.  Under ``REPRO_BENCH_STRICT=1`` the
geomean warm-sweep speedup must be >= 3x with every result identical.
"""

import argparse
import dataclasses
import json
import math
import os
import platform
import sys
import time
from pathlib import Path

from repro.acf.mfi import attach_mfi
from repro.core.config import DiseConfig
from repro.harness.trace_cache import deserialize_trace, serialize_trace
from repro.sim.config import KB, MachineConfig
from repro.sim.cycle import simulate_trace
from repro.telemetry import registry as _telemetry
from repro.workloads import BENCHMARK_NAMES
from repro.workloads.generator import generate_benchmark
from repro.workloads.specint import get_profile

_BENCH_DIR = Path(__file__).parent

_COMPONENTS = ("mem", "ctrl", "rt", "merged")


def sweep_grid():
    """A Figure 6-8 style 12-config sweep over one trace."""
    base = MachineConfig()
    return (
        ("base", base),
        ("placement-free", MachineConfig(dise=DiseConfig(placement="free"))),
        ("placement-stall",
         MachineConfig(dise=DiseConfig(placement="stall"))),
        ("placement-pipe", MachineConfig(dise=DiseConfig(placement="pipe"))),
        ("width-2", base.with_changes(width=2)),
        ("width-8", base.with_changes(width=8)),
        ("rt-tiny", MachineConfig(
            dise=DiseConfig(rt_entries=4, rt_assoc=1))),
        ("rt-64", MachineConfig(dise=DiseConfig(rt_entries=64, rt_assoc=1))),
        ("rt-perfect", MachineConfig(dise=DiseConfig(rt_perfect=True))),
        ("il1-4k", base.with_il1_size(4 * KB)),
        ("perfect-caches", base.with_changes(il1=None, dl1=None, l2=None)),
        ("no-predict-replacement",
         base.with_changes(predict_replacement_branches=False)),
    )


def _result_fields(result):
    return {f.name: getattr(result, f.name)
            for f in dataclasses.fields(result)}


def _sweep(trace, configs, engine):
    for _label, config in configs:
        simulate_trace(trace, config, warm_start=True, engine=engine)


def _memo_hit_rates(trace, configs):
    """One cold-to-warm outcome sweep on a memo-free trace copy."""
    fresh = deserialize_trace(serialize_trace(trace))
    with _telemetry.enabled_scope(True):
        before = _telemetry.snapshot()
        _sweep(fresh, configs, "outcome")
        delta = _telemetry.snapshot_delta(before, _telemetry.snapshot())

    def count(name):
        entry = delta.get(name)
        return entry["value"] if entry else 0

    rates = {}
    for component in _COMPONENTS:
        hits = count(f"cycle.outcome.{component}.hits")
        misses = count(f"cycle.outcome.{component}.misses")
        rates[component] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / (hits + misses), 3)
            if hits + misses else None,
        }
    return rates


def _profile_cycle(name, scale, repeats):
    """Equality check + warm-sweep timings for one benchmark profile."""
    image = generate_benchmark(get_profile(name), scale=scale)
    trace = attach_mfi(image, "dise4").run()
    configs = sweep_grid()

    # Equality pass over the whole grid (also warms both engines' memos,
    # so the timed sweeps below measure the steady state the harness
    # runs in).
    identical = True
    for _label, config in configs:
        ref = simulate_trace(trace, config, warm_start=True,
                             engine="reference")
        out = simulate_trace(trace, config, warm_start=True,
                             engine="outcome")
        if _result_fields(ref) != _result_fields(out):
            identical = False

    best = {"reference": math.inf, "outcome": math.inf}
    for _ in range(repeats):
        # Interleave the engines so clock drift lands on both equally.
        for engine in best:
            t0 = time.perf_counter()
            _sweep(trace, configs, engine)
            best[engine] = min(best[engine], time.perf_counter() - t0)

    replays = len(configs)
    return {
        "trace_ops": len(trace.columns.pc),
        "configs": replays,
        "replays_per_sec": {
            engine: round(replays / elapsed, 1)
            for engine, elapsed in best.items()
        },
        "speedup": round(best["reference"] / best["outcome"], 2),
        "results_identical": identical,
        "memo_hit_rates": _memo_hit_rates(trace, configs),
    }


def _geomean(values):
    return round(math.exp(sum(math.log(v) for v in values) / len(values)), 2)


def run_cycle_benchmark(scale=0.3, repeats=3, benchmarks=None):
    """Warm config-sweep throughput across benchmark profiles."""
    names = tuple(benchmarks) if benchmarks else BENCHMARK_NAMES
    profiles = {name: _profile_cycle(name, scale, repeats)
                for name in names}
    speedups = [p["speedup"] for p in profiles.values()]
    return {
        "meta": {
            "scale": scale,
            "repeats": repeats,
            "benchmarks": list(names),
            "configs_per_sweep": len(sweep_grid()),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "profiles": profiles,
        "summary": {
            "geomean_speedup": _geomean(speedups),
            "profiles_ge_3x": sum(1 for s in speedups if s >= 3.0),
            "profiles_total": len(names),
            "all_results_identical": all(
                p["results_identical"] for p in profiles.values()),
        },
    }


def _merge_payload(payload):
    """Read-merge-write: only this benchmark's sections are replaced."""
    sim_path = _BENCH_DIR / "BENCH_sim.json"
    sim = json.loads(sim_path.read_text()) if sim_path.exists() else {}
    sim["cycle"] = payload
    sim_path.write_text(json.dumps(sim, indent=2) + "\n")
    harness_path = _BENCH_DIR / "BENCH_harness.json"
    harness = (json.loads(harness_path.read_text())
               if harness_path.exists() else {})
    harness["cycle_engine"] = payload["summary"]
    harness_path.write_text(json.dumps(harness, indent=2) + "\n")
    return sim_path


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_cycle_sweep_throughput():
    names = os.environ.get("REPRO_BENCHMARKS")
    benchmarks = (
        tuple(n.strip() for n in names.split(",") if n.strip()) if names
        else None
    )
    payload = run_cycle_benchmark(
        scale=float(os.environ.get("REPRO_SCALE", "0.3")),
        repeats=int(os.environ.get("REPRO_BENCH_REPEATS", "3")),
        benchmarks=benchmarks,
    )
    _merge_payload(payload)
    assert payload["summary"]["all_results_identical"], \
        "outcome engine diverged from the reference loop"
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        summary = payload["summary"]
        assert summary["geomean_speedup"] >= 3.0, summary


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--benchmarks", help="comma-separated subset")
    args = parser.parse_args(argv)
    benchmarks = (
        tuple(args.benchmarks.split(",")) if args.benchmarks else None
    )
    payload = run_cycle_benchmark(
        scale=args.scale, repeats=args.repeats, benchmarks=benchmarks
    )
    out = _merge_payload(payload)
    print(json.dumps(payload, indent=2))
    print(f"merged 'cycle' into {out}")
    return 0 if payload["summary"]["all_results_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
