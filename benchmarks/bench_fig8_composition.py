"""Figure 8: composing decompression and fault isolation (Section 4.3).

Regenerates the composition-scheme comparison across I-cache sizes and the
RT-geometry/miss-latency sensitivity, asserting the paper's findings:

* rewrite+dedicated performs worst — rewriting bloats the text beyond what
  the dedicated compressor can reverse, catastrophically so at 8 KB.
* rewrite+DISE helps considerably: parameterized compression factors the
  fault-isolation sequences back out.
* DISE+DISE is best; its remaining sensitivity is RT capacity and the
  composing miss handler's 150-cycle latency.
"""

from conftest import run_once

from repro.harness import fig8_perf, fig8_rt


def test_fig8_perf(suite, benchmark):
    table = run_once(benchmark, lambda: fig8_perf(suite))
    print("\n" + table.render())

    # DISE+DISE wins outright at every cache size.
    for label in ("8K", "32K", "128K", "perf"):
        rd = table.geomean(f"rewrite+dedicated@{label}")
        rD = table.geomean(f"rewrite+dise@{label}")
        DD = table.geomean(f"dise+dise@{label}")
        assert DD < rd and DD < rD, (
            f"at {label}: dise+dise must win, got {DD:.2f} vs "
            f"{rD:.2f} / {rd:.2f}"
        )
    # DISE decompression reverses more of the rewriting bloat than the
    # dedicated compressor, so rewrite+dedicated suffers at least as much
    # cache pressure going perfect -> 8K (small-working-set benchmarks
    # dilute the gap, hence the tolerance).
    rd_pressure = (table.geomean("rewrite+dedicated@8K")
                   / table.geomean("rewrite+dedicated@perf"))
    rD_pressure = (table.geomean("rewrite+dise@8K")
                   / table.geomean("rewrite+dise@perf"))
    assert rd_pressure >= rD_pressure * 0.99
    # At 8K the full orderings holds up to placement noise.
    assert (table.geomean("rewrite+dise@8K")
            <= table.geomean("rewrite+dedicated@8K") * 1.03)


def test_fig8_rt(suite, benchmark):
    table = run_once(benchmark, lambda: fig8_rt(suite))
    print("\n" + table.render())

    # The long (composing) miss handler costs at least as much as the short
    # one in every geometry.
    for label in ("512-DM", "512-2way", "2K-DM", "2K-2way"):
        assert table.geomean(f"{label}@150") >= table.geomean(f"{label}@30")
    # Capacity and associativity relieve the pressure.
    assert table.geomean("2K-2way@30") <= table.geomean("512-DM@30")
    assert table.geomean("2K-2way@150") <= table.geomean("512-DM@150")
