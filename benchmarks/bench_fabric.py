"""Micro-benchmark for the execution fabric (repro.fabric).

Answers the two questions the fabric PR has to stay honest about:

* **overhead** — scheduling the warm figure sweep through the fabric
  (content-addressed task keys, duplicate coalescing, checkpoint ticks)
  versus calling the parallel harness's per-task work function in a bare
  loop.  Both sides run the *identical* warm-cache work; the delta is
  pure fabric machinery.  Soft budget: <= 5%.
* **dedupe** — the cross-campaign artifact store: a faults + verify
  back-to-back pair rerun against a warm store must serve every cell
  from the store (hit rate 1.0) and produce byte-identical reports.

Writes ``benchmarks/BENCH_fabric.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_fabric.py [--scale 0.05]

or via pytest (``pytest benchmarks/bench_fabric.py``).  The 5% overhead
budget is timing-noise-sensitive, so it is asserted only under
``REPRO_BENCH_STRICT=1``; correctness (identical results, full warm hit
rate) is asserted always.
"""

import argparse
import json
import multiprocessing
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.fabric import ArtifactStore, Fabric, Task, register_recipe
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.harness.parallel import MAX_STEPS, TraceTask, _run_task
from repro.sim.config import MachineConfig
from repro.telemetry.registry import enabled_scope, get_registry, snapshot
from repro.verify.campaign import VerifyConfig, run_verification

_BENCH_DIR = Path(__file__).parent

#: The figure-sweep shape used for the overhead measurement: every
#: benchmark x {plain, mfi, rewrite}, one default timing replay each.
_BENCHES = ("bzip2", "gzip", "mcf", "parser")
_KINDS = (("plain", None), ("mfi", "dise3"), ("rewrite", None))

_FAULTS = CampaignConfig(seed=7, faults=8, benchmarks=("gzip",), scale=0.03)
_VERIFY = VerifyConfig(benchmarks=("gzip",), scale=0.02,
                       oracles=("roundtrip", "acf_transparency"))


# ----------------------------------------------------------------------
# The overhead recipe: one warm figure-sweep cell
# ----------------------------------------------------------------------
def _sweep_cell(params):
    task = TraceTask(bench=params["bench"], scale=params["scale"],
                     kind=params["kind"], variant=params["variant"])
    digest, _, _, _ = _run_task(task, [MachineConfig()],
                                params["cache_root"], MAX_STEPS)
    return digest


register_recipe(f"{__name__}:sweep_cell", _sweep_cell)


def _sweep_params(scale, cache_root):
    return [
        {"bench": bench, "kind": kind, "variant": variant,
         "scale": scale, "cache_root": cache_root}
        for bench in _BENCHES for kind, variant in _KINDS
    ]


def run_overhead_benchmark(scale=0.05, repeats=3):
    """Time the warm sweep: bare ``_run_task`` loop vs ``Fabric.run``."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-fabric-") as root:
        cells = _sweep_params(scale, root)
        tasks = [Task(recipe=f"{__name__}:sweep_cell", params=params)
                 for params in cells]

        def direct():
            return [_sweep_cell(params) for params in cells]

        def fabric():
            engine = Fabric("bench", {"bench": "fabric"}, store=None,
                            jobs=1, backoff=0.0)
            results = engine.run(tasks)
            return [results[task.task_id] for task in tasks]

        baseline = direct()     # warm the trace cache; untimed
        direct_seconds = []
        fabric_seconds = []
        fabric_digests = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            direct()
            direct_seconds.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            fabric_digests = fabric()
            fabric_seconds.append(time.perf_counter() - t0)

    direct_best = min(direct_seconds)
    fabric_best = min(fabric_seconds)
    return {
        "cells": len(cells),
        "scale": scale,
        "repeats": repeats,
        "direct_seconds": round(direct_best, 4),
        "fabric_seconds": round(fabric_best, 4),
        "overhead_ratio": round(fabric_best / direct_best - 1.0, 4),
    }, baseline == fabric_digests


# ----------------------------------------------------------------------
# Cross-campaign dedupe against a shared artifact store
# ----------------------------------------------------------------------
def _dedupe_counters():
    snap = snapshot()
    return {
        "hits": snap.get("fabric.dedupe.hits", {}).get("value", 0),
        "misses": snap.get("fabric.dedupe.misses", {}).get("value", 0),
    }


def _pair(store):
    options = {"store": store}
    return (run_campaign(_FAULTS, fabric_options=options),
            run_verification(_VERIFY, fabric_options=options))


def run_dedupe_benchmark():
    """Faults + verify back-to-back, cold then warm, one shared store."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as root:
        store = ArtifactStore(root)
        with enabled_scope(True):
            get_registry().reset()
            cold_reports = _pair(store)
            cold = _dedupe_counters()
            get_registry().reset()
            warm_reports = _pair(store)
            warm = _dedupe_counters()
        stats = store.stats()
    total_warm = warm["hits"] + warm["misses"]
    reports_identical = all(
        json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        for a, b in zip(cold_reports, warm_reports)
    )
    return {
        "campaigns": {"faults": _FAULTS.faults,
                      "verify_cells": len(_VERIFY.cells())},
        "cold": cold,
        "warm": warm,
        "warm_hit_rate": round(warm["hits"] / total_warm, 4)
        if total_warm else 0.0,
        "store_entries": stats["artifacts"]["entries"],
        "store_bytes": stats["artifacts"]["bytes"],
        "reports_identical": reports_identical,
    }


# ----------------------------------------------------------------------
# Payload plumbing
# ----------------------------------------------------------------------
def _merge_payload(section, data):
    """Fold one section into BENCH_fabric.json without clobbering the
    other (the pytest entries run independently)."""
    out = _BENCH_DIR / "BENCH_fabric.json"
    payload = {}
    if out.exists():
        try:
            payload = json.loads(out.read_text())
        except (OSError, ValueError):
            payload = {}
    payload["meta"] = {
        **payload.get("meta", {}),
        "cpu_count": multiprocessing.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    payload[section] = data
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_fabric_overhead_on_warm_sweep():
    overhead, identical = run_overhead_benchmark(
        scale=float(os.environ.get("REPRO_SCALE", "0.05"))
    )
    _merge_payload("overhead", overhead)
    assert identical, "fabric sweep produced different digests"
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert overhead["overhead_ratio"] <= 0.05, overhead


def test_cross_campaign_dedupe_hit_rate():
    dedupe = run_dedupe_benchmark()
    _merge_payload("dedupe", dedupe)
    assert dedupe["reports_identical"], \
        "store-served rerun changed a report"
    assert dedupe["cold"]["hits"] == 0
    assert dedupe["warm_hit_rate"] == 1.0, dedupe


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    overhead, identical = run_overhead_benchmark(scale=args.scale,
                                                 repeats=args.repeats)
    _merge_payload("overhead", overhead)
    dedupe = run_dedupe_benchmark()
    out = _merge_payload("dedupe", dedupe)
    print(json.dumps({"overhead": overhead, "dedupe": dedupe}, indent=2))
    print(f"wrote {out}")
    ok = (identical and dedupe["reports_identical"]
          and dedupe["warm_hit_rate"] == 1.0)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
