"""Synthetic benchmark generator.

Emits complete, runnable Alpha-like programs from a
:class:`~repro.workloads.profiles.BenchmarkProfile`.  A program is a set of
leaf functions (hot ones called every outer-loop iteration, cold ones mostly
never executed — modelling cold library text) whose bodies are drawn from a
small library of integer idioms with controlled redundancy:

* *exact* redundancy re-emits a previously generated concrete sequence —
  what an unparameterized (dedicated-decompressor) dictionary can exploit;
* *shape* redundancy re-emits a previous idiom with a fresh register
  binding — additionally exploitable by DISE's parameterized dictionary
  entries (Figure 4's lda/ldq/cmplt/bne example is exactly this pattern).

Branch behaviour is data-dependent: functions test values from a biased 0/1
flags array initialised from the profile's seed, so the branch predictor
sees realistic, profile-controlled predictability.

Programs never touch the registers the MFI binary rewriter scavenges
(t8-t11), keep all memory accesses inside the data segment, and halt after a
fixed number of outer iterations, emitting a checksum via ``out`` for
end-to-end identity checks.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.isa.build import (
    Imm,
    addq,
    and_,
    beq,
    bis,
    bne,
    bsr,
    cmovne,
    cmplt,
    halt,
    jsr,
    lda,
    ldq,
    mov,
    mulq,
    out,
    ret,
    sll,
    srl,
    stq,
    subq,
    xor,
)
from repro.isa.registers import ZERO_REG, parse_reg
from repro.program.builder import ProgramBuilder
from repro.program.image import ProgramImage
from repro.workloads.profiles import BenchmarkProfile

# Register conventions (MFI's scavenged t8-t11 and the assembler temp are
# never used).
RA = parse_reg("ra")
SP = parse_reg("sp")
PV = parse_reg("pv")      # t12: indirect-call target register
S0, S4 = parse_reg("s0"), parse_reg("s4")
A4, A5 = parse_reg("a4"), parse_reg("a5")   # function pointer / trip counter
T7 = parse_reg("t7")                         # branch-test scratch
V0 = parse_reg("v0")

#: General-purpose pool for idiom operands.
REG_POOL = tuple(
    parse_reg(name) for name in
    ("v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6", "a0", "a1", "a2", "a3")
)

#: Byte offsets used inside idioms (stay within the first 256 B of an array;
#: the inner loop strides at most 14 * 8 B past them, well inside bounds).
#: A wide pool keeps *exact* instruction-level repetition realistic — real
#: compiled code repeats instruction shapes far more often than exact bits.
OFFSETS = tuple(range(0, 256, 8))

NUM_ARRAYS = 4
ARRAY_WORDS = 512          # 4 KB per array minimum; grown to fit data_kb
STACK_WORDS = 256


class _IdiomLibrary:
    """Emits idiom instances with profile-controlled redundancy."""

    def __init__(self, rng: random.Random, profile: BenchmarkProfile):
        self.rng = rng
        self.profile = profile
        #: previously emitted concrete sequences (exact reuse).
        self.concrete: List[List] = []
        #: previously chosen (idiom id, immediates) shapes (shape reuse).
        self.shapes: List[Tuple] = []

    def next_block(self, pointer_reg: int) -> List:
        rng = self.rng
        if self.concrete and rng.random() < self.profile.exact_redundancy:
            return list(rng.choice(self.concrete))
        if self.shapes and rng.random() < self.profile.shape_redundancy:
            idiom_id, imms = rng.choice(self.shapes)
        else:
            idiom_id = rng.randrange(len(_IDIOMS))
            imms = _IDIOMS[idiom_id].pick_imms(rng)
            self.shapes.append((idiom_id, imms))
        regs = rng.sample(REG_POOL, 3)
        seq = _IDIOMS[idiom_id].emit(regs, imms, pointer_reg)
        self.concrete.append(seq)
        return list(seq)


class _Idiom:
    """One idiom template: fixed opcode shape, variable regs/immediates."""

    def __init__(self, name, pick_imms, emit):
        self.name = name
        self.pick_imms = pick_imms
        self.emit = emit


def _imm_off(rng):
    return (rng.choice(OFFSETS),)


def _imm_off_k(rng):
    return (rng.choice(OFFSETS), rng.choice((1, 2, 4, 8)))


def _imm_two_off(rng):
    off = rng.choice(OFFSETS[:-1])
    return (off, off + 8)


_IDIOMS = (
    # load-modify-store
    _Idiom(
        "lms", _imm_off_k,
        lambda r, imm, p: [
            ldq(r[0], imm[0], p),
            addq(r[0], Imm(imm[1]), r[0]),
            stq(r[0], imm[0], p),
        ],
    ),
    # accumulate
    _Idiom(
        "acc", _imm_off,
        lambda r, imm, p: [
            ldq(r[0], imm[0], p),
            addq(r[1], r[0], r[1]),
            xor(r[1], r[0], r[2]),
        ],
    ),
    # compare / conditional move (max-style reduction)
    _Idiom(
        "cmpmov", _imm_off,
        lambda r, imm, p: [
            ldq(r[0], imm[0], p),
            cmplt(r[1], r[0], r[2]),
            cmovne(r[2], r[0], r[1]),
        ],
    ),
    # shift-mask hash step
    _Idiom(
        "hash", _imm_off_k,
        lambda r, imm, p: [
            srl(r[0], Imm(imm[1]), r[1]),
            and_(r[1], Imm(63), r[1]),
            xor(r[1], r[0], r[0]),
            sll(r[0], Imm(1), r[0]),
        ],
    ),
    # multiply-accumulate
    _Idiom(
        "mac", _imm_off_k,
        lambda r, imm, p: [
            ldq(r[0], imm[0], p),
            mulq(r[0], Imm(imm[1]), r[1]),
            addq(r[2], r[1], r[2]),
        ],
    ),
    # store pair (record update)
    _Idiom(
        "stpair", _imm_two_off,
        lambda r, imm, p: [
            addq(r[0], r[1], r[2]),
            stq(r[2], imm[0], p),
            stq(r[0], imm[1], p),
        ],
    ),
    # Figure 4's list-walk idiom: lda/ldq/cmplt
    _Idiom(
        "fig4", _imm_off_k,
        lambda r, imm, p: [
            lda(r[0], imm[1], r[0]),
            ldq(r[1], imm[0], p),
            cmplt(r[1], r[2], r[2]),
        ],
    ),
)


def _array_name(index: int) -> str:
    return f"arr{index}"


class WorkloadGenerator:
    """Builds one synthetic benchmark program."""

    def __init__(self, profile: BenchmarkProfile, scale: float = 1.0):
        self.profile = profile
        self.scale = scale
        self.rng = random.Random(profile.seed)
        self.builder = ProgramBuilder()
        self.idioms = _IdiomLibrary(self.rng, profile)

    # ------------------------------------------------------------------
    def generate(self) -> ProgramImage:
        profile = self.profile
        rng = self.rng
        builder = self.builder

        self._allocate_data()

        hot_names = [f"f_hot{i}" for i in range(profile.hot_functions)]
        cold_names = [f"f_cold{i}" for i in range(profile.cold_functions)]

        self._emit_main(hot_names, cold_names)
        for name in hot_names:
            self._emit_function(name, trips=profile.inner_trips)
        for name in cold_names:
            self._emit_function(name, trips=1)

        builder.set_entry("main")
        return builder.build()

    # ------------------------------------------------------------------
    def _allocate_data(self):
        profile = self.profile
        rng = self.rng
        total_words = max(profile.data_kb * 1024 // 8,
                          NUM_ARRAYS * ARRAY_WORDS)
        words_per_array = total_words // NUM_ARRAYS
        for index in range(NUM_ARRAYS):
            if index == 0:
                # Biased 0/1 flags array drives data-dependent branches.
                init = [
                    1 if rng.random() < profile.branch_bias else 0
                    for _ in range(min(words_per_array, 2048))
                ]
            else:
                init = [
                    rng.getrandbits(32) for _ in range(min(words_per_array, 2048))
                ]
            self.builder.alloc_data(_array_name(index), words_per_array,
                                    init=init)
        self.builder.alloc_data("stack", STACK_WORDS)

    # ------------------------------------------------------------------
    def _emit_main(self, hot_names, cold_names):
        profile = self.profile
        rng = self.rng
        builder = self.builder
        iterations = max(1, round(profile.iterations * self.scale))

        builder.label("main")
        builder.load_address(SP, "stack")
        builder.emit(lda(SP, (STACK_WORDS - 8) * 8, SP))
        builder.emit(bis(ZERO_REG, ZERO_REG, S4))         # checksum

        # Touch a sample of cold functions once (cold-start code).
        for name in cold_names[:max(1, len(cold_names) // 10)]:
            builder.emit(bsr(RA, name))
            builder.emit(xor(S4, V0, S4))

        builder.emit(lda(S0, iterations, ZERO_REG))       # outer counter
        builder.label("outer")
        for name in hot_names:
            if rng.random() < profile.indirect_call_frac:
                builder.load_address(PV, name)
                builder.emit(jsr(RA, PV))
            else:
                builder.emit(bsr(RA, name))
            builder.emit(xor(S4, V0, S4))
        builder.emit(stq(S4, 0, SP))                      # stack traffic
        builder.emit(ldq(S4, 0, SP))
        builder.emit(subq(S0, Imm(1), S0))
        builder.emit(bne(S0, "outer"))
        builder.emit(out(S4))                             # checksum
        builder.emit(halt())

    # ------------------------------------------------------------------
    def _emit_function(self, name: str, trips: int):
        profile = self.profile
        rng = self.rng
        builder = self.builder

        array = _array_name(rng.randrange(NUM_ARRAYS))
        flags = _array_name(0)
        loop_label = f".{name}_loop"

        builder.label(name)
        builder.load_address(A4, array)
        builder.emit(lda(A5, trips, ZERO_REG))
        builder.label(loop_label)

        for block in range(profile.blocks_per_function):
            builder.emit_many(self.idioms.next_block(A4))
            if rng.random() < 0.45:
                # Data-dependent branch over the next block.
                skip = builder.fresh_label(f"{name}_s")
                flag_off = rng.choice(OFFSETS)
                if array == flags:
                    builder.emit(ldq(T7, flag_off, A4))
                else:
                    builder.load_address(T7, flags)
                    builder.emit(ldq(T7, flag_off, T7))
                builder.emit(bne(T7, skip) if rng.random() < 0.5
                             else beq(T7, skip))
                builder.emit_many(self.idioms.next_block(A4))
                builder.label(skip)

        builder.emit(lda(A4, 8, A4))                      # stride
        builder.emit(subq(A5, Imm(1), A5))
        builder.emit(bne(A5, loop_label))
        builder.emit(mov(REG_POOL[1], V0))                # result
        builder.emit(ret(RA))


def reseed_data(image: ProgramImage, profile: BenchmarkProfile,
                 data_seed: int) -> ProgramImage:
    """A data-segment variant of ``image`` for cohort seed sweeps.

    Re-rolls the initial array contents (same layout, same biased-flags
    discipline as :meth:`WorkloadGenerator._allocate_data`) from a seed
    derived from ``data_seed``, leaving the text segment untouched.  The
    variant *shares* the base image's text lists by reference — and with
    them the image-wide translation/batch stores, which key on text and
    productions only — so a cohort over data seeds pays translation and
    compilation once.
    """
    total_words = max(profile.data_kb * 1024 // 8, NUM_ARRAYS * ARRAY_WORDS)
    words_per_array = total_words // NUM_ARRAYS
    rng = random.Random(f"{profile.seed}:data:{data_seed}")
    data_words = dict(image.data_words)
    for index in range(NUM_ARRAYS):
        base = image.data_base + index * words_per_array * 8
        count = min(words_per_array, 2048)
        if index == 0:
            init = [1 if rng.random() < profile.branch_bias else 0
                    for _ in range(count)]
        else:
            init = [rng.getrandbits(32) for _ in range(count)]
        for offset, value in enumerate(init):
            data_words[base + offset * 8] = value
    variant = ProgramImage(
        instructions=image.instructions,
        addresses=image.addresses,
        sizes=image.sizes,
        target_index=image.target_index,
        symbols=image.symbols,
        entry_index=image.entry_index,
        text_base=image.text_base,
        data_base=image.data_base,
        data_words=data_words,
        data_size=image.data_size,
        load_addresses=image.load_addresses,
    )
    # Share the image-wide caches: translations and compiled superblocks
    # depend only on text + productions, both identical across variants.
    for attr in ("_translation_store", "_batch_store"):
        store = getattr(image, attr, None)
        if store is None:
            store = {}
            setattr(image, attr, store)
        setattr(variant, attr, store)
    return variant


def generate_benchmark(profile: BenchmarkProfile, scale: float = 1.0,
                       data_seed: Optional[int] = None) -> ProgramImage:
    """Generate the synthetic program for one benchmark profile.

    ``data_seed`` (cohort runs) re-rolls the initial data segment from a
    derived seed while keeping the text segment — and therefore every
    text-keyed cache — identical to the base image.
    """
    image = WorkloadGenerator(profile, scale=scale).generate()
    if data_seed is not None:
        image = reseed_data(image, profile, data_seed)
    return image


def generate_by_name(name: str, scale: float = 1.0,
                     data_seed: Optional[int] = None) -> ProgramImage:
    """Generate a benchmark by SPECint name (see repro.workloads.specint)."""
    from repro.workloads.specint import get_profile

    return generate_benchmark(get_profile(name), scale=scale,
                              data_seed=data_seed)
