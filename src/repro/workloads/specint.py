"""The twelve SPECint2000 benchmark profiles (Section 4's benchmark set).

Calibration targets, following the paper's observations:

* "Most of the SPEC2000 benchmarks — except for crafty, gzip, and vpr —
  have uncompressed instruction working sets smaller than 32KB.  About half
  have working sets larger than 8KB" (Section 4.2).  A hot function here is
  ~50-60 instructions (~220 bytes), so hot working set ≈ hot_functions ×
  0.22 KB.
* gcc has by far the largest static text; mcf the smallest and the most
  memory-bound; bzip2/gzip are small-code, loop-dominated compressors;
  crafty and vortex have large, branchy working sets.
* MFI expands roughly 30% of dynamic instructions (Section 4.1), so the
  load+store dynamic fraction sits near that figure; the generator's idiom
  mix produces comparable fractions.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.profiles import BenchmarkProfile

#  name      seed  hot cold blk trips iter exact shape bias data_kb
SPECINT2000: List[BenchmarkProfile] = [
    BenchmarkProfile("bzip2",   101,  20,  30, 5, 12, 5, 0.12, 0.55, 0.85,  96),
    BenchmarkProfile("crafty",  102, 200,  60, 5,  3, 3, 0.08, 0.50, 0.70,  64),
    BenchmarkProfile("eon",     103,  45,  90, 5,  6, 6, 0.14, 0.55, 0.80,  48),
    BenchmarkProfile("gap",     104,  40, 120, 5,  6, 6, 0.12, 0.55, 0.80, 128),
    BenchmarkProfile("gcc",     105, 120, 420, 5,  4, 3, 0.12, 0.60, 0.72, 160),
    BenchmarkProfile("gzip",    106, 190,  25, 5,  3, 2, 0.12, 0.50, 0.88,  96),
    BenchmarkProfile("mcf",     107,  12,  20, 5, 14, 8, 0.10, 0.45, 0.65, 512),
    BenchmarkProfile("parser",  108,  35,  80, 5,  8, 5, 0.12, 0.55, 0.68,  96),
    BenchmarkProfile("perlbmk", 109,  55, 200, 5,  6, 4, 0.15, 0.60, 0.75, 128),
    BenchmarkProfile("twolf",   110,  40,  70, 5,  8, 5, 0.11, 0.52, 0.70,  96),
    BenchmarkProfile("vortex",  111,  80, 260, 5,  5, 4, 0.15, 0.60, 0.80, 192),
    BenchmarkProfile("vpr",     112, 190,  45, 5,  3, 2, 0.11, 0.52, 0.72,  96),
]

PROFILE_BY_NAME: Dict[str, BenchmarkProfile] = {
    profile.name: profile for profile in SPECINT2000
}

BENCHMARK_NAMES = tuple(profile.name for profile in SPECINT2000)


def get_profile(name: str) -> BenchmarkProfile:
    """Look up one of the twelve benchmark profiles by name."""
    try:
        return PROFILE_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}"
        ) from None
