"""Benchmark profiles for the synthetic SPECint2000 workload generator.

The paper evaluates on SPEC2000 integer benchmarks compiled for Alpha EV6.
We cannot ship SPEC; instead each benchmark is modelled by a profile of the
characteristics the evaluation actually exercises:

* static text size (compression-ratio experiments),
* hot-code working set (I-cache experiments at 8/32/128 KB),
* instruction mix and branch predictability (pipeline experiments),
* data working set (D-cache behaviour),
* code redundancy (how much the compressor can find).

The numbers are calibrated to published SPECint2000 characterisations at a
reduced scale (sizes in instructions, not bytes, at 4 bytes/instruction).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkProfile:
    """Shape parameters for one synthetic benchmark."""

    name: str
    seed: int
    #: Number of hot functions (executed every outer iteration).
    hot_functions: int
    #: Number of cold functions (executed once; pad static text).
    cold_functions: int
    #: Basic blocks per function body (controls function size).
    blocks_per_function: int
    #: Inner-loop trip count inside each hot function.
    inner_trips: int
    #: Outer-loop iterations (dynamic-length knob; scaled by ``scale``).
    iterations: int
    #: Probability an emitted idiom reuses a previous concrete sequence
    #: verbatim (exact redundancy — what unparameterized compression finds).
    exact_redundancy: float
    #: Probability an emitted idiom reuses a previous *shape* with fresh
    #: registers/immediates (what parameterization additionally finds).
    shape_redundancy: float
    #: Probability a data-dependent branch's condition is true (bias toward
    #: 1.0 or 0.0 means predictable; 0.5 means hard to predict).
    branch_bias: float
    #: Data working set in KB.
    data_kb: int
    #: Fraction of hot functions reached through an indirect call.
    indirect_call_frac: float = 0.15

    @property
    def approx_static_instrs(self) -> int:
        """Rough static text size in instructions."""
        per_function = self.blocks_per_function * 7 + 8
        return (self.hot_functions + self.cold_functions) * per_function + 64
