"""Synthetic SPECint2000-profile workloads (the paper's benchmark set)."""

from repro.workloads.generator import (
    WorkloadGenerator,
    generate_benchmark,
    generate_by_name,
)
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.specint import (
    BENCHMARK_NAMES,
    PROFILE_BY_NAME,
    SPECINT2000,
    get_profile,
)

__all__ = [
    "WorkloadGenerator",
    "generate_benchmark",
    "generate_by_name",
    "BenchmarkProfile",
    "BENCHMARK_NAMES",
    "PROFILE_BY_NAME",
    "SPECINT2000",
    "get_profile",
]
