"""Application customization functions (ACFs) built on DISE.

Transparent ACFs: memory fault isolation (:mod:`repro.acf.mfi`),
store-address tracing (:mod:`repro.acf.tracing`), path profiling
(:mod:`repro.acf.profiling`), code assertions (:mod:`repro.acf.assertions`),
reference monitors (:mod:`repro.acf.monitor`).

Aware ACFs: dynamic code decompression (:mod:`repro.acf.compression`).

Compositions: simultaneous decompression + fault isolation
(:mod:`repro.acf.composition`).
"""

from repro.acf.assertions import (
    WATCH_FAULT_CODE,
    attach_value_assertion,
    attach_watchpoint,
)
from repro.acf.base import AcfInstallation, plain_installation
from repro.acf.dsm import attach_dsm, lines_present, remote_misses
from repro.acf.specialization import (
    Specializer,
    attach_specialization,
    plant_specializations,
    specialized_sequence,
)
from repro.acf.composition import (
    COMPOSITION_SCHEMES,
    build_composition,
    compose_dise_dise,
    compose_rewrite_dedicated,
    compose_rewrite_dise,
)
from repro.acf.compression import (
    CompressionError,
    CompressionOptions,
    CompressionResult,
    DEDICATED_OPTIONS,
    DISE_OPTIONS,
    FIGURE7_VARIANTS,
    compress_image,
    compress_installation,
)
from repro.acf.mfi import (
    MFI_FAULT_CODE,
    MfiError,
    attach_mfi,
    mfi_production_set,
    mfi_production_source,
    rewrite_mfi,
)
from repro.acf.monitor import POLICY_FAULT_CODE, attach_monitor
from repro.acf.profiling import attach_path_profiling, read_path_counters
from repro.acf.tracing import attach_sat, read_trace_buffer

__all__ = [
    "WATCH_FAULT_CODE",
    "attach_value_assertion",
    "attach_watchpoint",
    "attach_dsm",
    "lines_present",
    "remote_misses",
    "Specializer",
    "attach_specialization",
    "plant_specializations",
    "specialized_sequence",
    "AcfInstallation",
    "plain_installation",
    "COMPOSITION_SCHEMES",
    "build_composition",
    "compose_dise_dise",
    "compose_rewrite_dedicated",
    "compose_rewrite_dise",
    "CompressionError",
    "CompressionOptions",
    "CompressionResult",
    "DEDICATED_OPTIONS",
    "DISE_OPTIONS",
    "FIGURE7_VARIANTS",
    "compress_image",
    "compress_installation",
    "MFI_FAULT_CODE",
    "MfiError",
    "attach_mfi",
    "mfi_production_set",
    "mfi_production_source",
    "rewrite_mfi",
    "POLICY_FAULT_CODE",
    "attach_monitor",
    "attach_path_profiling",
    "read_path_counters",
    "attach_sat",
    "read_trace_buffer",
]
