"""Path profiling via "bit tracing" — Section 3.1 (other transparent ACFs).

Productions for conditional branches shift each branch's outcome into a
path register (``$dr6``).  At acyclic-path endpoints — function returns —
a counter associated with the (endpoint PC xor path-history) tag is
incremented in a fixed-size table and the path register is reset.  A
post-execution pass reads the table; as the paper notes, the scheme may be
lossy (tags can collide), which profile consumers tolerate.

The branch outcome is recomputed from the test register with a compare in
the replacement sequence — the trigger branch executes unchanged as the
last instruction, so post-branch semantics follow the trigger-branch
predicted-path rule of Section 2.1.
"""

from __future__ import annotations

from typing import Dict

from repro.acf.base import AcfInstallation
from repro.core.directives import Lit, T_PC, T_RS, TrigField
from repro.core.pattern import PatternSpec
from repro.core.production import ProductionSet
from repro.core.replacement import (
    TRIGGER_INSN,
    ReplacementInstr,
    ReplacementSpec,
)
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import ZERO_REG, dise_reg
from repro.program.image import ProgramImage

DR_PATH = dise_reg(6)      # path (branch-history) register
DR_TMP = dise_reg(7)       # scratch for outcome / counter arithmetic

#: log2 of the counter-table size (entries).  The tag mask must fit the
#: 8-bit operate literal of the masking instruction, so 256 entries — the
#: scheme is deliberately lossy (Section 3.1: "the counter maintenance
#: scheme may be lossy").
TABLE_BITS = 8
TABLE_ENTRIES = 1 << TABLE_BITS

#: Which compare reconstructs "branch taken" from the test register.
_OUTCOME_OP = {
    Opcode.BEQ: Opcode.CMPEQ,    # taken iff ra == 0
    Opcode.BNE: Opcode.CMPULT,   # taken iff 0 < ra (unsigned)
    Opcode.BLT: Opcode.CMPLT,    # taken iff ra < 0
    Opcode.BLE: Opcode.CMPLE,    # taken iff ra <= 0
}


def _branch_production(opcode: Opcode) -> ReplacementSpec:
    """sequence: outcome -> $dr7; path = (path << 1) | outcome; trigger."""
    cmp_op = _OUTCOME_OP[opcode]
    if opcode is Opcode.BNE:
        # taken iff ra != 0: cmpult zero, ra
        outcome = ReplacementInstr(
            opcode=cmp_op, ra=Lit(ZERO_REG), rb=T_RS, rc=Lit(DR_TMP)
        )
    else:
        outcome = ReplacementInstr(
            opcode=cmp_op, ra=T_RS, rb=Lit(ZERO_REG), rc=Lit(DR_TMP)
        )
    return ReplacementSpec(
        name=f"path-{opcode.mnemonic}",
        instrs=(
            outcome,
            ReplacementInstr(opcode=Opcode.SLL, ra=Lit(DR_PATH), imm=Lit(1),
                             rc=Lit(DR_PATH)),
            ReplacementInstr(opcode=Opcode.BIS, ra=Lit(DR_PATH),
                             rb=Lit(DR_TMP), rc=Lit(DR_PATH)),
            TRIGGER_INSN,
        ),
    )


def _endpoint_production(table_base: int) -> ReplacementSpec:
    """Count the finished path at a return and reset the path register.

    tag = (T.PC >> 2) xor path; slot = table_base + (tag & mask) * 8.
    """
    mask = TABLE_ENTRIES - 1
    # $dr7 = T.PC; tag/index arithmetic in $dr7; $dr4 used as value scratch.
    dr4 = dise_reg(4)
    return ReplacementSpec(
        name="path-endpoint",
        instrs=(
            ReplacementInstr(opcode=Opcode.BIS, ra=Lit(ZERO_REG),
                             imm=T_PC, rc=Lit(DR_TMP)),
            ReplacementInstr(opcode=Opcode.SRL, ra=Lit(DR_TMP), imm=Lit(2),
                             rc=Lit(DR_TMP)),
            ReplacementInstr(opcode=Opcode.XOR, ra=Lit(DR_TMP),
                             rb=Lit(DR_PATH), rc=Lit(DR_TMP)),
            ReplacementInstr(opcode=Opcode.AND, ra=Lit(DR_TMP),
                             imm=Lit(mask & 0xFF), rc=Lit(DR_TMP)),
            ReplacementInstr(opcode=Opcode.SLL, ra=Lit(DR_TMP), imm=Lit(3),
                             rc=Lit(DR_TMP)),
            ReplacementInstr(opcode=Opcode.LDA, ra=Lit(dr4),
                             rb=Lit(DR_TMP), imm=Lit(0)),
            # $dr7 = table_base + offset (table base loaded via $dr5 at init)
            ReplacementInstr(opcode=Opcode.ADDQ, ra=Lit(dr4),
                             rb=Lit(dise_reg(5)), rc=Lit(DR_TMP)),
            ReplacementInstr(opcode=Opcode.LDQ, ra=Lit(dr4),
                             rb=Lit(DR_TMP), imm=Lit(0)),
            ReplacementInstr(opcode=Opcode.ADDQ, ra=Lit(dr4), imm=Lit(1),
                             rc=Lit(dr4)),
            ReplacementInstr(opcode=Opcode.STQ, ra=Lit(dr4),
                             rb=Lit(DR_TMP), imm=Lit(0)),
            ReplacementInstr(opcode=Opcode.BIS, ra=Lit(ZERO_REG),
                             rb=Lit(ZERO_REG), rc=Lit(DR_PATH)),
            TRIGGER_INSN,
        ),
    )


def path_profiling_production_set(table_base: int) -> ProductionSet:
    """Bit-tracing productions for conditional branches plus returns."""
    pset = ProductionSet("path-profile", scope="kernel")
    for opcode in _OUTCOME_OP:
        pset.define(PatternSpec(opcode=opcode), _branch_production(opcode),
                    name=f"P-{opcode.mnemonic}")
    pset.define(PatternSpec(opcode=Opcode.RET),
                _endpoint_production(table_base), name="P-ret")
    return pset


def attach_path_profiling(image: ProgramImage) -> AcfInstallation:
    """Install the path profiler; the counter table follows the data segment."""
    table_base = image.data_base + image.data_size + (1 << 20)

    def init(machine):
        machine.regs[dise_reg(5)] = table_base
        machine.regs[DR_PATH] = 0

    installation = AcfInstallation(
        image=image,
        production_sets=[path_profiling_production_set(table_base)],
        init_machine=init,
        name="path-profile",
    )
    installation.table_base = table_base
    return installation


def read_path_counters(result, table_base) -> Dict[int, int]:
    """Non-zero path counters from a finished run (slot index -> count)."""
    counters = {}
    for slot in range(TABLE_ENTRIES):
        value = result.final_memory.read(table_base + slot * 8)
        if value:
            counters[slot] = value
    return counters
