"""Fine-grain distributed shared memory checks — Section 3.1.

Software DSM built on virtual memory shares at page granularity; fine-grain
systems (the paper cites Shasta) instead instrument every memory operation
to test whether it touches shared data and whether that data is locally
present.  "DISE productions for these checks are similar to those used for
memory fault isolation ... a DISE-capable machine can be configured to have
the appearance of hardware-supported fine-grained DSM without custom
hardware."

This module implements the access-check half of such a system over the
simulator's single address space:

* a shared address range ``[lo, hi)`` (dedicated registers ``$dr2``/``$dr3``);
* a per-line presence table (base in ``$dr5``, one word per
  ``LINE_BYTES``-byte line);
* every load/store to the shared range checks presence; an absent line is
  "fetched" — its presence word is set and the remote-miss counter
  (``$dr6``) is bumped — entirely inside the replacement sequence, using
  DISE-internal control flow only.

Private accesses skip the machinery via two range checks, mirroring
Shasta's fast-path/slow-path structure.
"""

from __future__ import annotations

from repro.errors import AcfConfigError
from repro.acf.base import AcfInstallation
from repro.core.directives import Lit, T_IMM, T_RS
from repro.core.pattern import match_loads, match_stores
from repro.core.production import ProductionSet
from repro.core.replacement import (
    TRIGGER_INSN,
    ReplacementInstr,
    ReplacementSpec,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import ZERO_REG, dise_reg
from repro.program.image import ProgramImage

#: Granularity of sharing (a cache-line-sized block, as in Shasta).
LINE_BYTES = 64
_LINE_SHIFT = 6

DR_VALUE = dise_reg(0)    # presence word scratch
DR_TEST = dise_reg(1)     # comparison scratch
DR_LO = dise_reg(2)       # shared range [lo, hi)
DR_HI = dise_reg(3)
DR_ADDR = dise_reg(4)     # effective address / table offset scratch
DR_TABLE = dise_reg(5)    # presence-table base
DR_MISSES = dise_reg(6)   # remote-fetch counter


def dsm_check_spec() -> ReplacementSpec:
    """The per-access check-and-fetch sequence (see module docstring)."""
    end = 14   # DISEPC of the trigger copy
    instrs = (
        # 0: effective address
        ReplacementInstr(opcode=Opcode.LDA, ra=Lit(DR_ADDR), rb=T_RS,
                         imm=T_IMM),
        # 1-2: below the shared range -> private fast path
        ReplacementInstr(opcode=Opcode.CMPULT, ra=Lit(DR_ADDR),
                         rb=Lit(DR_LO), rc=Lit(DR_TEST)),
        ReplacementInstr(opcode=Opcode.DBNE, ra=Lit(DR_TEST), imm=Lit(end)),
        # 3-4: at/above the top -> private fast path
        ReplacementInstr(opcode=Opcode.CMPULT, ra=Lit(DR_ADDR),
                         rb=Lit(DR_HI), rc=Lit(DR_TEST)),
        ReplacementInstr(opcode=Opcode.DBEQ, ra=Lit(DR_TEST), imm=Lit(end)),
        # 5-8: presence-table slot address
        ReplacementInstr(opcode=Opcode.SUBQ, ra=Lit(DR_ADDR),
                         rb=Lit(DR_LO), rc=Lit(DR_ADDR)),
        ReplacementInstr(opcode=Opcode.SRL, ra=Lit(DR_ADDR),
                         imm=Lit(_LINE_SHIFT), rc=Lit(DR_ADDR)),
        ReplacementInstr(opcode=Opcode.SLL, ra=Lit(DR_ADDR), imm=Lit(3),
                         rc=Lit(DR_ADDR)),
        ReplacementInstr(opcode=Opcode.ADDQ, ra=Lit(DR_ADDR),
                         rb=Lit(DR_TABLE), rc=Lit(DR_ADDR)),
        # 9-10: present? -> done
        ReplacementInstr(opcode=Opcode.LDQ, ra=Lit(DR_VALUE),
                         rb=Lit(DR_ADDR), imm=Lit(0)),
        ReplacementInstr(opcode=Opcode.DBNE, ra=Lit(DR_VALUE), imm=Lit(end)),
        # 11-13: "fetch" the line: mark present, count the miss
        ReplacementInstr(opcode=Opcode.BIS, ra=Lit(ZERO_REG), imm=Lit(1),
                         rc=Lit(DR_VALUE)),
        ReplacementInstr(opcode=Opcode.STQ, ra=Lit(DR_VALUE),
                         rb=Lit(DR_ADDR), imm=Lit(0)),
        ReplacementInstr(opcode=Opcode.ADDQ, ra=Lit(DR_MISSES), imm=Lit(1),
                         rc=Lit(DR_MISSES)),
        # 14: the original access
        TRIGGER_INSN,
    )
    return ReplacementSpec(instrs=instrs, name="dsm-check")


def dsm_production_set() -> ProductionSet:
    """DSM check productions for loads and stores."""
    pset = ProductionSet("dsm", scope="kernel")
    spec = dsm_check_spec()
    seq_id = pset.add_replacement(0, spec)
    pset.add_production(match_loads(), seq_id=seq_id, name="P-load")
    pset.add_production(match_stores(), seq_id=seq_id, name="P-store")
    return pset


def attach_dsm(image: ProgramImage, shared_lo: int,
               shared_hi: int) -> AcfInstallation:
    """Install fine-grain DSM checks over ``[shared_lo, shared_hi)``.

    The presence table is placed past the program's data segment, one word
    per 64-byte line, initially all-absent.
    """
    if shared_hi <= shared_lo:
        raise AcfConfigError("empty shared range")
    if (shared_hi - shared_lo) % LINE_BYTES:
        raise AcfConfigError("shared range must be line-aligned in size")
    table_base = image.data_base + image.data_size + (2 << 20)

    def init(machine):
        machine.regs[DR_LO] = shared_lo
        machine.regs[DR_HI] = shared_hi
        machine.regs[DR_TABLE] = table_base
        machine.regs[DR_MISSES] = 0

    installation = AcfInstallation(
        image=image,
        production_sets=[dsm_production_set()],
        init_machine=init,
        name="dsm",
    )
    installation.table_base = table_base
    installation.shared_range = (shared_lo, shared_hi)
    return installation


def remote_misses(result) -> int:
    """Remote line fetches performed during a finished run."""
    return result.final_regs[DR_MISSES]


def lines_present(result, installation) -> int:
    """Number of shared lines marked present at the end of a run."""
    lo, hi = installation.shared_range
    count = 0
    for line in range((hi - lo) // LINE_BYTES):
        if result.final_memory.read(installation.table_base + line * 8):
            count += 1
    return count
