"""Composed ACFs: simultaneous decompression + memory fault isolation.

Section 4.3 evaluates three implementations of the composition:

* ``rewrite+dedicated`` — fault isolation by binary rewriting, then the
  dedicated decoder-based decompressor over the bloated text.
* ``rewrite+dise`` — fault isolation by binary rewriting, then DISE
  decompression (parameterized, branch-compressing) over the result.
* ``dise+dise`` — the paper's model: the server compresses the *unmodified*
  application; the client composes the transparent MFI productions into the
  aware decompression dictionary by inlining (Section 3.3, transparent with
  aware).  Because aware productions live in the application's data segment,
  composition runs in the RT miss handler — composed sequences carry the
  long (150-cycle) miss latency.

Each builder returns ``(CompressionResult, AcfInstallation)`` so experiments
can report both static sizes and runtime behaviour.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import AcfConfigError
from repro.acf.base import AcfInstallation
from repro.acf.compression import (
    CompressionOptions,
    CompressionResult,
    DEDICATED_OPTIONS,
    DISE_OPTIONS,
    compress_image,
)
from repro.acf.mfi import (
    DR_CODE_SEG,
    DR_DATA_SEG,
    attach_mfi,
    ensure_error_stub,
    mfi_production_set,
    rewrite_mfi,
    segment_ids,
)
from repro.core.compose import nest
from repro.core.production import ProductionSet
from repro.program.image import ProgramImage

#: The composition strategies of Figure 8, in presentation order.
COMPOSITION_SCHEMES = ("rewrite+dedicated", "rewrite+dise", "dise+dise")


def _mfi_init(image: ProgramImage):
    data_seg, code_seg = segment_ids(image)

    def init(machine):
        machine.regs[DR_DATA_SEG] = data_seg
        machine.regs[DR_CODE_SEG] = code_seg

    return init


def compose_rewrite_dedicated(image: ProgramImage
                              ) -> Tuple[CompressionResult, AcfInstallation]:
    """Binary-rewritten MFI compressed by the dedicated decompressor."""
    rewritten = rewrite_mfi(image).image
    result = compress_image(rewritten, DEDICATED_OPTIONS)
    return result, AcfInstallation(
        image=result.image,
        production_sets=[result.production_set] if result.production_set else [],
        name="rewrite+dedicated",
    )


def compose_rewrite_dise(image: ProgramImage
                         ) -> Tuple[CompressionResult, AcfInstallation]:
    """Binary-rewritten MFI compressed by DISE decompression."""
    rewritten = rewrite_mfi(image).image
    result = compress_image(rewritten, DISE_OPTIONS)
    return result, AcfInstallation(
        image=result.image,
        production_sets=[result.production_set] if result.production_set else [],
        name="rewrite+dise",
    )


def compose_dise_dise(image: ProgramImage, mfi_variant="dise3",
                      options: CompressionOptions = DISE_OPTIONS
                      ) -> Tuple[CompressionResult, AcfInstallation]:
    """DISE decompression with DISE MFI inlined into the dictionary.

    The unmodified program is compressed; the MFI productions are then
    (a) nested into every dictionary entry (fault-isolating the
    *decompressed* program, not the codewords) and (b) kept active for the
    naturally-occurring instructions that were not compressed away.
    """
    result = compress_image(image, options)
    compressed = ensure_error_stub(result.image)
    mfi = mfi_production_set(compressed, variant=mfi_variant)

    if result.production_set is not None:
        composed = nest(
            inner=result.production_set, outer=mfi,
            name="mfi(decompression)",
            composed_on_fill=True,   # composition runs in the RT miss handler
        )
        production_sets = [composed]
    else:
        production_sets = [mfi]

    installation = AcfInstallation(
        image=compressed,
        production_sets=production_sets,
        init_machine=_mfi_init(compressed),
        name="dise+dise",
    )
    # The image gained the error stub after compression; refresh the result's
    # view of it so text-size accounting includes the stub consistently.
    result = CompressionResult(
        image=compressed,
        production_set=result.production_set,
        options=result.options,
        original_text_bytes=result.original_text_bytes,
        compressed_text_bytes=compressed.text_size,
        dictionary_entries=result.dictionary_entries,
        dictionary_bytes=result.dictionary_bytes,
        instances=result.instances,
        instructions_removed=result.instructions_removed,
        dropped_branch_instances=result.dropped_branch_instances,
    )
    return result, installation


def build_composition(image: ProgramImage, scheme: str
                      ) -> Tuple[CompressionResult, AcfInstallation]:
    """Dispatch on a Figure 8 composition scheme name."""
    if scheme == "rewrite+dedicated":
        return compose_rewrite_dedicated(image)
    if scheme == "rewrite+dise":
        return compose_rewrite_dise(image)
    if scheme == "dise+dise":
        return compose_dise_dise(image)
    raise AcfConfigError(f"unknown composition scheme: {scheme!r}")
