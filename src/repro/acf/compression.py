"""Dynamic code (de)compression — Section 3.2 / Figure 4 / Figure 7.

The static half analyses the program, builds a decompression dictionary, and
replaces instances of dictionary sequences with DISE codewords; the dynamic
half is a tagged production set that re-expands the codewords at fetch.

The algorithm follows the paper:

* Candidate dictionary entries are instruction sequences of any size that do
  not straddle basic blocks.
* **Parameterization** merges candidate sequences that differ only in
  register names or small immediates: a codeword carries three 5-bit
  parameters plus an 11-bit tag, so a template may reference up to three
  parameterized operands (one when the sequence ends in a PC-relative
  branch, whose offset consumes the concatenated P2:P3 parameter).
* **Branch compression**: making the PC-relative offset a parameter lets two
  static branches share a dictionary entry, and each instance's offset is
  fixed up after compression moves the code (the paper's answer to the
  offset-instability problem of unparameterized compressors).
* **Greedy selection** iteratively picks the candidate with the greatest
  immediate compression, weighing the dictionary cost of the entry against
  the static instructions removed from the text.

The same machinery models the **dedicated decoder-based decompressor**
baseline via :data:`DEDICATED_OPTIONS` (2-byte codewords, single-instruction
compression, no parameterization, no branch compression) and the feature
ablation chain of Figure 7 (top).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace as dc_replace
from typing import Dict, List, Optional, Tuple

from repro.errors import AcfConfigError
from repro.acf.base import AcfInstallation
from repro.core.directives import Lit, TrigField
from repro.core.pattern import PatternSpec
from repro.core.production import ProductionSet
from repro.core.replacement import ReplacementInstr, ReplacementSpec
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Format, OpClass, Opcode
from repro.isa.registers import ZERO_REG
from repro.program.blocks import find_basic_blocks
from repro.program.builder import split_address
from repro.program.image import ProgramImage


class CompressionError(ValueError):
    """Raised when an image cannot be compressed as requested."""


@dataclass(frozen=True)
class CompressionOptions:
    """Feature knobs separating the Figure 7 experiments."""

    codeword_bytes: int = INSTRUCTION_BYTES
    min_seq_len: int = 2
    max_seq_len: int = 8
    parameterize: bool = True
    compress_branches: bool = True
    dict_entry_bytes: int = 8
    max_dict_entries: int = 2048
    reserved_opcode: Opcode = Opcode.RES0

    def with_changes(self, **changes) -> "CompressionOptions":
        return dc_replace(self, **changes)


#: The dedicated decoder-based decompressor baseline [Lefurgy et al.]:
#: 2-byte codewords, single-instruction compression, 4-byte unparameterized
#: dictionary entries, no branch compression.
DEDICATED_OPTIONS = CompressionOptions(
    codeword_bytes=2, min_seq_len=1, parameterize=False,
    compress_branches=False, dict_entry_bytes=4,
)

#: Full-featured DISE compression.
DISE_OPTIONS = CompressionOptions()

#: The Figure 7 (top) ablation chain, in presentation order.
FIGURE7_VARIANTS = (
    ("dedicated", DEDICATED_OPTIONS),
    ("-1insn", DEDICATED_OPTIONS.with_changes(min_seq_len=2)),
    ("-2byteCW", DEDICATED_OPTIONS.with_changes(
        min_seq_len=2, codeword_bytes=INSTRUCTION_BYTES)),
    ("+8byteDE", DEDICATED_OPTIONS.with_changes(
        min_seq_len=2, codeword_bytes=INSTRUCTION_BYTES, dict_entry_bytes=8)),
    ("+3param", DEDICATED_OPTIONS.with_changes(
        min_seq_len=2, codeword_bytes=INSTRUCTION_BYTES, dict_entry_bytes=8,
        parameterize=True)),
    ("DISE", DISE_OPTIONS),
)

_P_SLOTS = ("p1", "p2", "p3")
_PARAM_IMM_MIN, _PARAM_IMM_MAX = -16, 15
_P23_MIN, _P23_MAX = -512, 511


# ----------------------------------------------------------------------
# Candidate eligibility and template construction
# ----------------------------------------------------------------------
def _instruction_compressible(instr: Instruction,
                              options: CompressionOptions,
                              is_last: bool) -> bool:
    op = instr.opcode
    if op.opclass in (OpClass.RESERVED, OpClass.SYSTEM, OpClass.NOP,
                      OpClass.DISE_BRANCH, OpClass.INDIRECT_JUMP):
        return False
    if op is Opcode.BSR:
        return False
    if op.is_branch:
        if not options.compress_branches or not is_last:
            return False
        if op is Opcode.BR and instr.ra != ZERO_REG:
            return False  # linking br writes a PC-derived value
    return True


@dataclass
class _Template:
    """A parameterized dictionary-entry candidate."""

    key: Tuple[ReplacementInstr, ...]
    #: operand descriptors per instance param slot: ('reg', reg) / ('imm', v)
    has_branch: bool


@dataclass
class _Occurrence:
    start: int
    length: int
    #: values for p1/p2/p3 (branch offsets patched after layout).
    params: Tuple[int, int, int]
    #: original index of the trailing branch, if any.
    branch_index: Optional[int]


def _reg_directive(reg: Optional[int], param_of: Dict[Tuple[str, int], str]):
    if reg is None:
        return None
    slot = param_of.get(("reg", reg))
    return TrigField(slot) if slot else Lit(reg)


def _imm_directive(value: Optional[int], param_of: Dict[Tuple[str, int], str]):
    if value is None:
        return None
    slot = param_of.get(("imm", value))
    return TrigField(slot) if slot else Lit(value)


#: Parameter-assignment strategies tried for each candidate sequence.  The
#: paper builds an exhaustive candidate set and merges via parameterization;
#: trying both operand orders approximates that — a sequence whose sharing
#: hinges on an immediate (Figure 4's ``lda r, 8(r)`` vs ``lda r, -8(r)``)
#: unifies under ``imms_first`` even when registers exhaust the slots.
STRATEGIES = ("regs_first", "imms_first")


def make_template(instrs: List[Instruction],
                  options: CompressionOptions,
                  strategy: str = "regs_first",
                  ) -> Optional[Tuple[Tuple[ReplacementInstr, ...],
                                      Tuple[int, int, int]]]:
    """Canonicalise a concrete sequence into (template, parameter values).

    Returns None when the sequence is ineligible.  Two sequences share a
    dictionary entry iff their templates are equal.
    """
    last = len(instrs) - 1
    for offset, instr in enumerate(instrs):
        if not _instruction_compressible(instr, options, offset == last):
            return None

    branch = instrs[last] if instrs[last].opcode.is_branch else None

    if not options.parameterize:
        rinstrs = []
        for instr in instrs:
            if instr.opcode.is_branch:
                return None  # unparameterized compression cannot move branches
            rinstrs.append(_literal_rinstr(instr))
        return tuple(rinstrs), (ZERO_REG, ZERO_REG, ZERO_REG)

    # Parameter slots: a trailing branch consumes P2:P3 for its offset.
    slots = ["p1"] if branch is not None else ["p1", "p2", "p3"]

    # Operands in order of appearance.
    seen_regs: List[int] = []
    seen_imms: List[int] = []
    for instr in instrs:
        is_branch = instr.opcode.is_branch
        for reg in _operand_regs(instr):
            if reg != ZERO_REG and reg not in seen_regs:
                seen_regs.append(reg)
        if not is_branch and instr.imm is not None and \
                _PARAM_IMM_MIN <= instr.imm <= _PARAM_IMM_MAX and \
                instr.imm not in seen_imms:
            seen_imms.append(instr.imm)

    if strategy == "regs_first":
        operands = [("reg", r) for r in seen_regs]
        operands += [("imm", v) for v in seen_imms]
    elif strategy == "imms_first":
        operands = [("imm", v) for v in seen_imms]
        operands += [("reg", r) for r in seen_regs]
    else:
        raise AcfConfigError(f"unknown strategy {strategy!r}")

    param_of: Dict[Tuple[str, int], str] = {}
    params: List[int] = [ZERO_REG, ZERO_REG, ZERO_REG]
    slot_iter = iter(slots)
    for kind, value in operands:
        slot = next(slot_iter, None)
        if slot is None:
            break
        param_of[(kind, value)] = slot
        params[_P_SLOTS.index(slot)] = value if kind == "reg" else value & 0x1F

    rinstrs = []
    for offset, instr in enumerate(instrs):
        if instr.opcode.is_branch:
            rinstrs.append(
                ReplacementInstr(
                    opcode=instr.opcode,
                    ra=_reg_directive(instr.ra, param_of),
                    imm=TrigField("p23"),
                )
            )
        else:
            rinstrs.append(_parameterized_rinstr(instr, param_of))
    return tuple(rinstrs), tuple(params)


def _operand_regs(instr: Instruction) -> Tuple[int, ...]:
    fmt = instr.format
    if fmt is Format.MEM:
        return tuple(r for r in (instr.ra, instr.rb) if r is not None)
    if fmt is Format.OPERATE:
        return tuple(r for r in (instr.ra, instr.rb, instr.rc)
                     if r is not None)
    if fmt is Format.BRANCH:
        return (instr.ra,) if instr.ra is not None else ()
    return ()


def _literal_rinstr(instr: Instruction) -> ReplacementInstr:
    return ReplacementInstr(
        opcode=instr.opcode,
        ra=Lit(instr.ra) if instr.ra is not None else None,
        rb=Lit(instr.rb) if instr.rb is not None else None,
        rc=Lit(instr.rc) if instr.rc is not None else None,
        imm=Lit(instr.imm) if instr.imm is not None else None,
    )


def _parameterized_rinstr(instr: Instruction,
                          param_of: Dict[Tuple[str, int], str]
                          ) -> ReplacementInstr:
    return ReplacementInstr(
        opcode=instr.opcode,
        ra=_reg_directive(instr.ra, param_of),
        rb=_reg_directive(instr.rb, param_of),
        rc=_reg_directive(instr.rc, param_of),
        imm=_imm_directive(instr.imm, param_of),
    )


# ----------------------------------------------------------------------
# Candidate enumeration
# ----------------------------------------------------------------------
def enumerate_candidates(image: ProgramImage, options: CompressionOptions
                         ) -> Dict[Tuple[ReplacementInstr, ...],
                                   List[_Occurrence]]:
    """All candidate (template -> occurrences) groups in the image."""
    candidates: Dict[tuple, List[_Occurrence]] = {}
    instructions = image.instructions
    # Load-address pairs are relocation sites: they must survive verbatim so
    # they can be re-resolved after compression moves the code.
    blocked = [False] * image.instruction_count
    for index in image.load_addresses:
        blocked[index] = True
        if index + 1 < len(blocked):
            blocked[index + 1] = True
    strategies = STRATEGIES if options.parameterize else ("regs_first",)
    for block in find_basic_blocks(image):
        for start in range(block.start, block.end):
            max_len = min(options.max_seq_len, block.end - start)
            for length in range(options.min_seq_len, max_len + 1):
                if blocked[start + length - 1] or blocked[start]:
                    break
                seq = instructions[start:start + length]
                seen_keys = set()
                poisoned = False
                for strategy in strategies:
                    made = make_template(seq, options, strategy=strategy)
                    if made is None:
                        poisoned = True
                        break
                    key, params = made
                    if key in seen_keys:
                        continue  # strategies coincide (e.g. no immediates)
                    seen_keys.add(key)
                    branch_index = (
                        start + length - 1
                        if seq[-1].opcode.is_branch else None
                    )
                    candidates.setdefault(key, []).append(
                        _Occurrence(start=start, length=length,
                                    params=params,
                                    branch_index=branch_index)
                    )
                if poisoned:
                    break  # an ineligible instr poisons longer sequences too
    return candidates


# ----------------------------------------------------------------------
# Greedy dictionary selection
# ----------------------------------------------------------------------
def _usable_occurrences(occurrences: List[_Occurrence],
                        claimed: List[bool]) -> List[_Occurrence]:
    """Non-overlapping, unclaimed occurrences (greedy left-to-right)."""
    usable = []
    next_free = -1
    for occ in occurrences:
        if occ.start < next_free:
            continue
        if any(claimed[occ.start:occ.start + occ.length]):
            continue
        usable.append(occ)
        next_free = occ.start + occ.length
    return usable


def _savings(occurrences: List[_Occurrence], length: int,
             options: CompressionOptions) -> int:
    per_instance = length * INSTRUCTION_BYTES - options.codeword_bytes
    dict_cost = length * options.dict_entry_bytes
    return len(occurrences) * per_instance - dict_cost


@dataclass
class DictionaryEntry:
    tag: int
    template: Tuple[ReplacementInstr, ...]
    occurrences: List[_Occurrence]

    @property
    def length(self) -> int:
        return len(self.template)


def select_dictionary(image: ProgramImage, options: CompressionOptions
                      ) -> List[DictionaryEntry]:
    """Greedy selection: repeatedly take the template with the greatest
    immediate compression (lazy-heap formulation of the paper's loop)."""
    candidates = enumerate_candidates(image, options)
    claimed = [False] * image.instruction_count

    # Equal-gain ties break on enumeration order, which is a deterministic
    # function of the image — never on id(), whose values vary from process
    # to process and would give parallel workers different dictionaries.
    rank = {key: index for index, key in enumerate(candidates)}

    heap = []
    for key, occurrences in candidates.items():
        occurrences.sort(key=lambda o: o.start)
        usable = _usable_occurrences(occurrences, claimed)
        gain = _savings(usable, len(key), options)
        if gain > 0:
            heapq.heappush(heap, (-gain, rank[key], key))

    entries: List[DictionaryEntry] = []
    while heap and len(entries) < options.max_dict_entries:
        neg_gain, _, key = heapq.heappop(heap)
        usable = _usable_occurrences(candidates[key], claimed)
        gain = _savings(usable, len(key), options)
        if gain <= 0:
            continue
        if -neg_gain != gain:
            heapq.heappush(heap, (-gain, rank[key], key))  # stale; re-rank
            continue
        for occ in usable:
            for index in range(occ.start, occ.start + occ.length):
                claimed[index] = True
        entries.append(
            DictionaryEntry(tag=len(entries), template=key, occurrences=usable)
        )
    return entries


# ----------------------------------------------------------------------
# Image transformation
# ----------------------------------------------------------------------
@dataclass
class CompressionResult:
    """A compressed program plus its decompression productions and stats."""

    image: ProgramImage
    production_set: Optional[ProductionSet]
    options: CompressionOptions
    original_text_bytes: int
    compressed_text_bytes: int
    dictionary_entries: int
    dictionary_bytes: int
    instances: int
    instructions_removed: int
    dropped_branch_instances: int = 0

    @property
    def text_ratio(self) -> float:
        """Compressed text size / original text size."""
        return self.compressed_text_bytes / self.original_text_bytes

    @property
    def total_ratio(self) -> float:
        """(Compressed text + dictionary) / original text size."""
        return ((self.compressed_text_bytes + self.dictionary_bytes)
                / self.original_text_bytes)

    def installation(self, init_machine=None) -> AcfInstallation:
        production_sets = (
            [self.production_set] if self.production_set else []
        )
        return AcfInstallation(
            image=self.image, production_sets=production_sets,
            init_machine=init_machine, name="decompression",
        )


def _patch_branch_params(template, params, offset_words):
    """Fill P2:P3 with a branch offset; returns patched params or None."""
    if not _P23_MIN <= offset_words <= _P23_MAX:
        return None
    raw = offset_words & 0x3FF
    return (params[0], (raw >> 5) & 0x1F, raw & 0x1F)


def compress_image(image: ProgramImage,
                   options: CompressionOptions = DISE_OPTIONS
                   ) -> CompressionResult:
    """Compress an image; returns the new image, productions, and stats."""
    if not image.uniform_size():
        raise CompressionError("image is already compressed")
    entries = select_dictionary(image, options)

    # Iterate layout until every compressed branch offset fits its P2:P3
    # parameter (compression moves code, so offsets change — Section 3.2).
    dropped = 0
    for _ in range(24):
        built, num_dropped = _build_compressed(image, entries, options)
        dropped += num_dropped
        if built is not None:
            new_image, instances, removed = built
            break
    else:
        raise CompressionError("branch-offset fixup did not converge")

    production_set = _decompression_productions(entries, options)
    dictionary_instrs = sum(entry.length for entry in entries)
    return CompressionResult(
        image=new_image,
        production_set=production_set,
        options=options,
        original_text_bytes=image.text_size,
        compressed_text_bytes=new_image.text_size,
        dictionary_entries=len(entries),
        dictionary_bytes=dictionary_instrs * options.dict_entry_bytes,
        instances=instances,
        instructions_removed=removed,
        dropped_branch_instances=dropped,
    )


def _build_compressed(image, entries, options):
    """One layout attempt.

    Returns ``((image, instance_count, removed_count), 0)`` on success, or
    ``(None, dropped)`` after removing every occurrence whose branch offset
    cannot be represented — the caller then relays out and retries.
    """
    instructions = image.instructions
    n = len(instructions)

    occ_at: Dict[int, Tuple[DictionaryEntry, _Occurrence]] = {}
    for entry in entries:
        for occ in entry.occurrences:
            occ_at[occ.start] = (entry, occ)

    new_instrs: List[Instruction] = []
    new_sizes: List[int] = []
    index_map: Dict[int, int] = {}
    codeword_starts: List[Tuple[int, DictionaryEntry, _Occurrence]] = []

    index = 0
    while index < n:
        hit = occ_at.get(index)
        if hit is not None:
            entry, occ = hit
            index_map[index] = len(new_instrs)
            codeword_starts.append((len(new_instrs), entry, occ))
            placeholder = Instruction(
                options.reserved_opcode,
                ra=occ.params[0], rb=occ.params[1], rc=occ.params[2],
                imm=entry.tag,
            )
            new_instrs.append(placeholder)
            new_sizes.append(options.codeword_bytes)
            index += occ.length
        else:
            index_map[index] = len(new_instrs)
            new_instrs.append(instructions[index])
            new_sizes.append(INSTRUCTION_BYTES)
            index += 1
    index_map[n] = len(new_instrs)

    addresses = []
    addr = image.text_base
    for size in new_sizes:
        addresses.append(addr)
        addr += size

    # Remap symbols; a symbol inside a compressed region would be a
    # straddled basic block — candidates cannot contain leaders.
    symbols = {}
    for name, old_index in image.symbols.items():
        if old_index not in index_map:
            raise CompressionError(
                f"symbol {name!r} points inside a compressed sequence"
            )
        symbols[name] = index_map[old_index]

    # Remap direct-branch targets of surviving (uncompressed) instructions.
    target_index: List[Optional[int]] = [None] * len(new_instrs)
    uniform = all(size == INSTRUCTION_BYTES for size in new_sizes)
    for old_index, old_target in enumerate(image.target_index):
        if old_target is None or old_index not in index_map:
            continue
        if index_map.get(old_index) is None:
            continue
        new_index = index_map[old_index]
        if new_instrs[new_index].opcode.is_reserved:
            continue  # branch swallowed into a codeword; handled via params
        if old_target not in index_map:
            raise CompressionError("branch target inside a compressed region")
        new_target = index_map[old_target]
        target_index[new_index] = new_target
        if uniform:
            new_instrs[new_index] = new_instrs[new_index].with_fields(
                imm=new_target - (new_index + 1)
            )

    # Fix up compressed branch offsets now that addresses are final.
    violations: List[Tuple[DictionaryEntry, _Occurrence]] = []
    for new_index, entry, occ in codeword_starts:
        if occ.branch_index is None:
            continue
        old_target = image.target_index[occ.branch_index]
        if old_target is None or old_target not in index_map:
            violations.append((entry, occ))
            continue
        target_addr = addresses[index_map[old_target]]
        cw_addr = addresses[new_index]
        delta = target_addr - (cw_addr + INSTRUCTION_BYTES)
        if delta % INSTRUCTION_BYTES:
            violations.append((entry, occ))
            continue
        patched = _patch_branch_params(
            entry.template, occ.params, delta // INSTRUCTION_BYTES
        )
        if patched is None:
            violations.append((entry, occ))
            continue
        new_instrs[new_index] = new_instrs[new_index].with_fields(
            ra=patched[0], rb=patched[1], rc=patched[2]
        )
    if violations:
        for entry, occ in violations:
            entry.occurrences.remove(occ)
            if not entry.occurrences and entry in entries:
                entries.remove(entry)
        return None, len(violations)

    entry_index = index_map.get(image.entry_index)
    if entry_index is None:
        raise CompressionError("entry point was compressed away")

    # Re-resolve text-symbol load-address pairs against the new layout.
    new_load_addresses: Dict[int, str] = {}
    for old_index, symbol in image.load_addresses.items():
        new_index = index_map.get(old_index)
        if new_index is None or symbol not in symbols:
            raise CompressionError(
                f"load-address pair for {symbol!r} was compressed away"
            )
        high, low = split_address(addresses[symbols[symbol]])
        new_instrs[new_index] = new_instrs[new_index].with_fields(imm=high)
        new_instrs[new_index + 1] = new_instrs[new_index + 1].with_fields(imm=low)
        new_load_addresses[new_index] = symbol

    new_image = ProgramImage(
        instructions=new_instrs,
        addresses=addresses,
        sizes=new_sizes,
        target_index=target_index,
        symbols=symbols,
        entry_index=entry_index,
        text_base=image.text_base,
        data_base=image.data_base,
        data_words=dict(image.data_words),
        data_size=image.data_size,
        load_addresses=new_load_addresses,
    )
    instances = len(codeword_starts)
    removed = sum(occ.length for _, _, occ in codeword_starts) - instances
    return (new_image, instances, removed), 0


def _decompression_productions(entries, options) -> Optional[ProductionSet]:
    if not entries:
        return None
    pset = ProductionSet("decompression", scope="user")
    for entry in entries:
        pset.add_replacement(
            entry.tag,
            ReplacementSpec(instrs=entry.template, name=f"dict{entry.tag}"),
        )
    pset.add_production(
        PatternSpec(opcode=options.reserved_opcode), tagged=True, name="P-cw"
    )
    return pset


def compress_installation(image: ProgramImage,
                          options: CompressionOptions = DISE_OPTIONS
                          ) -> Tuple[CompressionResult, AcfInstallation]:
    """Compress and wrap as a runnable installation."""
    result = compress_image(image, options)
    return result, result.installation()
