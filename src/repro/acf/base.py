"""Common ACF plumbing.

An ACF installation bundles everything needed to run a program under an
application customization function:

* the (possibly transformed) program image,
* zero or more production sets to install in the DISE controller,
* an initialisation callback that seeds dedicated registers (the paper's
  "the ACF initializes this register" step, Section 2.1).

``run_acf`` wires an installation into a controller + machine and executes
it; most tests and experiments go through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.config import DiseConfig
from repro.core.controller import DiseController
from repro.core.production import ProductionSet
from repro.program.image import ProgramImage
from repro.sim.functional import Machine
from repro.sim.trace import TraceResult


@dataclass
class AcfInstallation:
    """A ready-to-run (image, productions, init) bundle."""

    image: ProgramImage
    production_sets: List[ProductionSet] = field(default_factory=list)
    init_machine: Optional[Callable[[Machine], None]] = None
    name: str = "acf"

    def make_machine(self, dise_config: Optional[DiseConfig] = None,
                     record_trace=True, observer=None,
                     dispatch=None) -> Machine:
        controller = None
        if self.production_sets:
            controller = DiseController(dise_config)
            for pset in self.production_sets:
                controller.install(pset)
        machine = Machine(self.image, controller=controller,
                          record_trace=record_trace, observer=observer,
                          dispatch=dispatch)
        if self.init_machine is not None:
            self.init_machine(machine)
        return machine

    def run(self, dise_config: Optional[DiseConfig] = None,
            record_trace=True, max_steps=5_000_000,
            observer=None, dispatch=None) -> TraceResult:
        machine = self.make_machine(dise_config, record_trace=record_trace,
                                    observer=observer, dispatch=dispatch)
        return machine.run(max_steps=max_steps)


def plain_installation(image: ProgramImage) -> AcfInstallation:
    """An installation with no ACF (the baseline execution)."""
    return AcfInstallation(image=image, name="plain")
