"""Memory fault isolation (MFI) — Section 3.1 / Figure 1 / Figure 6.

Three implementations are provided:

* **DISE3** — the paper's preferred DISE formulation: three inserted check
  instructions per unsafe operation.  DISE's control model disallows jumps
  into the middle of replacement sequences, so no defensive copy of the
  address register is needed.
* **DISE4** — the same four-instruction check sequence binary rewriting
  uses (extra defensive copy included), for apples-to-apples comparison.
* **Binary rewriting** — the software baseline: the check sequence is
  statically inserted before every unsafe instruction; it scavenges user
  registers and pays the text-size growth the paper's evaluation measures.

Unsafe instructions are loads, stores and indirect jumps.  Loads/stores are
checked against the data-segment id, indirect jumps against the
code-segment id (segment id = address >> 26).
"""

from __future__ import annotations

from typing import Tuple

from repro.acf.base import AcfInstallation
from repro.core.language import parse_productions
from repro.errors import AcfError
from repro.core.production import ProductionSet
from repro.isa.assembler import Label
from repro.isa.build import Imm, bis, fault, li, srl, xor
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import dise_reg, parse_reg
from repro.program.builder import LoadAddress, ProgramBuilder, SEGMENT_SHIFT
from repro.program.image import ProgramImage
from repro.program.rewriter import image_to_items

#: Fault code raised by the MFI error handler.
MFI_FAULT_CODE = 7

#: Label of the error handler stub appended to the program.
ERROR_LABEL = "__mfi_error"

#: Dedicated register allocation.
DR_COPY = dise_reg(0)      # DISE4's defensive address copy
DR_SCRATCH = dise_reg(1)   # segment-extraction scratch
DR_DATA_SEG = dise_reg(2)  # legal data segment id
DR_CODE_SEG = dise_reg(3)  # legal code segment id

#: User registers scavenged by the binary-rewriting baseline (the paper
#: notes software fault isolation reserves up to five).
SCAVENGED_REGS = tuple(parse_reg(name) for name in ("t8", "t9", "t10", "t11"))


class MfiError(AcfError):
    """Raised when MFI cannot be applied (e.g. scavenged registers in use).

    Part of the :mod:`repro.errors` taxonomy; still catchable as
    ``ValueError`` for one release via the :class:`~repro.errors.AcfError`
    shim.
    """


def mfi_production_source(variant="dise3") -> str:
    """Production-language source for the MFI ACF (Figure 1 style)."""
    if variant == "dise3":
        return f"""
# Memory fault isolation, 3 inserted instructions (DISE semantics make the
# defensive copy unnecessary).
P1: T.OPCLASS == store -> R1
P2: T.OPCLASS == load  -> R1
P3: T.OPCLASS == indirect_jump -> R2
R1:
    srl   T.RS, #{SEGMENT_SHIFT}, $dr1
    xor   $dr1, $dr2, $dr1
    bne   $dr1, @{ERROR_LABEL}
    T.INSN
R2:
    srl   T.RS, #{SEGMENT_SHIFT}, $dr1
    xor   $dr1, $dr3, $dr1
    bne   $dr1, @{ERROR_LABEL}
    T.INSN
"""
    if variant == "dise4":
        return f"""
# Memory fault isolation, the rewriting baseline's 4-instruction sequence
# (defensive copy of the address register included).
P1: T.OPCLASS == store -> R1
P2: T.OPCLASS == load  -> R1
P3: T.OPCLASS == indirect_jump -> R2
R1:
    bis   T.RS, T.RS, $dr0
    srl   $dr0, #{SEGMENT_SHIFT}, $dr1
    xor   $dr1, $dr2, $dr1
    bne   $dr1, @{ERROR_LABEL}
    T.INSN
R2:
    bis   T.RS, T.RS, $dr0
    srl   $dr0, #{SEGMENT_SHIFT}, $dr1
    xor   $dr1, $dr3, $dr1
    bne   $dr1, @{ERROR_LABEL}
    T.INSN
"""
    raise MfiError(f"unknown MFI variant: {variant!r}")


def ensure_error_stub(image: ProgramImage) -> ProgramImage:
    """Append the ``__mfi_error`` handler stub if the image lacks one."""
    if ERROR_LABEL in image.symbols:
        return image
    builder = ProgramBuilder(text_base=image.text_base,
                             data_base=image.data_base)
    builder.adopt_data(image.data_words, image.data_size)
    builder.emit_items(image_to_items(image))
    builder.label(ERROR_LABEL)
    builder.emit(fault(MFI_FAULT_CODE))
    entry_names = [n for n, i in image.symbols.items()
                   if i == image.entry_index]
    if entry_names:
        builder.set_entry(entry_names[0])
    return builder.build()


def mfi_production_set(image: ProgramImage,
                       variant="dise3") -> ProductionSet:
    """Build the MFI production set against an image's error handler."""
    if ERROR_LABEL not in image.symbols:
        raise MfiError("image has no __mfi_error stub; call ensure_error_stub")
    return parse_productions(
        mfi_production_source(variant),
        name=f"mfi-{variant}",
        scope="kernel",
        symbols={ERROR_LABEL: image.symbol_address(ERROR_LABEL)},
    )


def segment_ids(image: ProgramImage) -> Tuple[int, int]:
    """(data segment id, code segment id) for an image."""
    return (image.data_base >> SEGMENT_SHIFT,
            image.text_base >> SEGMENT_SHIFT)


def attach_mfi(image: ProgramImage, variant="dise3") -> AcfInstallation:
    """Transparent DISE MFI: productions + dedicated-register init.

    The image is unmodified except for the appended error-handler stub
    (in a real system the handler lives in the MFI runtime).
    """
    image = ensure_error_stub(image)
    pset = mfi_production_set(image, variant=variant)
    data_seg, code_seg = segment_ids(image)

    def init(machine):
        machine.regs[DR_DATA_SEG] = data_seg
        machine.regs[DR_CODE_SEG] = code_seg

    return AcfInstallation(
        image=image, production_sets=[pset], init_machine=init,
        name=f"mfi-{variant}",
    )


# ----------------------------------------------------------------------
# Binary-rewriting baseline
# ----------------------------------------------------------------------
def _uses_scavenged(image: ProgramImage) -> bool:
    scavenged = set(SCAVENGED_REGS)
    for instr in image.instructions:
        regs = set(instr.source_regs())
        dest = instr.dest_reg()
        if dest is not None:
            regs.add(dest)
        if regs & scavenged:
            return True
    return False


#: Emit a local error stub at the first safe point after this many emitted
#: instructions.  Rewriters keep error stubs near the checks (a single
#: far-away handler would need long-range branches everywhere); this also
#: keeps check-branch displacements short, which matters downstream when the
#: rewritten binary is compressed (Section 4.3).
STUB_INTERVAL = 300

#: Opcodes after which fall-through never happens: safe stub locations.
_BARRIERS = (Opcode.RET, Opcode.JMP, Opcode.HALT, Opcode.FAULT)


def rewrite_mfi(image: ProgramImage) -> AcfInstallation:
    """The software baseline: statically rewrite the binary with checks.

    Inserts the four-instruction check (defensive copy included) before
    every load, store and indirect jump, retargets all branches (handled by
    the rewriting substrate), plants a prologue that initialises the
    scavenged segment-id registers, and distributes local error stubs
    through the text.
    """
    if _uses_scavenged(image):
        raise MfiError(
            "program uses the registers the rewriter must scavenge "
            f"({[r for r in SCAVENGED_REGS]}); recompile reserving them"
        )
    data_seg, code_seg = segment_ids(image)
    t8, t9, t10, t11 = SCAVENGED_REGS
    unsafe = (OpClass.LOAD, OpClass.STORE, OpClass.INDIRECT_JUMP)

    builder = ProgramBuilder(text_base=image.text_base,
                             data_base=image.data_base)
    builder.adopt_data(image.data_words, image.data_size)
    items = image_to_items(image)
    entry_names = [n for n, i in image.symbols.items()
                   if i == image.entry_index]
    entry_name = entry_names[0] if entry_names else None
    if entry_name is None:
        raise MfiError("image has no entry symbol to plant the prologue at")

    stub_counter = 0
    since_stub = 0
    stub_pending = False

    def stub_label() -> str:
        return f"{ERROR_LABEL}_{stub_counter}"

    def emit(instr: Instruction):
        nonlocal since_stub
        builder.emit(instr)
        since_stub += 1

    for item in items:
        if isinstance(item, Label):
            builder.emit_items([item])
            if item.name == entry_name:
                emit(li(data_seg, t10))
                emit(li(code_seg, t11))
            continue
        if isinstance(item, LoadAddress):
            builder.emit_items([item])
            since_stub += 2
            continue
        instr = item
        if instr.opclass in unsafe:
            seg_reg = t11 if instr.opclass is OpClass.INDIRECT_JUMP else t10
            addr_reg = instr.rs
            emit(bis(addr_reg, addr_reg, t8))   # defensive copy
            emit(srl(t8, Imm(SEGMENT_SHIFT), t9))
            emit(xor(t9, seg_reg, t9))
            emit(Instruction(Opcode.BNE, ra=t9, target=stub_label()))
            stub_pending = True
        emit(instr)
        if since_stub >= STUB_INTERVAL and instr.opcode in _BARRIERS:
            builder.label(stub_label())
            emit(fault(MFI_FAULT_CODE))
            stub_counter += 1
            since_stub = 0
            stub_pending = False

    if stub_pending or stub_counter == 0:
        builder.label(stub_label())
        emit(fault(MFI_FAULT_CODE))

    builder.set_entry(entry_name)
    return AcfInstallation(image=builder.build(), name="mfi-rewrite")
