"""Code assertions / memory watchpoints — Section 3.1.

Debugging assertions are inlined into the instruction stream by DISE and
executed at full pipeline speed, instead of single-stepping under a
debugger.  The assertion here is the classic generalised watchpoint: fault
when a store writes inside a watched address range.  Assertions are added
and removed by (de)activating the production set; inactive assertions cost
nothing.
"""

from __future__ import annotations

from repro.errors import AcfConfigError
from repro.acf.base import AcfInstallation
from repro.core.directives import AbsTarget, Lit, T_IMM, T_RS, TrigField
from repro.core.pattern import match_stores
from repro.core.production import ProductionSet
from repro.core.replacement import (
    TRIGGER_INSN,
    ReplacementInstr,
    ReplacementSpec,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import dise_reg
from repro.program.image import ProgramImage

#: Fault code raised when a watchpoint fires.
WATCH_FAULT_CODE = 9

DR_ADDR = dise_reg(4)   # effective address
DR_TMP = dise_reg(1)    # comparison scratch
DR_LO = dise_reg(2)     # watched range [lo, hi)
DR_HI = dise_reg(3)


def watch_spec() -> ReplacementSpec:
    """Fault if T.RS + T.IMM lands in [$dr2, $dr3); else run the store.

    Uses DISE-internal branches to skip the fault — the whole check is
    contained in the replacement sequence, demonstrating sequence-internal
    control flow (Section 2.1).
    """
    return ReplacementSpec(
        name="watch-store",
        instrs=(
            # 0: dr4 = effective address
            ReplacementInstr(opcode=Opcode.LDA, ra=Lit(DR_ADDR), rb=T_RS,
                             imm=T_IMM),
            # 1: dr1 = addr < lo  -> below range, safe
            ReplacementInstr(opcode=Opcode.CMPULT, ra=Lit(DR_ADDR),
                             rb=Lit(DR_LO), rc=Lit(DR_TMP)),
            # 2: if below, skip to the store (DISEPC 6)
            ReplacementInstr(opcode=Opcode.DBNE, ra=Lit(DR_TMP), imm=Lit(6)),
            # 3: dr1 = addr < hi  -> inside range, fault
            ReplacementInstr(opcode=Opcode.CMPULT, ra=Lit(DR_ADDR),
                             rb=Lit(DR_HI), rc=Lit(DR_TMP)),
            # 4: if not inside, skip the fault
            ReplacementInstr(opcode=Opcode.DBEQ, ra=Lit(DR_TMP), imm=Lit(6)),
            # 5: watched write -> fault
            ReplacementInstr(opcode=Opcode.FAULT, ra=Lit(31),
                             imm=Lit(WATCH_FAULT_CODE)),
            # 6: the original store
            TRIGGER_INSN,
        ),
    )


def watch_production_set() -> ProductionSet:
    """The watchpoint ACF as a one-production set."""
    pset = ProductionSet("watchpoint", scope="user")
    pset.define(match_stores(), watch_spec(), name="P-watch")
    return pset


def attach_watchpoint(image: ProgramImage, lo: int, hi: int) -> AcfInstallation:
    """Watch stores into [lo, hi); fault code ``WATCH_FAULT_CODE`` on hit."""
    if hi <= lo:
        raise AcfConfigError("empty watch range")

    def init(machine):
        machine.regs[DR_LO] = lo
        machine.regs[DR_HI] = hi

    return AcfInstallation(
        image=image,
        production_sets=[watch_production_set()],
        init_machine=init,
        name="watchpoint",
    )


# ----------------------------------------------------------------------
# Value-invariant assertions ("assertions involving the evaluation of
# arbitrary criteria"): fault when a store writes a forbidden value to a
# watched address.
# ----------------------------------------------------------------------
def value_assertion_spec() -> ReplacementSpec:
    """Fault if a store writes $dr3 (forbidden value) to address $dr2."""
    return ReplacementSpec(
        name="assert-value",
        instrs=(
            # 0: dr4 = effective address; skip unless it's the watched one
            ReplacementInstr(opcode=Opcode.LDA, ra=Lit(DR_ADDR), rb=T_RS,
                             imm=T_IMM),
            ReplacementInstr(opcode=Opcode.CMPEQ, ra=Lit(DR_ADDR),
                             rb=Lit(DR_LO), rc=Lit(DR_TMP)),
            ReplacementInstr(opcode=Opcode.DBEQ, ra=Lit(DR_TMP), imm=Lit(6)),
            # 3: compare the store's data register to the forbidden value
            ReplacementInstr(opcode=Opcode.CMPEQ, ra=TrigField("rt"),
                             rb=Lit(DR_HI), rc=Lit(DR_TMP)),
            ReplacementInstr(opcode=Opcode.DBEQ, ra=Lit(DR_TMP), imm=Lit(6)),
            ReplacementInstr(opcode=Opcode.FAULT, ra=Lit(31),
                             imm=Lit(WATCH_FAULT_CODE)),
            # 6: the original store
            TRIGGER_INSN,
        ),
    )


def attach_value_assertion(image: ProgramImage, address: int,
                           forbidden_value: int) -> AcfInstallation:
    """Assert that ``forbidden_value`` is never stored to ``address``.

    Demonstrates assertions on *data* criteria: the check reads the store's
    data register (``T.RT``) — something a hardware address watchpoint
    cannot express — and runs at pipeline speed, unlike a single-stepping
    debugger.
    """

    def init(machine):
        machine.regs[DR_LO] = address
        machine.regs[DR_HI] = forbidden_value

    pset = ProductionSet("value-assert", scope="user")
    pset.define(match_stores(), value_assertion_spec(), name="P-assert")
    return AcfInstallation(
        image=image,
        production_sets=[pset],
        init_machine=init,
        name="value-assert",
    )
