"""Dynamic code specialization — Section 3.2's "other aware ACFs".

The paper's scenario: a loop contains a multiply with one loop-invariant
operand.  At runtime, *before* the loop executes, the invariant's value is
inspected and the multiply is rewritten:

* power of two            -> one shift
* sum of two powers       -> shift + shift + add
* difference of two powers-> shift + shift + subtract
* anything else           -> a constant-loaded multiply

A software specializer would have to rewrite one instruction into three,
retarget branches around the expansion, and scavenge a register for the
intermediate — with DISE, the static tool plants a codeword and the runtime
simply (re)defines its replacement sequence through the controller, using a
dedicated register for the intermediate.  Cost: one production definition,
~10-100x cheaper than software dynamic code generation (Section 3.2 cites
10-1000 cycles per generated instruction for software specializers).

Static half: :func:`plant_specializations` replaces eligible multiplies
with codewords (one tag per site).  Dynamic half: :class:`Specializer`
binds each tag to a value-specific replacement sequence at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.acf.base import AcfInstallation
from repro.core.controller import DiseController
from repro.core.directives import Lit, TrigField
from repro.core.pattern import PatternSpec
from repro.core.production import ProductionSet
from repro.core.replacement import ReplacementInstr, ReplacementSpec
from repro.isa.build import codeword
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import ZERO_REG, dise_reg
from repro.program.image import ProgramImage
from repro.program.rewriter import image_to_items
from repro.program.builder import LoadAddress, ProgramBuilder
from repro.isa.assembler import Label

#: Reserved opcode used for specialization codewords (decompression uses
#: RES0; distinct opcodes keep the tag spaces disjoint — Section 3.3,
#: aware-with-aware composition).
SPECIALIZE_OPCODE = Opcode.RES1

#: Dedicated scratch register for multi-instruction specializations.
DR_SCRATCH = dise_reg(0)

#: ``ctrl`` function code for "bind the site whose tag is in the argument
#: register" (the instruction-based controller interface).
CTRL_BIND_CODE = 1

T_P1 = TrigField("p1")   # the variant (non-invariant) source register
T_P3 = TrigField("p3")   # the destination register


class SpecializationError(ValueError):
    """Raised when a site cannot be planted or bound."""


@dataclass(frozen=True)
class SpecializationSite:
    """One planted multiply: where it was, and which register is invariant."""

    tag: int
    index: int
    variant_reg: int
    invariant_reg: int
    dest_reg: int


def _decompose_two_powers(value: int) -> Optional[Tuple[int, int, str]]:
    """value == 2^a + 2^b -> (a, b, '+'); 2^a - 2^b -> (a, b, '-')."""
    for a in range(64):
        for b in range(64):
            if (1 << a) + (1 << b) == value:
                return a, b, "+"
            if (1 << a) - (1 << b) == value:
                return a, b, "-"
    return None


def specialized_sequence(value: int) -> ReplacementSpec:
    """The replacement sequence computing ``T.P3 = T.P1 * value``."""
    if value == 0:
        return ReplacementSpec(name="mul0", instrs=(
            ReplacementInstr(opcode=Opcode.BIS, ra=Lit(ZERO_REG),
                             rb=Lit(ZERO_REG), rc=T_P3),
        ))
    if value == 1:
        return ReplacementSpec(name="mul1", instrs=(
            ReplacementInstr(opcode=Opcode.BIS, ra=T_P1, rb=T_P1, rc=T_P3),
        ))
    if value > 0 and value & (value - 1) == 0:
        shift = value.bit_length() - 1
        return ReplacementSpec(name=f"mul2^{shift}", instrs=(
            ReplacementInstr(opcode=Opcode.SLL, ra=T_P1, imm=Lit(shift),
                             rc=T_P3),
        ))
    two_powers = _decompose_two_powers(value) if value > 0 else None
    if two_powers is not None:
        a, b, sign = two_powers
        combine = Opcode.ADDQ if sign == "+" else Opcode.SUBQ
        return ReplacementSpec(name=f"mul2^{a}{sign}2^{b}", instrs=(
            ReplacementInstr(opcode=Opcode.SLL, ra=T_P1, imm=Lit(a),
                             rc=Lit(DR_SCRATCH)),
            ReplacementInstr(opcode=Opcode.SLL, ra=T_P1, imm=Lit(b),
                             rc=T_P3),
            ReplacementInstr(opcode=combine, ra=Lit(DR_SCRATCH), rb=T_P3,
                             rc=T_P3),
        ))
    # General fallback: the invariant as a (wide, internal-format) literal.
    return ReplacementSpec(name=f"mul{value}", instrs=(
        ReplacementInstr(opcode=Opcode.BIS, ra=Lit(ZERO_REG),
                         imm=Lit(value), rc=Lit(DR_SCRATCH)),
        ReplacementInstr(opcode=Opcode.MULQ, ra=T_P1, rb=Lit(DR_SCRATCH),
                         rc=T_P3),
    ))


def plant_specializations(image: ProgramImage,
                          site_indexes: Optional[List[int]] = None
                          ) -> Tuple[ProgramImage, List[SpecializationSite]]:
    """Replace multiplies with specialization codewords (the static half).

    ``site_indexes`` selects instruction indexes to plant; by default every
    register-register ``mulq`` is planted.  The codeword carries P1 = the
    variant source, P3 = the destination; the invariant register is
    remembered per site for the runtime to read.
    """
    if site_indexes is None:
        site_indexes = [
            index for index, instr in enumerate(image.instructions)
            if instr.opcode is Opcode.MULQ and instr.rb is not None
        ]
    sites: List[SpecializationSite] = []
    replacements: Dict[int, Instruction] = {}
    for tag, index in enumerate(site_indexes):
        instr = image.instructions[index]
        if instr.opcode is not Opcode.MULQ or instr.rb is None:
            raise SpecializationError(
                f"site {index} is not a register multiply: {instr}"
            )
        # Convention: ra varies, rb is loop-invariant.
        sites.append(SpecializationSite(
            tag=tag, index=index, variant_reg=instr.ra,
            invariant_reg=instr.rb, dest_reg=instr.rc,
        ))
        replacements[index] = codeword(
            SPECIALIZE_OPCODE, instr.ra, ZERO_REG, instr.rc, tag
        )

    builder = ProgramBuilder(text_base=image.text_base,
                             data_base=image.data_base)
    builder.adopt_data(image.data_words, image.data_size)
    instruction_index = 0
    for item in image_to_items(image):
        if isinstance(item, (Label, LoadAddress)):
            builder.emit_items([item])
            if isinstance(item, LoadAddress):
                instruction_index += 2
            continue
        builder.emit(replacements.get(instruction_index, item))
        instruction_index += 1
    entry_names = [n for n, i in image.symbols.items()
                   if i == image.entry_index]
    if entry_names:
        builder.set_entry(entry_names[0])
    return builder.build(), sites


class Specializer:
    """The dynamic half: binds sites to value-specific sequences."""

    def __init__(self, sites: List[SpecializationSite]):
        self.sites = {site.tag: site for site in sites}
        self.production_set = ProductionSet("specialize", scope="user")
        self.production_set.add_production(
            PatternSpec(opcode=SPECIALIZE_OPCODE), tagged=True, name="P-spec"
        )
        self._controller: Optional[DiseController] = None
        self.bindings: Dict[int, int] = {}

    def install(self, controller: DiseController):
        """Attach to a controller (idempotent if the set is already in)."""
        self._controller = controller
        if self.production_set.name not in controller.installed_names():
            controller.install(self.production_set)

    def bind(self, machine, tag: int):
        """Specialize site ``tag`` against the invariant's *current* value.

        Reads the invariant register from the running machine — exactly the
        "runtime data values as replacement instruction constants" direction
        the paper's conclusion sketches.
        """
        if self._controller is None:
            raise SpecializationError("install() the specializer first")
        site = self.sites.get(tag)
        if site is None:
            raise SpecializationError(f"unknown specialization tag {tag}")
        value = machine.read_reg(site.invariant_reg)
        spec = specialized_sequence(value)
        if tag in self.production_set.replacements:
            del self.production_set.replacements[tag]
        self.production_set.add_replacement(tag, spec)
        self.bindings[tag] = value
        # Reinstall: the controller rebuilds the engine's PT/RT image (a
        # production redefinition flushes the cached entries).
        self._controller.uninstall(self.production_set.name)
        self._controller.install(self.production_set)
        return spec

    def bind_all(self, machine):
        for tag in self.sites:
            self.bind(machine, tag)

    def register_with(self, machine, code=None, arg_reg=16):
        """Expose binding through the instruction-based interface.

        After this, the *application itself* drives specialization: it
        executes ``ctrl a0, #CTRL_BIND_CODE`` with the site tag in ``a0``
        (by default) at its loop preheader, exactly the user-level
        controller access model of Section 2.3.
        """
        self.install(machine.controller)
        code = CTRL_BIND_CODE if code is None else code

        def handler(running_machine):
            tag = running_machine.read_reg(arg_reg)
            self.bind(running_machine, tag)

        machine.register_control_handler(code, handler)


def attach_specialization(image: ProgramImage,
                          site_indexes: Optional[List[int]] = None
                          ) -> Tuple[AcfInstallation, Specializer]:
    """Plant codewords and return (installation, specializer).

    The caller drives the runtime protocol: step the machine to the loop
    preheader, call ``specializer.bind_all(machine)``, then continue —
    mirroring an application invoking the user-level controller interface.
    """
    planted, sites = plant_specializations(image, site_indexes)
    specializer = Specializer(sites)

    installation = AcfInstallation(
        image=planted,
        production_sets=[specializer.production_set],
        name="specialization",
    )
    return installation, specializer
