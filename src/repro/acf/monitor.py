"""Reference monitors — Section 3.1.

A reference monitor observes execution and terminates the program when a
security policy is violated.  DISE's properties make the checks tamper- and
subversion-resistant: productions sit at the decoder and cannot be jumped
around, and the PT/RT access model keeps the policy out of the
application's reach.

Two policy building blocks are provided:

* ``deny_opcodes`` — executing any denied opcode faults immediately (e.g.
  a sandbox that forbids the ``out`` "system call").
* ``count_opcodes`` — a usage meter: occurrences are counted in ``$dr7``
  and the program faults when a budget is exceeded.
"""

from __future__ import annotations

from typing import Iterable

from repro.acf.base import AcfInstallation
from repro.core.directives import Lit
from repro.core.pattern import PatternSpec
from repro.core.production import ProductionSet
from repro.core.replacement import (
    TRIGGER_INSN,
    ReplacementInstr,
    ReplacementSpec,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import dise_reg
from repro.program.image import ProgramImage

#: Fault code raised on a policy violation.
POLICY_FAULT_CODE = 13

DR_BUDGET = dise_reg(7)
DR_TMP = dise_reg(1)


def deny_spec() -> ReplacementSpec:
    """Replace the trigger with an immediate policy fault."""
    return ReplacementSpec(
        name="deny",
        instrs=(
            ReplacementInstr(opcode=Opcode.FAULT, ra=Lit(31),
                             imm=Lit(POLICY_FAULT_CODE)),
        ),
    )


def count_spec() -> ReplacementSpec:
    """Decrement the budget; fault when it runs out; else run the trigger."""
    return ReplacementSpec(
        name="count",
        instrs=(
            ReplacementInstr(opcode=Opcode.SUBQ, ra=Lit(DR_BUDGET),
                             imm=Lit(1), rc=Lit(DR_BUDGET)),
            ReplacementInstr(opcode=Opcode.DBNE, ra=Lit(DR_BUDGET),
                             imm=Lit(3)),
            ReplacementInstr(opcode=Opcode.FAULT, ra=Lit(31),
                             imm=Lit(POLICY_FAULT_CODE)),
            TRIGGER_INSN,
        ),
    )


def deny_opcodes(opcodes: Iterable[Opcode]) -> ProductionSet:
    """A policy forbidding every listed opcode."""
    pset = ProductionSet("monitor-deny", scope="kernel")
    spec = deny_spec()
    for opcode in opcodes:
        seq_id = pset.add_replacement(pset.next_seq_id(), spec)
        pset.add_production(PatternSpec(opcode=opcode), seq_id=seq_id,
                            name=f"deny-{opcode.mnemonic}")
    return pset


def count_opcodes(opcodes: Iterable[Opcode]) -> ProductionSet:
    """A policy metering the listed opcodes against the $dr7 budget."""
    pset = ProductionSet("monitor-count", scope="kernel")
    spec = count_spec()
    for opcode in opcodes:
        seq_id = pset.add_replacement(pset.next_seq_id(), spec)
        pset.add_production(PatternSpec(opcode=opcode), seq_id=seq_id,
                            name=f"count-{opcode.mnemonic}")
    return pset


def attach_monitor(image: ProgramImage, deny=(), budgeted=(),
                   budget=0) -> AcfInstallation:
    """Install a reference monitor over an unmodified image."""
    production_sets = []
    if deny:
        production_sets.append(deny_opcodes(deny))
    if budgeted:
        production_sets.append(count_opcodes(budgeted))

    def init(machine):
        machine.regs[DR_BUDGET] = budget + 1

    return AcfInstallation(
        image=image,
        production_sets=production_sets,
        init_machine=init if budgeted else None,
        name="monitor",
    )
