"""Store-address tracing (SAT) — the transparent ACF of Figure 5.

A single production for stores appends each store's effective address to an
in-memory trace buffer whose cursor lives in dedicated register ``$dr5``.
The buffer itself is placed past the program's data (in a real system the
tracing runtime would own it); the application never sees the cursor.
"""

from __future__ import annotations

from repro.acf.base import AcfInstallation
from repro.core.language import parse_productions
from repro.core.production import ProductionSet
from repro.isa.registers import dise_reg
from repro.program.image import ProgramImage

#: Dedicated registers used by SAT.
DR_ADDR = dise_reg(4)     # computed effective address
DR_CURSOR = dise_reg(5)   # trace-buffer cursor

SAT_SOURCE = """
# Store-address tracing (Figure 5).
P3: T.OPCLASS == store -> R3
R3:
    lda   $dr4, T.IMM(T.RS)
    stq   $dr4, 0($dr5)
    lda   $dr5, 8($dr5)
    T.INSN
"""


def sat_production_set(scope="user") -> ProductionSet:
    """SAT productions.

    Tracing is typically a per-process debugging utility (``user`` scope:
    deactivated when its process is switched out, Section 2.3); pass
    ``scope="kernel"`` for a system-wide tracer.
    """
    return parse_productions(SAT_SOURCE, name="sat", scope=scope)


def attach_sat(image: ProgramImage, buffer_words=65536,
               scope="user") -> AcfInstallation:
    """Install store-address tracing; the buffer follows the data segment."""
    buffer_base = image.data_base + image.data_size + 4096

    def init(machine):
        machine.regs[DR_CURSOR] = buffer_base

    installation = AcfInstallation(
        image=image,
        production_sets=[sat_production_set(scope=scope)],
        init_machine=init,
        name="sat",
    )
    installation.buffer_base = buffer_base
    installation.buffer_words = buffer_words
    return installation


def read_trace_buffer(result, buffer_base, final_regs=None):
    """Extract the traced addresses from a finished run's memory."""
    cursor = (final_regs or result.final_regs)[DR_CURSOR]
    addresses = []
    addr = buffer_base
    while addr < cursor:
        addresses.append(result.final_memory.read(addr))
        addr += 8
    return addresses
