"""Structured error taxonomy shared across the simulator, ACF, and harness
layers.

Historically each layer raised ad-hoc ``RuntimeError``/``ValueError``
subclasses, which made two things impossible:

* the fault-injection campaign (:mod:`repro.faults`) could not *classify*
  an outcome — "the model detected a stray codeword" and "the harness hit a
  corrupt cache entry" both surfaced as ``RuntimeError`` with only message
  text to distinguish them;
* the parallel harness could not choose a *retry policy* — a crashed worker
  is worth retrying, a deterministic model error is not.

Every error the repo raises on purpose now derives from :class:`ReproError`
and carries machine-readable fields (see :meth:`ReproError.details`).  Two
branches keep legacy bases for one release so existing ``except`` clauses
continue to work:

* :class:`SimulationError` also subclasses ``RuntimeError`` (the old
  ``ExecutionError`` base);
* :class:`AcfError` also subclasses ``ValueError`` — the one-release shim
  for the bare ``ValueError`` raises that used to live in ``acf/``.
  Catch :class:`AcfError` (or a subclass) instead; the ``ValueError`` base
  will be dropped in the release after next.
"""

from __future__ import annotations

import hashlib
from typing import Optional


class ReproError(Exception):
    """Base of the structured error hierarchy.

    ``retryable`` drives the parallel harness's retry policy: transient
    infrastructure failures (crashed or hung workers) are retried with
    backoff, deterministic model/configuration errors are not.
    """

    #: Whether the harness should retry the operation that raised this.
    retryable = False

    def details(self) -> dict:
        """Machine-readable payload for reports and structured logs."""
        out = {"type": type(self).__name__, "message": str(self)}
        for key, value in vars(self).items():
            if not key.startswith("_") and value is not None:
                out[key] = value
        return out


# ----------------------------------------------------------------------
# Simulator layer
# ----------------------------------------------------------------------
class SimulationError(ReproError, RuntimeError):
    """Base for model-level errors raised while simulating a program."""


class ExecutionError(SimulationError):
    """The functional model hit an architecturally impossible situation
    (stray codeword, undefined control, unresolved branch target...).

    Carries the fault site as fields so callers — fault classification
    above all — can assert on *cause* rather than message text.
    """

    def __init__(self, message: str, *, pc: Optional[int] = None,
                 index: Optional[int] = None, opcode=None):
        super().__init__(message)
        #: Program counter of the offending instruction, when known.
        self.pc = pc
        #: Instruction-list index of the offending instruction, when known.
        self.index = index
        #: The offending :class:`~repro.isa.opcodes.Opcode`, when known.
        self.opcode = opcode

    def details(self) -> dict:
        out = super().details()
        if self.opcode is not None:
            out["opcode"] = getattr(self.opcode, "name", str(self.opcode))
        return out


class ExecutionTimeout(ExecutionError):
    """The program did not halt within its dynamic-instruction budget.

    Distinct from :class:`ExecutionError` so hang classification (and the
    campaign's ``hang`` outcome) can key off the type.
    """

    def __init__(self, message: str, *, steps: Optional[int] = None,
                 pc: Optional[int] = None, index: Optional[int] = None):
        super().__init__(message, pc=pc, index=index)
        #: The exhausted step budget.
        self.steps = steps


# ----------------------------------------------------------------------
# ACF layer
# ----------------------------------------------------------------------
class AcfError(ReproError, ValueError):
    """Base for ACF construction/configuration errors.

    Subclasses ``ValueError`` as a one-release deprecation shim for the
    bare ``raise ValueError`` sites that used to live in ``acf/``.
    """


class AcfConfigError(AcfError):
    """An ACF was configured with invalid parameters (bad variant name,
    empty range, unknown strategy/scheme...)."""


# ----------------------------------------------------------------------
# Harness layer
# ----------------------------------------------------------------------
class HarnessError(ReproError):
    """Base for experiment-harness failures."""


class TaskError(HarnessError):
    """A (benchmark, transform) harness task failed.

    ``task`` is the repr of the failing unit; ``attempts`` counts tries
    including the failing one.
    """

    def __init__(self, message: str, *, task: Optional[str] = None,
                 attempts: int = 1):
        super().__init__(message)
        self.task = task
        self.attempts = attempts


class WorkerCrashError(TaskError):
    """A pool worker died (or its future raised) while running a task."""

    retryable = True


class TaskTimeoutError(TaskError):
    """A task exceeded the per-task watchdog timeout."""

    retryable = True

    def __init__(self, message: str, *, task: Optional[str] = None,
                 attempts: int = 1, timeout: Optional[float] = None):
        super().__init__(message, task=task, attempts=attempts)
        self.timeout = timeout


class CacheCorruptionError(HarnessError):
    """A persistent-cache entry failed its integrity check.

    Normally invisible to users: the cache quarantines the entry and the
    caller regenerates it.  Raised only when self-healing itself fails.
    """

    def __init__(self, message: str, *, path: Optional[str] = None):
        super().__init__(message)
        self.path = path


class CheckpointError(HarnessError):
    """A resume checkpoint is unreadable or does not match the run it is
    being applied to."""


# ----------------------------------------------------------------------
# Fabric layer
# ----------------------------------------------------------------------
class FabricError(HarnessError):
    """Base for failures of the :mod:`repro.fabric` work-queue itself."""


class FabricInterrupted(FabricError):
    """A fabric run stopped early (induced interruption / test hook).

    Progress up to the interruption is in the checkpoint; re-run with
    ``resume=True`` to finish.
    """


class CircuitOpenError(FabricError):
    """The fabric's worker pool kept dying and its circuit breaker opened;
    remaining work degrades to serial in-parent execution."""

    retryable = True


# ----------------------------------------------------------------------
# Fault-injection layer
# ----------------------------------------------------------------------
class CampaignError(ReproError):
    """The fault-injection campaign driver was misconfigured."""


# ----------------------------------------------------------------------
# Rewriting layer
# ----------------------------------------------------------------------
class RewriteError(ReproError, ValueError):
    """A static binary rewrite cannot faithfully express the requested
    transformation (e.g. a production set whose replacement sequence uses
    DISE-internal branches, which only have meaning inside an expansion)."""


# ----------------------------------------------------------------------
# Verification layer
# ----------------------------------------------------------------------
class VerificationError(ReproError):
    """Base for differential-conformance failures raised by
    :mod:`repro.verify`."""


class DivergenceError(VerificationError):
    """Two executions that an oracle requires to be observation-equivalent
    diverged.

    Carries the structured :class:`repro.verify.bisect.DivergenceReport`
    locating the first divergent retirement.
    """

    def __init__(self, message: str, *, report=None):
        super().__init__(message)
        #: The :class:`~repro.verify.bisect.DivergenceReport`, when the
        #: divergence was bisected; ``None`` for digest-only comparisons.
        self.report = report

    def details(self) -> dict:
        out = super().details()
        if self.report is not None:
            out["report"] = self.report.to_dict()
        return out


# ----------------------------------------------------------------------
# Serving layer
# ----------------------------------------------------------------------
class ServeError(ReproError):
    """Base for failures of the :mod:`repro.serve` simulation server."""


class ProtocolError(ServeError):
    """A request violates the newline-delimited JSON wire protocol
    (unparseable frame, missing ``op``, unknown operation, bad params).

    Never retryable: the same bytes will fail the same way.
    """


class SessionError(ServeError):
    """A request named a session the server does not hold (never created,
    already closed, or owned by a different tenant)."""

    def __init__(self, message: str, *, session: Optional[str] = None):
        super().__init__(message)
        self.session = session


class BudgetExceededError(ServeError):
    """A tenant exhausted one of its serving budgets.

    ``budget`` names the exhausted dimension (``"retirements"`` or
    ``"wall_clock"``); ``limit`` and ``used`` quantify it.  Retirement
    budgets are enforced with :class:`ExecutionTimeout` precision: the
    session retires *exactly* ``limit`` dynamic instructions before this
    is raised, so a budgeted run's observation digest is a prefix-exact
    replay of the unbudgeted one.  Not retryable — the budget does not
    replenish by retrying.
    """

    retryable = False

    def __init__(self, message: str, *, tenant: Optional[str] = None,
                 budget: Optional[str] = None, limit=None, used=None):
        super().__init__(message)
        self.tenant = tenant
        self.budget = budget
        self.limit = limit
        self.used = used


# ----------------------------------------------------------------------
# Retry policy helpers
# ----------------------------------------------------------------------
def is_retryable(exc: BaseException) -> bool:
    """Whether a failed attempt is worth retrying.

    Errors from the :class:`ReproError` taxonomy answer for themselves via
    their ``retryable`` flag — a deterministic model or configuration
    error will fail identically on every attempt, so retrying it only
    burns the watchdog budget.  Anything *outside* the taxonomy is treated
    as transient infrastructure trouble (a worker killed mid-pickle
    surfaces as ``BrokenProcessPool``, a fork failure as ``OSError``, a
    test double as a bare ``RuntimeError``) and is retried.
    """
    if isinstance(exc, ReproError):
        return exc.retryable
    return True


def backoff_delay(attempt: int, *, base: float = 0.5, cap: float = 30.0,
                  key: Optional[str] = None) -> float:
    """Exponential backoff with deterministic per-key jitter, in seconds.

    ``attempt`` counts the failures so far (1 after the first failure).
    The un-jittered delay doubles each attempt (``base * 2**(attempt-1)``)
    and is clamped to ``cap``; jitter then scales it into the
    ``[0.5, 1.0]`` fraction of that window so simultaneous retries
    de-correlate.  The jitter is a pure function of ``(key, attempt)`` —
    not of a global RNG — so a retried task sleeps the same schedule in
    every run, keeping resumed and chaos-perturbed campaigns reproducible.
    """
    if attempt < 1 or base <= 0:
        return 0.0
    window = min(cap, base * (2.0 ** (attempt - 1)))
    digest = hashlib.sha256(
        f"{key or ''}:{attempt}".encode()
    ).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return window * (0.5 + fraction / 2.0)
