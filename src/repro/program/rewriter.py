"""Generic static binary-rewriting support.

The software ACF baselines in the paper (e.g. software fault isolation,
Section 3.1) are built by statically rewriting the program: inserting code
sequences before instructions that match a predicate.  Because insertion
changes instruction positions, all branches must be retargeted — the paper
calls this out as one of the "headaches" of software ACF implementations.

This module performs the rewrite on a finished :class:`ProgramImage` by
converting it back to symbolic form (labels at every former branch target),
splicing in the inserted sequences, and rebuilding.  That faithfully models
what a rewriting tool does, including the text-size growth the evaluation
measures.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Union

from repro.core.directives import AbsTarget, Lit, TrigField
from repro.errors import RewriteError
from repro.isa.assembler import Label
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Opcode
from repro.program.builder import BuilderItem, LoadAddress, ProgramBuilder
from repro.program.image import ProgramImage

#: An insertion callback returns the items to place before the matched
#: instruction, and optionally a replacement for the instruction itself.
InsertionFn = Callable[[Instruction, int], Iterable[Union[Label, Instruction]]]


def image_to_items(image: ProgramImage) -> List[BuilderItem]:
    """Convert an image back to symbolic builder items.

    Every direct-branch target becomes a label; existing symbols are
    preserved.  The result rebuilds to an equivalent image.
    """
    names = {}
    for name, index in image.symbols.items():
        names.setdefault(index, name)
    # Synthesise labels for anonymous branch targets.
    for index, target in enumerate(image.target_index):
        if target is not None and target not in names:
            names[target] = f".bt{target}"

    items: List[BuilderItem] = []
    skip_next = False
    for index, instr in enumerate(image.instructions):
        if index in names:
            items.append(Label(names[index]))
        if skip_next:
            skip_next = False
            continue
        if index in image.load_addresses:
            # Reconstruct the pseudo-instruction so the rebuilt image
            # re-resolves the (possibly moved) text symbol.
            items.append(LoadAddress(instr.ra, image.load_addresses[index]))
            skip_next = True
            continue
        target = image.target_index[index]
        if target is not None and instr.format is Format.BRANCH:
            items.append(instr.with_fields(imm=None, target=names[target]))
        else:
            items.append(instr)
    # A label may sit one past the last instruction (e.g. loop exit).
    end = image.instruction_count
    if end in names:
        items.append(Label(names[end]))
    return items


def rewrite_image(
    image: ProgramImage,
    predicate: Callable[[Instruction], bool],
    insertion: InsertionFn,
) -> ProgramImage:
    """Insert ``insertion(instr, index)`` items before each matching instruction.

    The insertion callback may also *replace* the matched instruction by
    including an instruction in its returned items and returning ``None``
    markers are not supported — the matched instruction is always re-emitted
    after the inserted items (matching the paper's "precede each unsafe
    instruction with a code sequence" formulation).
    """
    items = image_to_items(image)
    builder = ProgramBuilder(text_base=image.text_base, data_base=image.data_base)
    builder.adopt_data(image.data_words, image.data_size)

    instruction_index = 0
    for item in items:
        if isinstance(item, Instruction):
            if predicate(item):
                builder.emit_items(list(insertion(item, instruction_index)))
            builder.emit(item)
            instruction_index += 1
        else:
            builder.emit_items([item])

    entry_names = [n for n, i in image.symbols.items() if i == image.entry_index]
    if entry_names:
        builder.set_entry(entry_names[0])
    return builder.build()


def _static_instance(rinstr, trigger: Instruction, pc: int,
                     target_names) -> Instruction:
    """Instantiate one replacement instruction for static insertion.

    Mirrors the engine's instantiation logic (``repro.core.engine``) with
    one difference: ``AbsTarget`` directives become *symbolic* branch
    targets so the rebuilt layout retargets them, instead of displacements
    against the trigger's original PC.  ``T.PC`` resolves to the trigger's
    original address — the value the dynamic expansion would see.
    """
    from repro.core.engine import _resolve_reg, _trigger_imm_value

    imm = rinstr.imm
    target = None
    if imm is None:
        value = None
    elif isinstance(imm, Lit):
        value = imm.value
    elif isinstance(imm, TrigField):
        value = _trigger_imm_value(trigger, pc, imm.field)
    elif isinstance(imm, AbsTarget):
        if rinstr.opcode.format is not Format.BRANCH:
            raise RewriteError(
                f"AbsTarget on non-branch {rinstr.opcode.mnemonic} cannot "
                "be relocated statically"
            )
        value = None
        target = target_names[imm.address]
    else:
        raise RewriteError(f"bad immediate directive: {imm!r}")
    return Instruction(
        rinstr.opcode,
        ra=_resolve_reg(rinstr.ra, trigger),
        rb=_resolve_reg(rinstr.rb, trigger),
        rc=_resolve_reg(rinstr.rc, trigger),
        imm=value,
        target=target,
    )


def rewrite_with_productions(image: ProgramImage, production_set,
                             match_pc: bool = True) -> ProgramImage:
    """Apply a DISE production set *statically*: the binary-rewriting
    equivalent of running ``image`` with ``production_set`` installed.

    Every instruction the engine would expand is replaced, in place, by
    its instantiated replacement sequence — trigger copies re-emit the
    original instruction (symbolically, so direct branches retarget after
    layout), ``T.PC`` resolves to the instruction's *original* address,
    and ``AbsTarget`` branch targets become labels.  PC-scoped patterns
    match against original addresses (``match_pc=False`` ignores PC
    scopes, as the engine does for ``pc=None``).

    Raises :class:`~repro.errors.RewriteError` for production sets that
    cannot be expressed statically — above all replacement sequences
    containing DISE-internal branches, which move the DISEPC and are
    architecturally illegal outside an expansion.

    This is the reference transformation the ``dise_vs_static``
    conformance oracle compares dynamic expansion against (paper
    Section 3: DISE as a replacement for static rewriting).
    """
    from repro.core.engine import DiseEngine

    engine = DiseEngine()
    engine.set_production_set(production_set)

    names = {}
    for name, index in image.symbols.items():
        names.setdefault(index, name)
    for index, target in enumerate(image.target_index):
        if target is not None and target not in names:
            names[target] = f".bt{target}"

    # Pass 1: decide expansions and register labels for AbsTarget
    # addresses, so forward references resolve during emission.
    expansions = {}
    for index, instr in enumerate(image.instructions):
        if index in image.load_addresses or (
            index and (index - 1) in image.load_addresses
        ):
            continue  # the ldah/lda pair is re-emitted as a pseudo-op
        pc = image.addresses[index]
        production = engine.match(instr, pc if match_pc else None)
        if production is None:
            continue
        seq_id = production.select_seq_id(instr)
        spec = engine.replacement(seq_id)
        for rinstr in spec.instrs:
            if rinstr.is_dise_branch:
                raise RewriteError(
                    f"replacement sequence {spec.name or seq_id!r} uses a "
                    "DISE-internal branch; it has no static equivalent"
                )
            if isinstance(rinstr.imm, AbsTarget):
                addr = rinstr.imm.address
                tindex = image.index_of_addr.get(addr)
                if tindex is None:
                    raise RewriteError(
                        f"AbsTarget {addr:#x} is not an instruction address"
                    )
                names.setdefault(tindex, f".vt{tindex}")
        expansions[index] = spec

    target_names = {
        image.addresses[index] if index < image.instruction_count
        else image.text_base + image.text_size: name
        for index, name in names.items()
    }

    builder = ProgramBuilder(text_base=image.text_base, data_base=image.data_base)
    builder.adopt_data(image.data_words, image.data_size)

    skip_next = False
    for index, instr in enumerate(image.instructions):
        if index in names:
            builder.emit_items([Label(names[index])])
        if skip_next:
            skip_next = False
            continue
        if index in image.load_addresses:
            builder.emit_items([LoadAddress(instr.ra, image.load_addresses[index])])
            skip_next = True
            continue
        target = image.target_index[index]
        if target is not None and instr.format is Format.BRANCH:
            original = instr.with_fields(imm=None, target=names[target])
        else:
            original = instr
        spec = expansions.get(index)
        if spec is None:
            builder.emit(original)
            continue
        pc = image.addresses[index]
        for rinstr in spec.instrs:
            if rinstr.is_trigger_copy:
                builder.emit(original)
            else:
                builder.emit(_static_instance(rinstr, instr, pc, target_names))
    end = image.instruction_count
    if end in names:
        builder.emit_items([Label(names[end])])

    entry_names = [n for n, i in image.symbols.items() if i == image.entry_index]
    if entry_names:
        builder.set_entry(entry_names[0])
    return builder.build()
