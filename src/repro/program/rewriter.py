"""Generic static binary-rewriting support.

The software ACF baselines in the paper (e.g. software fault isolation,
Section 3.1) are built by statically rewriting the program: inserting code
sequences before instructions that match a predicate.  Because insertion
changes instruction positions, all branches must be retargeted — the paper
calls this out as one of the "headaches" of software ACF implementations.

This module performs the rewrite on a finished :class:`ProgramImage` by
converting it back to symbolic form (labels at every former branch target),
splicing in the inserted sequences, and rebuilding.  That faithfully models
what a rewriting tool does, including the text-size growth the evaluation
measures.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Union

from repro.isa.assembler import Label
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Opcode
from repro.program.builder import BuilderItem, LoadAddress, ProgramBuilder
from repro.program.image import ProgramImage

#: An insertion callback returns the items to place before the matched
#: instruction, and optionally a replacement for the instruction itself.
InsertionFn = Callable[[Instruction, int], Iterable[Union[Label, Instruction]]]


def image_to_items(image: ProgramImage) -> List[BuilderItem]:
    """Convert an image back to symbolic builder items.

    Every direct-branch target becomes a label; existing symbols are
    preserved.  The result rebuilds to an equivalent image.
    """
    names = {}
    for name, index in image.symbols.items():
        names.setdefault(index, name)
    # Synthesise labels for anonymous branch targets.
    for index, target in enumerate(image.target_index):
        if target is not None and target not in names:
            names[target] = f".bt{target}"

    items: List[BuilderItem] = []
    skip_next = False
    for index, instr in enumerate(image.instructions):
        if index in names:
            items.append(Label(names[index]))
        if skip_next:
            skip_next = False
            continue
        if index in image.load_addresses:
            # Reconstruct the pseudo-instruction so the rebuilt image
            # re-resolves the (possibly moved) text symbol.
            items.append(LoadAddress(instr.ra, image.load_addresses[index]))
            skip_next = True
            continue
        target = image.target_index[index]
        if target is not None and instr.format is Format.BRANCH:
            items.append(instr.with_fields(imm=None, target=names[target]))
        else:
            items.append(instr)
    # A label may sit one past the last instruction (e.g. loop exit).
    end = image.instruction_count
    if end in names:
        items.append(Label(names[end]))
    return items


def rewrite_image(
    image: ProgramImage,
    predicate: Callable[[Instruction], bool],
    insertion: InsertionFn,
) -> ProgramImage:
    """Insert ``insertion(instr, index)`` items before each matching instruction.

    The insertion callback may also *replace* the matched instruction by
    including an instruction in its returned items and returning ``None``
    markers are not supported — the matched instruction is always re-emitted
    after the inserted items (matching the paper's "precede each unsafe
    instruction with a code sequence" formulation).
    """
    items = image_to_items(image)
    builder = ProgramBuilder(text_base=image.text_base, data_base=image.data_base)
    builder.adopt_data(image.data_words, image.data_size)

    instruction_index = 0
    for item in items:
        if isinstance(item, Instruction):
            if predicate(item):
                builder.emit_items(list(insertion(item, instruction_index)))
            builder.emit(item)
            instruction_index += 1
        else:
            builder.emit_items([item])

    entry_names = [n for n, i in image.symbols.items() if i == image.entry_index]
    if entry_names:
        builder.set_entry(entry_names[0])
    return builder.build()
