"""The laid-out program image executed by the simulators.

A :class:`ProgramImage` is the output of the program builder (or of a
binary-rewriting/compression tool): a list of instructions with assigned
addresses, resolved direct-branch targets, a symbol table, and initial data
memory.

Instructions normally occupy 4 bytes, but per-instruction sizes are kept
explicitly so that compressed images — e.g. the dedicated decompressor's
2-byte codewords (Section 4.2) — lay out correctly.  Direct branches carry a
resolved ``target_index`` so mixed-size images execute without re-deriving
targets from displacement fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.instruction import INSTRUCTION_BYTES, Instruction


@dataclass
class ProgramImage:
    """A laid-out, executable program."""

    instructions: List[Instruction]
    addresses: List[int]
    sizes: List[int]
    #: Resolved instruction-list index of each direct branch target
    #: (``None`` for non-branches and indirect jumps).
    target_index: List[Optional[int]]
    #: Symbol name -> instruction index.
    symbols: Dict[str, int]
    entry_index: int = 0
    text_base: int = 0
    data_base: int = 0
    #: Initial data memory: byte address -> 64-bit value.
    data_words: Dict[int, int] = field(default_factory=dict)
    #: Bytes of data segment reserved (for layout bookkeeping).
    data_size: int = 0
    #: Text-symbol load-address pairs: index of the ``ldah`` half -> symbol
    #: name.  Rewriting and compression tools re-resolve these after moving
    #: code (a raw binary would need relocations; this models them).
    load_addresses: Dict[int, str] = field(default_factory=dict)
    #: Index of an instruction by its address (built lazily).
    _index_of_addr: Optional[Dict[int, int]] = None

    def __post_init__(self):
        count = len(self.instructions)
        if not (len(self.addresses) == len(self.sizes) == len(self.target_index) == count):
            raise ValueError("image field lengths disagree")

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @property
    def index_of_addr(self) -> Dict[int, int]:
        if self._index_of_addr is None:
            self._index_of_addr = {
                addr: idx for idx, addr in enumerate(self.addresses)
            }
        return self._index_of_addr

    def address_of(self, index: int) -> int:
        return self.addresses[index]

    def index_at(self, addr: int) -> int:
        """Instruction index at ``addr``; raises ``KeyError`` off-image."""
        return self.index_of_addr[addr]

    def symbol_address(self, name: str) -> int:
        return self.addresses[self.symbols[name]]

    def symbol_table_by_address(self) -> Dict[int, str]:
        """Address -> name map (first symbol wins on aliases)."""
        table: Dict[int, str] = {}
        for name, index in self.symbols.items():
            table.setdefault(self.addresses[index], name)
        return table

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    @property
    def text_size(self) -> int:
        """Total text-segment size in bytes."""
        return sum(self.sizes)

    @property
    def instruction_count(self) -> int:
        return len(self.instructions)

    def count_matching(self, predicate) -> int:
        """Static count of instructions satisfying ``predicate``."""
        return sum(1 for instr in self.instructions if predicate(instr))

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def entry_address(self) -> int:
        return self.addresses[self.entry_index]

    def fetch(self, index: int) -> Instruction:
        return self.instructions[index]

    def uniform_size(self) -> bool:
        """True if every instruction occupies the standard 4 bytes."""
        return all(size == INSTRUCTION_BYTES for size in self.sizes)
