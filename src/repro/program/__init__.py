"""Program model: images, builder/layout, basic blocks, rewriting."""

from repro.program.blocks import BasicBlock, find_basic_blocks, find_leaders
from repro.program.builder import (
    DEFAULT_DATA_BASE,
    DEFAULT_TEXT_BASE,
    SEGMENT_SHIFT,
    BuildError,
    LoadAddress,
    ProgramBuilder,
    build_from_assembly,
    split_address,
)
from repro.program.image import ProgramImage
from repro.program.rewriter import image_to_items, rewrite_image

__all__ = [
    "BasicBlock",
    "find_basic_blocks",
    "find_leaders",
    "DEFAULT_DATA_BASE",
    "DEFAULT_TEXT_BASE",
    "SEGMENT_SHIFT",
    "BuildError",
    "LoadAddress",
    "ProgramBuilder",
    "build_from_assembly",
    "split_address",
    "ProgramImage",
    "image_to_items",
    "rewrite_image",
]
