"""Basic-block discovery and a light control-flow graph over program images.

Used by the compression ACF (candidate sequences "of any size that do not
straddle basic blocks", Section 3.2) and by the binary rewriter.

A leader is: the entry point, any direct-branch target, any symbol (symbols
are conservatively treated as potential indirect-jump/call targets), and the
instruction following any control transfer or halt/fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.isa.opcodes import OpClass, Opcode
from repro.program.image import ProgramImage

#: Opcode classes and opcodes that terminate a basic block.
_BLOCK_ENDERS = (
    OpClass.COND_BRANCH,
    OpClass.UNCOND_BRANCH,
    OpClass.INDIRECT_JUMP,
)


@dataclass
class BasicBlock:
    """Half-open instruction-index range [start, end) plus successors."""

    block_id: int
    start: int
    end: int
    successor_ids: List[int] = field(default_factory=list)

    def __len__(self):
        return self.end - self.start

    def indices(self):
        return range(self.start, self.end)


def find_leaders(image: ProgramImage) -> List[int]:
    """Return the sorted set of basic-block leader indices."""
    count = image.instruction_count
    leaders = {0, image.entry_index}
    leaders.update(index for index in image.symbols.values() if index < count)
    for index, instr in enumerate(image.instructions):
        opclass = instr.opclass
        if opclass in _BLOCK_ENDERS or instr.opcode in (Opcode.HALT, Opcode.FAULT):
            if index + 1 < count:
                leaders.add(index + 1)
            target = image.target_index[index]
            if target is not None and target < count:
                leaders.add(target)
    return sorted(leaders)


def find_basic_blocks(image: ProgramImage) -> List[BasicBlock]:
    """Partition the image into basic blocks with successor edges."""
    leaders = find_leaders(image)
    count = image.instruction_count
    blocks: List[BasicBlock] = []
    block_of_leader = {}
    for block_id, start in enumerate(leaders):
        end = leaders[block_id + 1] if block_id + 1 < len(leaders) else count
        blocks.append(BasicBlock(block_id=block_id, start=start, end=end))
        block_of_leader[start] = block_id

    for block in blocks:
        if block.end == block.start:
            continue
        last = image.instructions[block.end - 1]
        opclass = last.opclass
        succs = []
        target = image.target_index[block.end - 1]
        if opclass is OpClass.COND_BRANCH:
            if target is not None and target in block_of_leader:
                succs.append(block_of_leader[target])
            if block.end in block_of_leader:
                succs.append(block_of_leader[block.end])
        elif opclass is OpClass.UNCOND_BRANCH:
            if target is not None and target in block_of_leader:
                succs.append(block_of_leader[target])
        elif opclass is OpClass.INDIRECT_JUMP:
            pass  # unknown successors
        elif last.opcode in (Opcode.HALT, Opcode.FAULT):
            pass
        else:
            if block.end in block_of_leader:
                succs.append(block_of_leader[block.end])
        block.successor_ids = succs
    return blocks
