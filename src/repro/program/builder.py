"""Program builder: from symbolic items to a laid-out :class:`ProgramImage`.

The builder accepts labels, instructions (with symbolic branch targets), and
a ``load_address`` pseudo-instruction, plus named data allocations.  At
:meth:`ProgramBuilder.build` time it assigns addresses, resolves branch
targets to both displacement fields and instruction indexes, and expands
pseudo-instructions.

Binary-rewriting tools (the MFI rewriter, the compressors) operate either on
the symbolic item list or directly on finished images.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from repro.isa.assembler import Label, assemble
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Format, OpClass, Opcode
from repro.program.image import ProgramImage

#: Default segment bases: text in segment 0, data in segment 1 (the segment
#: id is the address's high-order bits, ``addr >> SEGMENT_SHIFT``).
SEGMENT_SHIFT = 26
DEFAULT_TEXT_BASE = 0x0040_0000   # segment 0
DEFAULT_DATA_BASE = 0x0400_0000   # segment 1


class BuildError(ValueError):
    """Raised when a program cannot be laid out (e.g. undefined label)."""


@dataclass(frozen=True)
class LoadAddress:
    """Pseudo-instruction: load a symbol's 32-bit address into a register.

    Expands to an ``ldah``/``lda`` pair at build time.
    """

    reg: int
    symbol: str


BuilderItem = Union[Label, Instruction, LoadAddress]


def split_address(addr: int):
    """Split ``addr`` into (high, low) halves for an ldah/lda pair."""
    low = addr & 0xFFFF
    if low >= 0x8000:
        low -= 0x10000
    high = (addr - low) >> 16
    return high & 0xFFFF, low


class ProgramBuilder:
    """Accumulates program items and data, then lays out an image."""

    def __init__(self, text_base=DEFAULT_TEXT_BASE, data_base=DEFAULT_DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base
        self.items: List[BuilderItem] = []
        self.data_symbols: Dict[str, int] = {}
        self.data_words: Dict[int, int] = {}
        self._data_cursor = data_base
        self._entry_label: Optional[str] = None
        self._label_counter = 0

    # ------------------------------------------------------------------
    # Text emission
    # ------------------------------------------------------------------
    def label(self, name: str) -> str:
        self.items.append(Label(name))
        return name

    def fresh_label(self, prefix="L") -> str:
        """Generate a unique label name (not yet emitted)."""
        self._label_counter += 1
        return f".{prefix}{self._label_counter}"

    def emit(self, instr: Instruction):
        self.items.append(instr)

    def emit_many(self, instructions: Iterable[Instruction]):
        self.items.extend(instructions)

    def emit_items(self, items: Iterable[BuilderItem]):
        self.items.extend(items)

    def emit_assembly(self, source: str):
        self.items.extend(assemble(source))

    def load_address(self, reg: int, symbol: str):
        self.items.append(LoadAddress(reg, symbol))

    def set_entry(self, label: str):
        self._entry_label = label

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def alloc_data(self, name: str, nwords: int, init=None) -> int:
        """Reserve ``nwords`` 8-byte words of data, optionally initialised."""
        if name in self.data_symbols:
            raise BuildError(f"data symbol redefined: {name}")
        addr = self._data_cursor
        self.data_symbols[name] = addr
        self._data_cursor += nwords * 8
        if init is not None:
            values = list(init)
            if len(values) > nwords:
                raise BuildError(f"initialiser longer than allocation: {name}")
            for offset, value in enumerate(values):
                self.data_words[addr + offset * 8] = value
        return addr

    def data_address(self, name: str) -> int:
        return self.data_symbols[name]

    def adopt_data(self, data_words: Dict[int, int], data_size: int):
        """Adopt an existing image's data segment (used by rewriting tools)."""
        self.data_words.update(data_words)
        self._data_cursor = max(self._data_cursor, self.data_base + data_size)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def build(self) -> ProgramImage:
        """Lay out and resolve the program into an executable image."""
        instructions: List[Instruction] = []
        label_index: Dict[str, int] = {}
        pending_loads: List[int] = []

        for item in self.items:
            if isinstance(item, Label):
                if item.name in label_index:
                    raise BuildError(f"label redefined: {item.name}")
                label_index[item.name] = len(instructions)
            elif isinstance(item, LoadAddress):
                pending_loads.append(len(instructions))
                # Placeholders; immediates patched once addresses are known.
                instructions.append(
                    Instruction(Opcode.LDAH, ra=item.reg, rb=31, imm=0, target=item.symbol)
                )
                instructions.append(
                    Instruction(Opcode.LDA, ra=item.reg, rb=item.reg, imm=0, target=item.symbol)
                )
            elif isinstance(item, Instruction):
                instructions.append(item)
            else:
                raise BuildError(f"unknown builder item: {item!r}")

        addresses = [
            self.text_base + index * INSTRUCTION_BYTES
            for index in range(len(instructions))
        ]

        def symbol_addr(name):
            if name in label_index:
                return addresses[label_index[name]]
            if name in self.data_symbols:
                return self.data_symbols[name]
            raise BuildError(f"undefined symbol: {name}")

        # Patch load-address pairs; remember the text ones so rewriting
        # tools can re-resolve them after moving code.
        load_addresses: Dict[int, str] = {}
        for index in pending_loads:
            symbol = instructions[index].target
            high, low = split_address(symbol_addr(symbol))
            instructions[index] = instructions[index].with_fields(imm=high, target=None)
            instructions[index + 1] = instructions[index + 1].with_fields(
                imm=low, target=None
            )
            if symbol in label_index:
                load_addresses[index] = symbol

        # Resolve branch targets.
        target_index: List[Optional[int]] = [None] * len(instructions)
        for index, instr in enumerate(instructions):
            if instr.target is None:
                if (
                    instr.format is Format.BRANCH
                    and instr.imm is not None
                    and instr.opcode not in (Opcode.OUT, Opcode.FAULT)
                    and not instr.opcode.is_dise_branch
                ):
                    target_index[index] = index + 1 + instr.imm
                continue
            if instr.format is not Format.BRANCH:
                raise BuildError(
                    f"symbolic target on non-branch instruction: {instr}"
                )
            if instr.target not in label_index:
                raise BuildError(f"undefined branch target: {instr.target}")
            dest = label_index[instr.target]
            disp = dest - (index + 1)
            instructions[index] = instr.with_fields(imm=disp, target=None)
            target_index[index] = dest

        for index in target_index:
            if index is not None and not 0 <= index <= len(instructions):
                raise BuildError(f"branch target out of image: index {index}")

        entry_label = self._entry_label
        if entry_label is None:
            for candidate in ("main", "_start"):
                if candidate in label_index:
                    entry_label = candidate
                    break
        entry_index = label_index.get(entry_label, 0) if entry_label else 0

        return ProgramImage(
            instructions=instructions,
            addresses=addresses,
            sizes=[INSTRUCTION_BYTES] * len(instructions),
            target_index=target_index,
            symbols=dict(label_index),
            entry_index=entry_index,
            text_base=self.text_base,
            data_base=self.data_base,
            data_words=dict(self.data_words),
            data_size=self._data_cursor - self.data_base,
            load_addresses=load_addresses,
        )


def build_from_assembly(source, text_base=DEFAULT_TEXT_BASE,
                        data_base=DEFAULT_DATA_BASE) -> ProgramImage:
    """Assemble and lay out a source string in one step."""
    builder = ProgramBuilder(text_base=text_base, data_base=data_base)
    builder.emit_assembly(source)
    return builder.build()
