"""DISE: A Programmable Macro Engine for Customizing Applications.

A from-scratch Python reproduction of Corliss, Lewis & Roth (ISCA 2003):
the DISE engine and controller, the production language, the evaluated ACFs
(memory fault isolation, dynamic code decompression, and their composition,
plus the paper's secondary ACFs), and the substrates the evaluation needs --
an Alpha-like ISA, an assembler/binary-rewriting toolchain, a functional
simulator, a calibrated superscalar timing model, and a synthetic
SPECint2000 workload suite.

Quick start::

    from repro.workloads import generate_by_name
    from repro.acf import attach_mfi

    image = generate_by_name("bzip2")
    result = attach_mfi(image, "dise3").run()
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
