"""Conformance-verification campaigns: (benchmark x oracle) sweeps.

A verification campaign runs every configured oracle against every
configured benchmark profile.  The sweep itself rides on the execution
fabric (:mod:`repro.fabric`): each (benchmark, oracle) cell becomes a
content-addressed task, so the fabric supplies the process-pool fan-out
(``-j`` / ``REPRO_JOBS``), crash supervision, checkpoint/resume, and —
with ``REPRO_FABRIC_STORE`` enabled — cross-campaign dedupe of cells
other sweeps already computed.  ``verify.oracles.*`` telemetry counters
are published from the parent either way.

Reports are deterministic JSON (sorted keys, no timestamps); a
checkpoint written by a different configuration is refused rather than
silently merged, while a *corrupt* checkpoint is quarantined and the
sweep restarts cleanly.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import CampaignError, CheckpointError
from repro.fabric.engine import Fabric
from repro.fabric.task import Task, register_recipe
from repro.faults.campaign import _atomic_write_json
from repro.harness.parallel import resolve_jobs
from repro.telemetry import events as _events
from repro.telemetry import registry as _telemetry
from repro.verify.oracles import ORACLES, OracleOutcome, run_oracle

#: Version stamp on verification reports and checkpoints.
REPORT_SCHEMA = 1


@dataclass(frozen=True)
class VerifyConfig:
    """Everything that determines a verification sweep's results."""

    benchmarks: Tuple[str, ...] = ("bzip2", "gzip", "mcf", "parser")
    oracles: Tuple[str, ...] = ORACLES
    #: Workload scale factor (fraction of the full synthetic trip counts).
    scale: float = 0.05
    #: MFI production-set variant used by ``dise_vs_static``.
    variant: str = "dise3"
    max_steps: int = 10_000_000
    #: Checkpoint after this many newly computed cells.
    checkpoint_every: int = 4
    #: Bisect to the first divergent retirement on mismatch.
    bisect: bool = True
    #: Digest-window size used by the bisector.
    window: int = 256

    def validate(self):
        if not self.benchmarks:
            raise CampaignError("verification needs at least one benchmark")
        if not self.oracles:
            raise CampaignError("verification needs at least one oracle")
        unknown = [o for o in self.oracles if o not in ORACLES]
        if unknown:
            raise CampaignError(
                f"unknown oracles {unknown}; choose from {list(ORACLES)}"
            )
        if self.scale <= 0:
            raise CampaignError("scale must be positive")
        if self.max_steps < 1:
            raise CampaignError("max_steps must be positive")
        if self.window < 1:
            raise CampaignError("window must be positive")

    def fingerprint(self) -> Dict[str, object]:
        """JSON-stable identity used to match checkpoints to configs."""
        return {
            "benchmarks": list(self.benchmarks),
            "oracles": list(self.oracles),
            "scale": self.scale,
            "variant": self.variant,
            "max_steps": self.max_steps,
            "bisect": self.bisect,
            "window": self.window,
        }

    def cells(self) -> List[Tuple[str, str]]:
        """All (benchmark, oracle) pairs, in deterministic order."""
        return [(bench, oracle) for bench in self.benchmarks
                for oracle in self.oracles]


def _cell_id(benchmark: str, oracle: str) -> str:
    return f"{benchmark}:{oracle}"


# ----------------------------------------------------------------------
# The fabric recipe: one oracle cell
# ----------------------------------------------------------------------
def _cell_recipe(params: Dict[str, object]) -> Dict[str, object]:
    """Run one oracle cell to its deterministic result dict."""
    outcome = run_oracle(
        params["oracle"], params["benchmark"], scale=params["scale"],
        variant=params["variant"], max_steps=params["max_steps"],
        bisect=params["bisect"], window=params["window"],
    )
    return outcome.to_dict()


register_recipe("repro.verify.campaign:cell", _cell_recipe)


def _cell_task(config: VerifyConfig, benchmark: str, oracle: str) -> Task:
    return Task(
        recipe="repro.verify.campaign:cell",
        params={
            "benchmark": benchmark,
            "oracle": oracle,
            "scale": config.scale,
            "variant": config.variant,
            "max_steps": config.max_steps,
            "bisect": config.bisect,
            "window": config.window,
        },
        task_id=_cell_id(benchmark, oracle),
    )


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def run_verification(config: VerifyConfig,
                     checkpoint_path: Optional[str] = None,
                     resume: bool = False,
                     progress: Optional[Callable[[str, str, int, int],
                                                 None]] = None,
                     jobs: Optional[int] = None,
                     fabric_options: Optional[Dict[str, object]] = None
                     ) -> Dict[str, object]:
    """Run (or resume) a verification sweep; returns the report dict.

    ``progress(cell_id, status, done, total)`` is called after every
    newly computed cell (restored cells stay silent).  Cells are
    independent, so with ``jobs > 1`` they fan out under fabric
    supervision; telemetry counters are incremented in the parent either
    way.  ``fabric_options`` passes extra :class:`~repro.fabric.engine
    .Fabric` knobs through (``store``, ``chaos``, ``task_timeout``...).
    """
    config.validate()
    if resume and not checkpoint_path:
        raise CheckpointError("resume requested without a checkpoint path")

    def on_result(cell: str, record: Dict[str, object], done: int,
                  total: int):
        status = record["status"]
        _telemetry.counter("verify.oracles.run").inc()
        if status == "pass":
            _telemetry.counter("verify.oracles.passed").inc()
        elif status == "diverged":
            _telemetry.counter("verify.oracles.diverged").inc()
        else:
            _telemetry.counter("verify.oracles.errors").inc()
        if progress is not None:
            progress(cell, status, done, total)

    fabric = Fabric(
        "verify", config.fingerprint(), checkpoint_path=checkpoint_path,
        resume=resume, jobs=jobs, checkpoint_every=config.checkpoint_every,
        **(fabric_options or {}),
    )
    tasks = [_cell_task(config, bench, oracle)
             for bench, oracle in config.cells()]
    with _events.span("verify.sweep", cells=len(tasks), jobs=fabric.jobs):
        records = fabric.run(tasks, on_result=on_result)
    return _build_report(config, records)


def _build_report(config: VerifyConfig,
                  records: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    by_oracle: Dict[str, Dict[str, int]] = {
        oracle: {"pass": 0, "diverged": 0, "error": 0}
        for oracle in config.oracles
    }
    divergences = []
    checks = 0
    for cell in sorted(records):
        record = records[cell]
        by_oracle[record["oracle"]][record["status"]] += 1
        checks += record.get("checks", 0)
        if record["status"] != "pass":
            divergences.append(cell)
    return {
        "schema": REPORT_SCHEMA,
        "config": config.fingerprint(),
        "summary": {
            "cells": len(records),
            "checks": checks,
            "passed": sum(c["pass"] for c in by_oracle.values()),
            "diverged": sum(c["diverged"] for c in by_oracle.values()),
            "errors": sum(c["error"] for c in by_oracle.values()),
            "by_oracle": by_oracle,
            "divergent_cells": divergences,
        },
        "cells": [records[cell] for cell in sorted(records)],
    }


def all_passed(report: Dict[str, object]) -> bool:
    summary = report["summary"]
    return summary["diverged"] == 0 and summary["errors"] == 0


# ----------------------------------------------------------------------
# Report I/O and rendering
# ----------------------------------------------------------------------
def save_report(report: Dict[str, object], path: str):
    """Write a report deterministically (sorted keys, no timestamps)."""
    _atomic_write_json(path, report)


def load_report(path: str) -> Dict[str, object]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"unreadable verification report {path}: "
                            f"{exc}") from exc


def render_verify_summary(report: Dict[str, object]) -> str:
    """Human-readable summary of a verification report (markdown)."""
    summary = report["summary"]
    config = report["config"]
    lines: List[str] = []
    lines.append("# Differential conformance verification")
    lines.append("")
    lines.append(
        f"{summary['cells']} oracle cells over "
        f"{', '.join(config['benchmarks'])} (scale {config['scale']}, "
        f"variant {config['variant']}): {summary['passed']} passed, "
        f"{summary['diverged']} diverged, {summary['errors']} errors "
        f"({summary['checks']} individual checks)."
    )
    lines.append("")
    lines.append("| oracle | pass | diverged | error |")
    lines.append("|---|---|---|---|")
    for oracle, counts in summary["by_oracle"].items():
        lines.append(
            f"| {oracle} | {counts['pass']} | {counts['diverged']} | "
            f"{counts['error']} |"
        )
    for record in report["cells"]:
        if record["status"] == "pass":
            continue
        lines.append("")
        lines.append(
            f"## {record['benchmark']}:{record['oracle']} — "
            f"{record['status']}"
        )
        lines.append(record["detail"] or "(no detail)")
        report_dict = record.get("report")
        if report_dict:
            lines.append("```")
            lines.append(json.dumps(report_dict, indent=2, sort_keys=True))
            lines.append("```")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Determinism fingerprints
# ----------------------------------------------------------------------
def _digest_one(args: Tuple[str, float, int]) -> Tuple[str, str, int]:
    """Top-level (picklable) worker: full-projection digest of one profile."""
    from repro.acf.base import plain_installation
    from repro.verify.oracles import _FUNCTIONAL_DISE, _generate
    from repro.verify.observe import Observer

    benchmark, scale, max_steps = args
    observer = Observer("full")
    plain_installation(_generate(benchmark, scale)).run(
        dise_config=_FUNCTIONAL_DISE, record_trace=False,
        max_steps=max_steps, observer=observer,
    )
    return benchmark, observer.hexdigest(), observer.count


def observation_digests(benchmarks, scale: float = 0.02,
                        max_steps: int = 10_000_000,
                        jobs: Optional[int] = None) -> Dict[str, Tuple[str, int]]:
    """Full-projection observation digests for a set of benchmark profiles.

    The determinism suite runs this twice (serially and under a parallel
    job count) and requires bit-identical digests.
    """
    jobs = resolve_jobs(jobs)
    work = [(name, scale, max_steps) for name in benchmarks]
    if jobs > 1 and len(work) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_digest_one, work))
    else:
        results = [_digest_one(item) for item in work]
    return {name: (digest, count) for name, digest, count in results}
