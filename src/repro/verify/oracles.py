"""The lockstep execution oracles.

Each oracle states one of the paper's equivalence claims as a checkable
property over generated workloads and reports an :class:`OracleOutcome`:

``roundtrip``
    assemble -> disassemble -> reassemble is a fixed point for every
    instruction of the benchmark image *and* for canonical samples of
    every opcode in the ISA.
``acf_transparency``
    MFI (both variants), store-address tracing, and path profiling are
    observation-equivalent to the unguarded run on fault-free programs
    (``app`` projection + user-visible snapshot).
``dise_vs_static``
    running under the MFI production set dynamically retires the same
    instruction sequence as the image statically rewritten with
    :func:`repro.program.rewriter.rewrite_with_productions` (``retire``
    projection — values are masked because static relayout legitimately
    changes code addresses), with identical outputs and fault state.
``compression_identity``
    the compressed image executed under its decompression productions
    retires the original instruction sequence with identical outputs.
``functional_vs_cycle``
    the cycle simulator retires exactly the functional simulator's op
    sequence, in order, with monotonically non-decreasing retire times.
``batch_cohort``
    a cohort of data-seed variants stepped by the batch engine
    (:class:`repro.sim.batch.BatchMachine`) is observation-equivalent
    (``full`` projection) to the same lanes run serially on the
    translated scalar tier, with identical outputs, fault state and
    retirement counts per lane.

On any mismatch the oracle (optionally) bisects to the first divergent
retirement and attaches a :class:`~repro.verify.bisect.DivergenceReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.config import DiseConfig
from repro.errors import ReproError
from repro.verify.bisect import DivergenceReport, bisect_divergence
from repro.verify.observe import Observer, snapshot_state

#: All oracle names, in canonical execution order.
ORACLES = ("roundtrip", "acf_transparency", "dise_vs_static",
           "compression_identity", "functional_vs_cycle", "batch_cohort")

#: Perfect replacement-table config: conformance oracles check functional
#: equivalence, not timing, so RT capacity effects are irrelevant here.
_FUNCTIONAL_DISE = DiseConfig(rt_perfect=True)

_DEFAULT_MAX_STEPS = 10_000_000


@dataclass
class OracleOutcome:
    """Result of one (oracle, benchmark) conformance check."""

    oracle: str
    benchmark: str
    #: ``"pass"``, ``"diverged"`` or ``"error"``.
    status: str
    #: Number of sub-comparisons the oracle performed.
    checks: int = 0
    detail: str = ""
    report: Optional[DivergenceReport] = None

    @property
    def passed(self) -> bool:
        return self.status == "pass"

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "benchmark": self.benchmark,
            "status": self.status,
            "checks": self.checks,
            "detail": self.detail,
            "report": self.report.to_dict() if self.report else None,
        }


def _generate(benchmark: str, scale: float):
    from repro.workloads import generate_by_name

    return generate_by_name(benchmark, scale=scale)


def _runner(installation, max_steps: int) -> Callable:
    """A deterministic ``run(observer) -> TraceResult`` closure."""

    def run(observer=None):
        return installation.run(
            dise_config=_FUNCTIONAL_DISE, record_trace=False,
            max_steps=max_steps, observer=observer,
        )

    return run


def compare_runs(run_left, run_right, projection: str,
                 left_label: str = "left", right_label: str = "right",
                 snapshot_scope: Optional[str] = None,
                 mem_range: Optional[Tuple[int, int]] = None,
                 compare_outputs: bool = False,
                 bisect: bool = True, window: int = 256
                 ) -> Tuple[Optional[DivergenceReport], Optional[str]]:
    """Compare two deterministic executions under a projection.

    Returns ``(report, detail)`` — both ``None`` when the runs are
    observation-equivalent.  ``snapshot_scope`` additionally compares the
    final architectural snapshots (``"user"`` restricted to ``mem_range``);
    ``compare_outputs`` additionally requires identical output streams and
    fault state, which is layout-independent and so safe for relayouting
    transformations where value-bearing snapshots are not.
    """
    left_obs = Observer(projection)
    right_obs = Observer(projection)
    left_trace = run_left(left_obs)
    right_trace = run_right(right_obs)

    if (left_obs.hexdigest() != right_obs.hexdigest()
            or left_obs.count != right_obs.count):
        detail = (
            f"{projection} streams differ: {left_label} "
            f"{left_obs.count} obs {left_obs.hexdigest()[:16]}, "
            f"{right_label} {right_obs.count} obs "
            f"{right_obs.hexdigest()[:16]}"
        )
        report = None
        if bisect:
            report = bisect_divergence(
                run_left, run_right, projection,
                left_label=left_label, right_label=right_label,
                window=window,
            )
        return report, detail

    if snapshot_scope is not None:
        left_state = snapshot_state(left_trace, scope=snapshot_scope,
                                    mem_range=mem_range)
        right_state = snapshot_state(right_trace, scope=snapshot_scope,
                                     mem_range=mem_range)
        if left_state != right_state:
            diffs = [key for key in left_state
                     if left_state[key] != right_state[key]]
            report = DivergenceReport(
                kind="snapshot", projection=projection,
                left_label=left_label, right_label=right_label,
                detail=f"final state differs in: {', '.join(diffs)}",
            )
            return report, report.detail

    if compare_outputs:
        failure = _outputs_match(left_trace, right_trace,
                                 left_label, right_label)
        if failure is not None:
            report = DivergenceReport(
                kind="snapshot", projection=projection,
                left_label=left_label, right_label=right_label,
                detail=failure,
            )
            return report, failure
    return None, None


def _outputs_match(left_trace, right_trace, left_label, right_label
                   ) -> Optional[str]:
    if left_trace.outputs != right_trace.outputs:
        return (f"outputs differ: {left_label} {left_trace.outputs!r} vs "
                f"{right_label} {right_trace.outputs!r}")
    if left_trace.fault_code != right_trace.fault_code:
        return (f"fault codes differ: {left_label} "
                f"{left_trace.fault_code!r} vs {right_label} "
                f"{right_trace.fault_code!r}")
    return None


# ----------------------------------------------------------------------
# roundtrip
# ----------------------------------------------------------------------
def _canonical_samples():
    """Canonical instruction samples covering every opcode and format
    variant (register/literal operate forms, zero/non-zero fault ra...)."""
    from repro.isa.instruction import Instruction
    from repro.isa.opcodes import Format, Opcode

    for op in Opcode:
        fmt = op.format
        if fmt is Format.NULLARY:
            yield Instruction(op)
        elif fmt is Format.MEM:
            yield Instruction(op, ra=4, rb=5, imm=-8)
            yield Instruction(op, ra=0, rb=31, imm=32767)
        elif fmt is Format.BRANCH:
            yield Instruction(op, ra=3, imm=2)
            yield Instruction(op, ra=31, imm=-5)
            yield Instruction(op, ra=4, imm=9)
        elif fmt is Format.OPERATE:
            yield Instruction(op, ra=1, rb=2, rc=3)
            yield Instruction(op, ra=1, imm=255, rc=3)
        elif fmt is Format.JUMP:
            yield Instruction(op, ra=26, rb=27)
            yield Instruction(op, ra=None, rb=3)
        elif fmt is Format.CODEWORD:
            yield Instruction(op, ra=1, rb=2, rc=3, imm=77)


def _check_roundtrip(instr, pc: Optional[int]) -> Optional[str]:
    from repro.isa.assembler import parse_instruction
    from repro.isa.disassembler import disassemble
    from repro.isa.encoding import canonicalize, encode, decode

    word = encode(instr)
    decoded = decode(word)
    text = disassemble(decoded)
    try:
        reparsed = parse_instruction(text)
    except ValueError as exc:
        return f"{text!r} does not reassemble: {exc}"
    if canonicalize(reparsed) != decoded:
        return (f"{text!r} reassembles to a different instruction: "
                f"{canonicalize(reparsed)} != {decoded}")
    if encode(reparsed) != word:
        return (f"{text!r} re-encodes to {encode(reparsed):#010x}, "
                f"expected {word:#010x}")
    return None


def oracle_roundtrip(benchmark: str, scale: float, **_kwargs) -> OracleOutcome:
    image = _generate(benchmark, scale)
    checks = 0
    for index, instr in enumerate(image.instructions):
        checks += 1
        failure = _check_roundtrip(instr, image.addresses[index])
        if failure is not None:
            pc = image.addresses[index]
            report = DivergenceReport(
                kind="roundtrip", projection=None,
                left_label="image", right_label="reassembled",
                index=index,
                detail=f"pc={pc:#x} index={index}: {failure}",
            )
            return OracleOutcome("roundtrip", benchmark, "diverged",
                                 checks=checks, detail=report.detail,
                                 report=report)
    for instr in _canonical_samples():
        checks += 1
        failure = _check_roundtrip(instr, None)
        if failure is not None:
            report = DivergenceReport(
                kind="roundtrip", projection=None,
                left_label="sample", right_label="reassembled",
                detail=f"{instr.opcode.name}: {failure}",
            )
            return OracleOutcome("roundtrip", benchmark, "diverged",
                                 checks=checks, detail=report.detail,
                                 report=report)
    return OracleOutcome("roundtrip", benchmark, "pass", checks=checks)


# ----------------------------------------------------------------------
# acf_transparency
# ----------------------------------------------------------------------
def _transparency_acfs(image):
    from repro.acf.mfi import attach_mfi
    from repro.acf.profiling import attach_path_profiling
    from repro.acf.tracing import attach_sat

    return (
        attach_mfi(image, variant="dise3"),
        attach_mfi(image, variant="dise4"),
        attach_sat(image),
        attach_path_profiling(image),
    )


def oracle_acf_transparency(benchmark: str, scale: float,
                            max_steps: int = _DEFAULT_MAX_STEPS,
                            bisect: bool = True, window: int = 256,
                            **_kwargs) -> OracleOutcome:
    from repro.acf.base import plain_installation

    image = _generate(benchmark, scale)
    plain = plain_installation(image)
    # ACF scratch state (SAT buffer, profile table, dedicated registers)
    # lives outside the data segment by construction, so a user-scoped
    # snapshot over the data segment must be untouched.
    data_range = (image.data_base, image.data_base + image.data_size)
    checks = 0
    for acf in _transparency_acfs(image):
        checks += 1
        report, detail = compare_runs(
            _runner(plain, max_steps), _runner(acf, max_steps),
            projection="app", left_label="plain", right_label=acf.name,
            snapshot_scope="user", mem_range=data_range,
            bisect=bisect, window=window,
        )
        if detail is not None:
            return OracleOutcome("acf_transparency", benchmark, "diverged",
                                 checks=checks,
                                 detail=f"{acf.name}: {detail}",
                                 report=report)
    return OracleOutcome("acf_transparency", benchmark, "pass", checks=checks)


# ----------------------------------------------------------------------
# dise_vs_static
# ----------------------------------------------------------------------
def oracle_dise_vs_static(benchmark: str, scale: float,
                          variant: str = "dise3",
                          max_steps: int = _DEFAULT_MAX_STEPS,
                          bisect: bool = True, window: int = 256,
                          **_kwargs) -> OracleOutcome:
    from repro.acf.base import AcfInstallation
    from repro.acf.mfi import attach_mfi, mfi_production_set
    from repro.program.rewriter import rewrite_with_productions

    dynamic = attach_mfi(_generate(benchmark, scale), variant=variant)
    pset = mfi_production_set(dynamic.image, variant=variant)
    static_image = rewrite_with_productions(dynamic.image, pset)
    static = AcfInstallation(image=static_image, production_sets=[],
                             init_machine=dynamic.init_machine,
                             name=f"static-{variant}")

    report, detail = compare_runs(
        _runner(dynamic, max_steps), _runner(static, max_steps),
        projection="retire", left_label="dise", right_label="static",
        compare_outputs=True, bisect=bisect, window=window,
    )
    if detail is not None:
        return OracleOutcome("dise_vs_static", benchmark, "diverged",
                             checks=2, detail=detail, report=report)
    return OracleOutcome("dise_vs_static", benchmark, "pass", checks=2)


# ----------------------------------------------------------------------
# compression_identity
# ----------------------------------------------------------------------
def oracle_compression_identity(benchmark: str, scale: float,
                                max_steps: int = _DEFAULT_MAX_STEPS,
                                bisect: bool = True, window: int = 256,
                                **_kwargs) -> OracleOutcome:
    from repro.acf.base import plain_installation
    from repro.acf.compression import compress_image

    image = _generate(benchmark, scale)
    result = compress_image(image)
    original = plain_installation(image)
    compressed = result.installation()

    report, detail = compare_runs(
        _runner(original, max_steps), _runner(compressed, max_steps),
        projection="retire", left_label="original", right_label="compressed",
        compare_outputs=True, bisect=bisect, window=window,
    )
    if detail is not None:
        return OracleOutcome("compression_identity", benchmark, "diverged",
                             checks=2, detail=detail, report=report)
    return OracleOutcome("compression_identity", benchmark, "pass",
                         checks=2)


# ----------------------------------------------------------------------
# functional_vs_cycle
# ----------------------------------------------------------------------
def _op_observation(op) -> tuple:
    return (op.pc, op.disepc, op.opcode.name, op.mem_addr, op.is_store,
            op.ctrl_taken)


def oracle_functional_vs_cycle(benchmark: str, scale: float,
                               max_steps: int = _DEFAULT_MAX_STEPS,
                               **_kwargs) -> OracleOutcome:
    from repro.sim.cycle import simulate_trace
    from repro.sim.functional import run_program

    image = _generate(benchmark, scale)
    functional_obs = Observer("full")
    trace = run_program(image, record_trace=True, max_steps=max_steps,
                        observer=functional_obs)

    # Run BOTH replay engines: the reference scalar loop defines the
    # semantics, the outcome engine must match it bit-for-bit — results,
    # retire streams and timestamps alike.
    retired: List[tuple] = []
    retire_times: List[int] = []

    def retire_observer(op, when):
        retired.append(_op_observation(op))
        retire_times.append(when)

    outcome_retired: List[tuple] = []
    outcome_times: List[int] = []

    def outcome_observer(op, when):
        outcome_retired.append(_op_observation(op))
        outcome_times.append(when)

    ref_result = simulate_trace(trace, retire_observer=retire_observer,
                                engine="reference")
    out_result = simulate_trace(trace, retire_observer=outcome_observer,
                                engine="outcome")

    checks = 5
    if ref_result != out_result:
        diffs = [
            f"{field}: reference {lhs} vs outcome {rhs}"
            for field, lhs, rhs in (
                (name, getattr(ref_result, name), getattr(out_result, name))
                for name in vars(ref_result)
            )
            if lhs != rhs
        ]
        return OracleOutcome(
            "functional_vs_cycle", benchmark, "diverged", checks=checks,
            detail="cycle engines disagree: " + "; ".join(diffs),
        )
    if retired != outcome_retired or retire_times != outcome_times:
        index = next(
            (i for i, (lhs, rhs) in enumerate(
                zip(zip(retired, retire_times),
                    zip(outcome_retired, outcome_times)))
             if lhs != rhs),
            min(len(retired), len(outcome_retired)),
        )
        return OracleOutcome(
            "functional_vs_cycle", benchmark, "diverged", checks=checks,
            detail=(f"cycle engines disagree on retirement {index}: "
                    "reference vs outcome retire streams differ"),
        )
    if functional_obs.count != len(trace.ops):
        return OracleOutcome(
            "functional_vs_cycle", benchmark, "diverged", checks=checks,
            detail=(f"observer saw {functional_obs.count} retirements but "
                    f"the trace holds {len(trace.ops)} ops"),
        )
    expected = [_op_observation(op) for op in trace.ops]
    if retired != expected:
        index = next(
            (i for i, (lhs, rhs) in enumerate(zip(expected, retired))
             if lhs != rhs),
            min(len(expected), len(retired)),
        )
        lhs = expected[index] if index < len(expected) else None
        rhs = retired[index] if index < len(retired) else None
        report = DivergenceReport(
            kind="stream", projection="retire",
            left_label="functional", right_label="cycle", index=index,
            detail=(f"retired op {index} differs: functional {lhs!r} vs "
                    f"cycle {rhs!r}"),
        )
        return OracleOutcome("functional_vs_cycle", benchmark, "diverged",
                             checks=checks, detail=report.detail,
                             report=report)
    non_monotonic = next(
        (i for i in range(1, len(retire_times))
         if retire_times[i] < retire_times[i - 1]),
        None,
    )
    if non_monotonic is not None:
        return OracleOutcome(
            "functional_vs_cycle", benchmark, "diverged", checks=checks,
            detail=(f"retire times are not monotonic at op {non_monotonic}: "
                    f"{retire_times[non_monotonic - 1]} -> "
                    f"{retire_times[non_monotonic]}"),
        )
    return OracleOutcome("functional_vs_cycle", benchmark, "pass",
                         checks=checks)


# ----------------------------------------------------------------------
# batch_cohort
# ----------------------------------------------------------------------
def oracle_batch_cohort(benchmark: str, scale: float,
                        variant: str = "dise3",
                        max_steps: int = _DEFAULT_MAX_STEPS,
                        **_kwargs) -> OracleOutcome:
    from repro.acf.base import AcfInstallation
    from repro.acf.mfi import attach_mfi, ensure_error_stub
    from repro.sim.batch import BatchMachine
    from repro.workloads import get_profile
    from repro.workloads.generator import reseed_data

    image = _generate(benchmark, scale)
    # Pre-stub so attach_mfi shares this exact image (and therefore the
    # translation and compiled-block stores) instead of copying it.
    ensure_error_stub(image)
    inst = attach_mfi(image, variant=variant)
    profile = get_profile(benchmark)
    seeds = (None, 1, 2, 3)

    def lane(seed):
        target = inst
        if seed is not None:
            target = AcfInstallation(
                image=reseed_data(inst.image, profile, seed),
                production_sets=inst.production_sets,
                init_machine=inst.init_machine, name=inst.name,
            )
        machine = target.make_machine(_FUNCTIONAL_DISE, record_trace=False,
                                      dispatch="translated")
        obs = Observer("full")
        machine._install_observer(obs)
        return machine, obs

    serial = []
    for seed in seeds:
        machine, obs = lane(seed)
        machine.run(max_steps=max_steps)
        serial.append((machine, obs))

    cohort = BatchMachine()
    batched = []
    for seed in seeds:
        machine, obs = lane(seed)
        cohort.add_lane(machine, max_steps=max_steps)
        batched.append((machine, obs))
    cohort.run()
    for outcome in cohort.outcomes():
        outcome.raise_or_result(max_steps)

    checks = len(seeds)
    for index, ((sm, sobs), (bm, bobs)) in enumerate(zip(serial, batched)):
        mismatch = None
        if sobs.hexdigest() != bobs.hexdigest() or sobs.count != bobs.count:
            mismatch = (f"full streams differ: serial {sobs.count} obs "
                        f"{sobs.hexdigest()[:16]}, batch {bobs.count} obs "
                        f"{bobs.hexdigest()[:16]}")
        elif (sm.halted, sm.fault_code) != (bm.halted, bm.fault_code):
            mismatch = (f"fault state differs: serial "
                        f"({sm.halted}, {sm.fault_code!r}) vs batch "
                        f"({bm.halted}, {bm.fault_code!r})")
        elif sm.outputs != bm.outputs:
            mismatch = (f"outputs differ: serial {sm.outputs!r} vs "
                        f"batch {bm.outputs!r}")
        elif (sm.instructions, sm.app_instructions, sm.expansions) != \
                (bm.instructions, bm.app_instructions, bm.expansions):
            mismatch = (
                f"retirement counts differ: serial "
                f"({sm.instructions}, {sm.app_instructions}, "
                f"{sm.expansions}) vs batch ({bm.instructions}, "
                f"{bm.app_instructions}, {bm.expansions})")
        if mismatch is not None:
            seed = seeds[index]
            report = DivergenceReport(
                kind="stream", projection="full",
                left_label="serial", right_label="batch", index=index,
                detail=f"lane {index} (data_seed={seed}): {mismatch}",
            )
            return OracleOutcome("batch_cohort", benchmark, "diverged",
                                 checks=checks, detail=report.detail,
                                 report=report)
    return OracleOutcome("batch_cohort", benchmark, "pass", checks=checks)


_ORACLE_FNS = {
    "roundtrip": oracle_roundtrip,
    "acf_transparency": oracle_acf_transparency,
    "dise_vs_static": oracle_dise_vs_static,
    "compression_identity": oracle_compression_identity,
    "functional_vs_cycle": oracle_functional_vs_cycle,
    "batch_cohort": oracle_batch_cohort,
}


def run_oracle(oracle: str, benchmark: str, scale: float = 0.05,
               variant: str = "dise3", max_steps: int = _DEFAULT_MAX_STEPS,
               bisect: bool = True, window: int = 256) -> OracleOutcome:
    """Run one oracle against one benchmark profile.

    Never raises for conformance failures (``status="diverged"``) or
    model-level errors (``status="error"``, with the structured details);
    programming errors propagate.
    """
    try:
        fn = _ORACLE_FNS[oracle]
    except KeyError:
        raise ValueError(
            f"unknown oracle {oracle!r}; expected one of {ORACLES}"
        ) from None
    try:
        return fn(benchmark, scale, variant=variant, max_steps=max_steps,
                  bisect=bisect, window=window)
    except ReproError as exc:
        return OracleOutcome(oracle, benchmark, "error",
                             detail=f"{type(exc).__name__}: {exc}")
