"""Differential conformance engine (PR 4).

The paper's central correctness claims are *equivalence* claims: dynamic
DISE expansion must be observationally equivalent to static rewriting
(Section 3), ACFs must be transparent on fault-free runs, decompression
must reproduce the original execution.  This package checks them
end-to-end:

* :mod:`repro.verify.observe` — per-retired-instruction observation
  streams folded into rolling digests, plus architectural-state snapshot
  digests;
* :mod:`repro.verify.oracles` — the five lockstep execution oracles;
* :mod:`repro.verify.bisect` — first-divergence bisection producing a
  structured :class:`~repro.verify.bisect.DivergenceReport`;
* :mod:`repro.verify.campaign` — the (benchmark x oracle) sweep driver
  with checkpoint/resume, run by ``repro-cli verify``.
"""

from repro.verify.observe import (  # noqa: F401
    CapturingObserver,
    ObservationRecord,
    Observer,
    PROJECTIONS,
    WindowedObserver,
    snapshot_digest,
    snapshot_state,
)
from repro.verify.bisect import DivergenceReport, bisect_divergence  # noqa: F401
from repro.verify.oracles import ORACLES, OracleOutcome, run_oracle  # noqa: F401
from repro.verify.campaign import (  # noqa: F401
    VerifyConfig,
    load_report,
    render_verify_summary,
    run_verification,
    save_report,
)
