"""Observation streams: per-retired-instruction digests of an execution.

An :class:`Observer` attaches to a functional :class:`~repro.sim.functional.Machine`
(``Machine(image, observer=...)``) and folds one observation per retired
dynamic instruction into a rolling sha256.  Two runs are observation-
equivalent under a projection iff their digests (and observation counts)
match.  Like telemetry, the hook is wired at construction time: a machine
built without an observer keeps the bare dispatch path, byte-identical to
an uninstrumented machine (``bench_telemetry.py`` pins this).

Observations are *recomputed after execution* from architectural state,
which is safe for this ISA: a store never writes a register, so its
effective address and value are still recoverable from the register file,
and a destination register's value is simply read back.

Projections
-----------
Different oracles need different notions of "the same execution":

``full``
    ``(pc, disepc, opcode, effects)`` for every retirement, with effects
    over all 40 registers.  The strictest stream — used for determinism
    checks and run fingerprints.  Only bit-identical replays match.
``app``
    ``(pc, opcode, user effects)`` for application instructions only
    (``is_trigger`` retirements: app-stream instructions and trigger
    copies inside expansions).  DISE-inserted replacement instructions are
    invisible, so an ACF is transparent iff the guarded run's ``app``
    stream equals the unguarded run's.  Valid when both runs share one
    image layout.
``user``
    User-visible effects only (user-register writes, stores, outputs),
    from every retirement, with empty observations skipped.  Like ``app``
    but also sees effects of inserted code — used to catch ACFs that leak
    state into user registers or memory.
``retire``
    ``(opcode, dest register number, is_store[, out value])`` — the
    retired instruction *sequence* with all values and addresses masked
    out.  Survives code relayout (static rewriting, compression moves
    text, so return addresses and code pointers differ by design); this
    is "compare retirement streams modulo expansion boundaries".

The digest format is ``sha256(repr(obs))`` folded in retirement order;
``Observer.hexdigest()`` returns the running hex digest and
``Observer.count`` the number of folded observations.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.isa.opcodes import Opcode
from repro.isa.registers import NUM_USER_REGS
from repro.sim.memory import MASK64

#: Zero register id (mirrors ``repro.sim.functional.ZERO``; re-declared to
#: keep this module importable without pulling in the simulator).
_ZERO = 31

#: The supported observation projections.
PROJECTIONS = ("full", "app", "user", "retire")


def _effects(machine, instr, user_only: bool) -> List[tuple]:
    """Architectural effects of ``instr``, recomputed post-execution."""
    op = instr.opcode
    effects = []
    dest = instr.dest_reg()
    if dest is not None and (not user_only or dest < NUM_USER_REGS):
        effects.append(("r", dest, machine.regs[dest]))
    if op.is_store:
        rb = instr.rb
        base = 0 if rb == _ZERO else machine.regs[rb]
        addr = (base + instr.imm) & MASK64
        ra = instr.ra
        value = 0 if ra == _ZERO else machine.regs[ra]
        if op is Opcode.STL:
            value &= 0xFFFFFFFF
        effects.append(("m", addr, value))
    elif op is Opcode.OUT:
        effects.append(("o", machine.outputs[-1]))
    return effects


class Observer:
    """Folds one observation per retired instruction into a rolling sha256.

    Attach with ``Machine(image, observer=...)``; the machine calls
    :meth:`observe` after every retirement.
    """

    __slots__ = ("projection", "count", "_h")

    def __init__(self, projection: str = "full"):
        if projection not in PROJECTIONS:
            raise ValueError(
                f"unknown projection {projection!r}; expected one of "
                f"{PROJECTIONS}"
            )
        self.projection = projection
        #: Number of observations folded so far (post-projection).
        self.count = 0
        self._h = hashlib.sha256()

    # The machine invokes this after executing each dynamic instruction.
    def observe(self, machine, instr, pc: int, disepc: int, is_trigger: bool):
        projection = self.projection
        if projection == "full":
            obs = (pc, disepc, instr.opcode.name,
                   tuple(_effects(machine, instr, False)))
        elif projection == "app":
            if not is_trigger:
                return
            obs = (pc, instr.opcode.name,
                   tuple(_effects(machine, instr, True)))
        elif projection == "user":
            effects = _effects(machine, instr, True)
            if not effects:
                return
            obs = tuple(effects)
        else:  # retire
            op = instr.opcode
            obs = (op.name, instr.dest_reg(), op.is_store,
                   machine.outputs[-1] if op is Opcode.OUT else None)
        self._emit(obs, machine, instr, pc, disepc)

    def _emit(self, obs, machine, instr, pc, disepc):
        self._h.update(repr(obs).encode("ascii"))
        self.count += 1

    def hexdigest(self) -> str:
        """Hex digest of the observation stream so far."""
        return self._h.hexdigest()


class ChainedObserver(Observer):
    """An :class:`Observer` whose digest state is an explicit 32-byte value.

    Instead of one long-lived ``sha256()`` stream (whose internal state
    cannot be serialized), each observation is folded as
    ``digest_n = sha256(digest_{n-1} || repr(obs))`` starting from 32 zero
    bytes.  The running digest is therefore a plain ``(count, hex)`` pair
    that survives JSON round-trips: the serving layer checkpoints it when
    a session is evicted, forked, or carried across a server restart, and
    ``repro-cli run --digest`` folds the identical chain so a served run's
    digest can be compared byte-for-byte against the batch CLI's.

    The chained fold produces a *different* digest than :class:`Observer`
    for the same stream — compare chained against chained only.
    """

    __slots__ = ("_digest",)

    #: Chain seed: 32 zero bytes (the width of one sha256 link).
    SEED = b"\x00" * 32

    def __init__(self, projection: str = "full",
                 state: Optional[dict] = None):
        super().__init__(projection)
        self._digest = self.SEED
        if state is not None:
            if state.get("projection", projection) != self.projection:
                raise ValueError(
                    f"observer state was captured under projection "
                    f"{state.get('projection')!r}, not {self.projection!r}"
                )
            self.count = int(state["count"])
            self._digest = bytes.fromhex(state["digest"])
            if len(self._digest) != 32:
                raise ValueError("observer digest state must be 32 bytes")

    def _emit(self, obs, machine, instr, pc, disepc):
        self._digest = hashlib.sha256(
            self._digest + repr(obs).encode("ascii")
        ).digest()
        self.count += 1

    def hexdigest(self) -> str:
        return self._digest.hex()

    def state(self) -> dict:
        """JSON-serializable digest state; feed back via ``state=``."""
        return {"projection": self.projection, "count": self.count,
                "digest": self.hexdigest()}

    def clone(self) -> "ChainedObserver":
        """An independent observer continuing this digest chain (fork)."""
        return ChainedObserver(self.projection, state=self.state())


class WindowedObserver(Observer):
    """An :class:`Observer` that also records the rolling digest at every
    ``window`` observations, so a later pass can locate the first divergent
    window without storing the stream itself."""

    __slots__ = ("window", "window_digests")

    def __init__(self, projection: str = "full", window: int = 256):
        super().__init__(projection)
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        #: Hex digest of the stream after each full window.
        self.window_digests: List[str] = []

    def _emit(self, obs, machine, instr, pc, disepc):
        super()._emit(obs, machine, instr, pc, disepc)
        if self.count % self.window == 0:
            self.window_digests.append(self._h.hexdigest())


@dataclass(frozen=True)
class ObservationRecord:
    """One captured observation, with enough context to diagnose it."""

    #: Global index in the (projected) observation stream.
    index: int
    pc: int
    disepc: int
    opcode: str
    #: The retired instruction, disassembled.
    text: str
    #: The folded observation tuple.
    observation: tuple
    #: Full register file immediately after this retirement.
    regs: Tuple[int, ...]

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "pc": self.pc,
            "disepc": self.disepc,
            "opcode": self.opcode,
            "text": self.text,
            "observation": repr(self.observation),
        }


class CapturingObserver(Observer):
    """An :class:`Observer` that captures full :class:`ObservationRecord`
    entries for observation indexes in ``[lo, hi)`` — the second bisection
    pass, replaying only the divergent window at full fidelity."""

    __slots__ = ("lo", "hi", "records")

    def __init__(self, projection: str = "full", lo: int = 0,
                 hi: Optional[int] = None):
        super().__init__(projection)
        self.lo = lo
        self.hi = hi
        self.records: List[ObservationRecord] = []

    def _emit(self, obs, machine, instr, pc, disepc):
        index = self.count
        super()._emit(obs, machine, instr, pc, disepc)
        if index >= self.lo and (self.hi is None or index < self.hi):
            self.records.append(ObservationRecord(
                index=index, pc=pc, disepc=disepc, opcode=instr.opcode.name,
                text=str(instr), observation=obs, regs=tuple(machine.regs),
            ))


# ----------------------------------------------------------------------
# Architectural-state snapshot digests
# ----------------------------------------------------------------------
def snapshot_state(trace, scope: str = "full",
                   mem_range: Optional[Tuple[int, int]] = None) -> dict:
    """Canonical final-state summary of a :class:`TraceResult`.

    ``scope="full"`` covers all 40 registers and every non-zero memory
    word; ``scope="user"`` restricts to user registers, and memory to
    ``mem_range`` (a ``[lo, hi)`` address pair, typically the data
    segment) — dedicated registers and ACF scratch buffers placed outside
    the data segment are invisible, matching the transparency oracles.
    """
    if scope not in ("full", "user"):
        raise ValueError(f"unknown snapshot scope {scope!r}")
    regs = trace.final_regs
    if scope == "user":
        regs = regs[:NUM_USER_REGS]
    items = sorted(
        (addr, value)
        for addr, value in trace.final_memory._nonzero().items()
        if mem_range is None or mem_range[0] <= addr < mem_range[1]
    )
    return {
        "regs": tuple(regs),
        "memory": tuple(items),
        "outputs": tuple(trace.outputs),
        "fault_code": trace.fault_code,
        "halted": trace.halted,
    }


def snapshot_digest(trace, scope: str = "full",
                    mem_range: Optional[Tuple[int, int]] = None) -> str:
    """Hex digest of :func:`snapshot_state`."""
    state = snapshot_state(trace, scope=scope, mem_range=mem_range)
    payload = repr(sorted(state.items())).encode("ascii")
    return hashlib.sha256(payload).hexdigest()
