"""First-divergence bisection for mismatched observation streams.

When an oracle's rolling digests disagree, this module re-runs both
executions twice to locate the *first* divergent retirement without ever
storing either stream:

1. a **windowed** pass records the rolling digest every ``window``
   observations; the first window whose boundary digests differ brackets
   the divergence;
2. a **capturing** pass records full :class:`~repro.verify.observe.ObservationRecord`
   entries only inside that window; comparing them pinpoints the first
   differing observation.

Both passes rely on the executions being deterministic — which the
determinism test suite pins for every benchmark profile.

The result is a :class:`DivergenceReport` naming the divergent pc,
DISEPC, observation index, both instructions disassembled, and the
register delta, carried by :class:`repro.errors.DivergenceError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import DivergenceError
from repro.isa.registers import reg_name
from repro.verify.observe import (
    CapturingObserver,
    ObservationRecord,
    WindowedObserver,
)

__all__ = ["DivergenceReport", "DivergenceError", "bisect_divergence"]


@dataclass(frozen=True)
class DivergenceReport:
    """Structured description of the first point two executions diverge."""

    #: What diverged: ``"stream"`` (observation mismatch), ``"length"``
    #: (one stream is a strict prefix of the other), ``"snapshot"``
    #: (streams matched but final state differs) or ``"roundtrip"``
    #: (a static encoding fixed-point failure).
    kind: str
    projection: Optional[str]
    left_label: str
    right_label: str
    #: Index of the first divergent observation in the projected stream
    #: (None for snapshot divergences).
    index: Optional[int] = None
    left: Optional[ObservationRecord] = None
    right: Optional[ObservationRecord] = None
    #: ``(register name, left value, right value)`` for registers that
    #: differ at the divergent retirement.
    reg_delta: Tuple[Tuple[str, int, int], ...] = ()
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "projection": self.projection,
            "left_label": self.left_label,
            "right_label": self.right_label,
            "index": self.index,
            "left": self.left.to_dict() if self.left else None,
            "right": self.right.to_dict() if self.right else None,
            "reg_delta": [list(entry) for entry in self.reg_delta],
            "detail": self.detail,
        }

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"divergence ({self.kind}, projection={self.projection})"]
        if self.detail:
            lines.append(f"  {self.detail}")
        if self.index is not None:
            lines.append(f"  first divergent observation index: {self.index}")
        for label, record in ((self.left_label, self.left),
                              (self.right_label, self.right)):
            if record is None:
                lines.append(f"  {label}: <stream ended>")
            else:
                lines.append(
                    f"  {label}: pc={record.pc:#x} disepc={record.disepc} "
                    f"{record.text}"
                )
                lines.append(f"    observed: {record.observation!r}")
        for name, lhs, rhs in self.reg_delta:
            lines.append(f"  {name}: {lhs:#x} != {rhs:#x}")
        return "\n".join(lines)


def _reg_delta(left: Optional[ObservationRecord],
               right: Optional[ObservationRecord]):
    if left is None or right is None:
        return ()
    return tuple(
        (reg_name(index), lhs, rhs)
        for index, (lhs, rhs) in enumerate(zip(left.regs, right.regs))
        if lhs != rhs
    )


def bisect_divergence(run_left, run_right, projection: str,
                      left_label: str = "left", right_label: str = "right",
                      window: int = 256) -> Optional[DivergenceReport]:
    """Locate the first divergent observation between two deterministic runs.

    ``run_left`` / ``run_right`` are callables taking an observer and
    executing the respective program to completion under it.  Returns a
    :class:`DivergenceReport`, or ``None`` when the streams are identical
    (the caller then knows the divergence is elsewhere, e.g. in the final
    snapshot).
    """
    wl = WindowedObserver(projection, window=window)
    wr = WindowedObserver(projection, window=window)
    run_left(wl)
    run_right(wr)
    if wl.hexdigest() == wr.hexdigest() and wl.count == wr.count:
        return None

    first_window = None
    for k, (dl, dr) in enumerate(zip(wl.window_digests, wr.window_digests)):
        if dl != dr:
            first_window = k
            break
    if first_window is None:
        # All shared full windows agree; the divergence is in the tail.
        first_window = min(len(wl.window_digests), len(wr.window_digests))
    lo, hi = first_window * window, (first_window + 1) * window

    cl = CapturingObserver(projection, lo=lo, hi=hi)
    cr = CapturingObserver(projection, lo=lo, hi=hi)
    run_left(cl)
    run_right(cr)

    left = right = None
    index = None
    for rl, rr in zip(cl.records, cr.records):
        if rl.observation != rr.observation:
            left, right, index = rl, rr, rl.index
            break
    if index is None:
        # One stream ran out inside the window: a length divergence.
        nl, nr = len(cl.records), len(cr.records)
        if nl == nr:
            # Window identical but digests differ — divergence past the
            # captured window (tail of unequal-length streams).
            index = lo + nl
            detail = (f"streams agree through observation {index - 1}; "
                      f"lengths {cl.count} vs {cr.count}")
        else:
            shorter, longer = (cl, cr) if nl < nr else (cr, cl)
            index = lo + min(nl, nr)
            surviving = longer.records[min(nl, nr)]
            if longer is cl:
                left = surviving
            else:
                right = surviving
            detail = (f"{left_label if shorter is cl else right_label} "
                      f"stream ended at observation {index} "
                      f"({cl.count} vs {cr.count} observations)")
        return DivergenceReport(
            kind="length", projection=projection, left_label=left_label,
            right_label=right_label, index=index, left=left, right=right,
            detail=detail,
        )

    return DivergenceReport(
        kind="stream", projection=projection, left_label=left_label,
        right_label=right_label, index=index, left=left, right=right,
        reg_delta=_reg_delta(left, right),
        detail="first divergent retirement",
    )


def raise_divergence(message: str, report: Optional[DivergenceReport]):
    """Raise :class:`DivergenceError` carrying ``report``."""
    raise DivergenceError(message, report=report)
