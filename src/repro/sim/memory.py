"""Sparse data memory, 8-byte word granularity."""

from __future__ import annotations

MASK64 = 0xFFFFFFFFFFFFFFFF


class Memory:
    """Word-addressed sparse memory; unwritten locations read as zero."""

    __slots__ = ("_words",)

    def __init__(self, init=None):
        self._words = dict(init) if init else {}

    def read(self, addr: int) -> int:
        return self._words.get(addr & ~7, 0)

    def write(self, addr: int, value: int):
        self._words[addr & ~7] = value & MASK64

    def snapshot(self) -> dict:
        return dict(self._words)

    def restore(self, snapshot: dict):
        self._words = dict(snapshot)

    def __len__(self):
        return len(self._words)

    def __eq__(self, other):
        if isinstance(other, Memory):
            return self._nonzero() == other._nonzero()
        return NotImplemented

    def _nonzero(self):
        return {a: v for a, v in self._words.items() if v}
