"""Dynamic-trace records shared by the functional and timing simulators.

The functional simulator executes the program once (with DISE expansion at
fetch) and emits one dynamic-instruction record per retirement.  The timing
simulator then replays the trace under different machine configurations —
exactly the factoring the experiments need, since one ACF transformation is
evaluated across many cache sizes, widths, and engine placements.

Records are stored structure-of-arrays (:class:`OpColumns`): five parallel
``array('Q')`` columns (pc, packed metadata, memory address, control target,
packed source registers) plus a sparse ``{op_index: expansion_event}`` dict.
The timing simulator's replay loop reads the columns directly; per-op
:class:`Op` objects are materialised lazily (``TraceResult.ops``) for
consumers that want them — oracles, fault-site profiling, tests.

The metadata column packs one 64-bit word per op::

    bits  0..7   opcode code
    bits  8..11  control-transfer kind (see CTRL_CODES; 0 = none)
    bit  12      control transfer taken
    bit  13      is_store
    bit  14      is_trigger (app-stream instruction or trigger copy)
    bit  15      has mem_addr (value in the mem column)
    bit  16      has fetch_addr (always equal to pc when present)
    bit  17      has ctrl_target (value in the target column)
    bit  18      has expansion event (entry in the exp dict)
    bits 19..26  dest register + 1 (0 = no dest)
    bits 27..    DISEPC

Source registers pack 6 bits per operand (register id + 1), in order,
zero-terminated — the ISA reads at most three sources per instruction.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from repro.isa.opcodes import OPCODE_BY_CODE

# Control-transfer kinds recorded on an Op.
CTRL_COND = "cond"          # conditional branch
CTRL_UNCOND = "uncond"      # direct br
CTRL_CALL = "call"          # bsr / jsr (writes a return address)
CTRL_RET = "ret"            # ret
CTRL_INDIRECT = "indirect"  # jmp
CTRL_DISE = "dise"          # DISE-internal branch (never predicted)

#: String kind -> packed metadata code (0 reserved for "no transfer").
CTRL_CODES = {
    None: 0, CTRL_COND: 1, CTRL_UNCOND: 2, CTRL_CALL: 3, CTRL_RET: 4,
    CTRL_INDIRECT: 5, CTRL_DISE: 6,
}
#: Packed code -> string kind (index 0 = None).
CTRL_FROM_CODE = (None, CTRL_COND, CTRL_UNCOND, CTRL_CALL, CTRL_RET,
                  CTRL_INDIRECT, CTRL_DISE)

#: Integer codes for the timing model's hot loop (compare against
#: ``(meta >> CTRL_SHIFT) & 0xF``).
CC_COND = 1
CC_UNCOND = 2
CC_CALL = 3
CC_RET = 4
CC_INDIRECT = 5
CC_DISE = 6

# Metadata bit layout (documented in the module docstring).
CTRL_SHIFT = 8
META_TAKEN = 1 << 12
META_STORE = 1 << 13
META_TRIGGER = 1 << 14
META_MEM = 1 << 15
META_FETCH = 1 << 16
META_TARGET = 1 << 17
META_EXP = 1 << 18
DEST_SHIFT = 19
DISEPC_SHIFT = 27


def pack_srcs(srcs) -> int:
    """Pack a source-register list into 6-bit fields (id + 1, in order)."""
    packed = 0
    shift = 0
    for src in srcs:
        packed |= (src + 1) << shift
        shift += 6
    return packed


def unpack_srcs(packed: int) -> List[int]:
    """Invert :func:`pack_srcs`."""
    out = []
    while packed:
        out.append((packed & 63) - 1)
        packed >>= 6
    return out


class OpColumns:
    """Structure-of-arrays storage for a dynamic-instruction stream."""

    __slots__ = ("pc", "meta", "mem", "target", "srcs", "exp")

    def __init__(self):
        self.pc = array("Q")
        self.meta = array("Q")
        self.mem = array("Q")
        self.target = array("Q")
        self.srcs = array("Q")
        #: Sparse op_index -> (seq_id, length, pt_miss, rt_miss, composed).
        self.exp: Dict[int, tuple] = {}

    def __len__(self):
        return len(self.pc)

    def append(self, pc, disepc, code, srcs_packed, dest, mem_addr, is_store,
               has_fetch, ctrl, taken, target, is_trigger, expansion):
        """Record one retirement.  ``target`` is the already-resolved
        ``ctrl_target`` value (``None`` when the op has none)."""
        meta = code | (CTRL_CODES[ctrl] << CTRL_SHIFT) | (disepc << DISEPC_SHIFT)
        if taken:
            meta |= META_TAKEN
        if is_store:
            meta |= META_STORE
        if is_trigger:
            meta |= META_TRIGGER
        if has_fetch:
            meta |= META_FETCH
        if mem_addr is None:
            mem_addr = 0
        else:
            meta |= META_MEM
        if target is None:
            target = 0
        else:
            meta |= META_TARGET
        if dest is not None:
            meta |= (dest + 1) << DEST_SHIFT
        if expansion is not None:
            meta |= META_EXP
            self.exp[len(self.pc)] = expansion
        self.pc.append(pc)
        self.meta.append(meta)
        self.mem.append(mem_addr)
        self.target.append(target)
        self.srcs.append(srcs_packed)

    def to_ops(self) -> List["Op"]:
        """Materialise per-op objects (for oracles, profiling, tests)."""
        out = []
        exp_map = self.exp
        pc_col, meta_col = self.pc, self.meta
        mem_col, tgt_col, srcs_col = self.mem, self.target, self.srcs
        for i in range(len(pc_col)):
            meta = meta_col[i]
            pc = pc_col[i]
            dest = (meta >> DEST_SHIFT) & 0xFF
            out.append(Op(
                pc,
                meta >> DISEPC_SHIFT,
                OPCODE_BY_CODE[meta & 0xFF],
                unpack_srcs(srcs_col[i]),
                dest - 1 if dest else None,
                mem_col[i] if meta & META_MEM else None,
                bool(meta & META_STORE),
                pc if meta & META_FETCH else None,
                CTRL_FROM_CODE[(meta >> CTRL_SHIFT) & 0xF],
                bool(meta & META_TAKEN),
                tgt_col[i] if meta & META_TARGET else None,
                bool(meta & META_TRIGGER),
                exp_map.get(i) if meta & META_EXP else None,
            ))
        return out


class Op:
    """One dynamic instruction (materialised view of one column row)."""

    __slots__ = (
        "pc", "disepc", "opcode", "srcs", "dest", "mem_addr", "is_store",
        "fetch_addr", "ctrl", "ctrl_taken", "ctrl_target", "is_trigger_ctrl",
        "expansion",
    )

    def __init__(self, pc, disepc, opcode, srcs, dest, mem_addr, is_store,
                 fetch_addr, ctrl, ctrl_taken, ctrl_target, is_trigger_ctrl,
                 expansion):
        self.pc = pc
        self.disepc = disepc
        self.opcode = opcode
        #: Source register ids (user 0..31, dedicated 32..39).
        self.srcs = srcs
        self.dest = dest
        self.mem_addr = mem_addr
        self.is_store = is_store
        #: I-cache fetch address — set on application-level instructions
        #: (i.e. once per trigger); None for replacement instructions, which
        #: come from the RT, not the I-cache.
        self.fetch_addr = fetch_addr
        #: One of the CTRL_* kinds, or None.
        self.ctrl = ctrl
        self.ctrl_taken = ctrl_taken
        self.ctrl_target = ctrl_target
        #: True when this control transfer is the expansion's trigger (it
        #: was fetched and predicted normally); False for non-trigger
        #: replacement branches, which are suppressed from prediction.
        self.is_trigger_ctrl = is_trigger_ctrl
        #: (seq_id, length, pt_miss, rt_miss, composed) on the first
        #: instruction of an expansion; None otherwise.
        self.expansion = expansion

    def __repr__(self):
        kind = f" {self.ctrl}{'T' if self.ctrl_taken else 'N'}" if self.ctrl else ""
        return (f"Op(pc={self.pc:#x}:{self.disepc} {self.opcode.mnemonic}"
                f"{kind})")


class TraceResult:
    """Output of one functional run."""

    __slots__ = (
        "columns", "outputs", "fault_code", "halted", "instructions",
        "app_instructions", "expansions", "final_regs", "final_memory",
        "cache_key", "_fingerprint", "_warm_states", "_ops",
        "_outcome_memos", "_static_cols",
    )

    def __init__(self, columns, outputs, fault_code, halted, instructions,
                 app_instructions, expansions, final_regs, final_memory):
        #: Structure-of-arrays record stream (:class:`OpColumns`).
        self.columns: OpColumns = columns
        self.outputs: List[int] = outputs
        self.fault_code: Optional[int] = fault_code
        self.halted: bool = halted
        #: Total dynamic instructions (application + replacement).
        self.instructions: int = instructions
        #: Dynamic application-level instructions (fetch-stream length).
        self.app_instructions: int = app_instructions
        self.expansions: int = expansions
        self.final_regs: Tuple[int, ...] = final_regs
        self.final_memory = final_memory
        #: Content digest assigned by the persistent trace cache (None for
        #: traces that never passed through it).
        self.cache_key: Optional[str] = None
        #: Lazily computed content digest (see trace_cache.trace_fingerprint).
        self._fingerprint: Optional[str] = None
        #: Warm-start state memo (see cycle.CycleSimulator): geometry
        #: signature -> snapshot of warmed caches/predictor/RT.  Configs
        #: that differ only in placement, width, or window share warmed
        #: state, so sweeps skip redundant warm passes.
        self._warm_states = None
        #: Component-keyed outcome memos (see cycle's "outcome" engine):
        #: (component, geometry, warm) -> packed outcome column, bounded
        #: LRU.  Like ``_warm_states`` these are transient accelerator
        #: state — never serialized, so a trace round-tripped through the
        #: persistent cache starts with empty memos and recomputes.
        self._outcome_memos = None
        #: Config-independent derived columns (latency/dest/src lists and
        #: the expansion event list), materialised once per trace by the
        #: outcome engine.
        self._static_cols = None
        #: Cached Op materialisation (one shared list, so identity-based
        #: consumers — e.g. the retire-observer oracle — see the same
        #: objects the trace exposes).
        self._ops: Optional[List[Op]] = None

    @property
    def ops(self) -> List[Op]:
        """Materialised per-op view of :attr:`columns` (cached).

        Rebuilt if the underlying columns have grown since the last
        materialisation (a live machine can keep appending to the same
        columns across repeated ``result()`` calls).
        """
        ops = self._ops
        if ops is None or len(ops) != len(self.columns):
            ops = self._ops = self.columns.to_ops()
        return ops

    @property
    def faulted(self) -> bool:
        return self.fault_code is not None
