"""Dynamic-trace records shared by the functional and timing simulators.

The functional simulator executes the program once (with DISE expansion at
fetch) and emits one :class:`Op` per dynamic instruction.  The timing
simulator then replays the trace under different machine configurations —
exactly the factoring the experiments need, since one ACF transformation is
evaluated across many cache sizes, widths, and engine placements.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

# Control-transfer kinds recorded on an Op.
CTRL_COND = "cond"          # conditional branch
CTRL_UNCOND = "uncond"      # direct br
CTRL_CALL = "call"          # bsr / jsr (writes a return address)
CTRL_RET = "ret"            # ret
CTRL_INDIRECT = "indirect"  # jmp
CTRL_DISE = "dise"          # DISE-internal branch (never predicted)


class Op:
    """One dynamic instruction."""

    __slots__ = (
        "pc", "disepc", "opcode", "srcs", "dest", "mem_addr", "is_store",
        "fetch_addr", "ctrl", "ctrl_taken", "ctrl_target", "is_trigger_ctrl",
        "expansion",
    )

    def __init__(self, pc, disepc, opcode, srcs, dest, mem_addr, is_store,
                 fetch_addr, ctrl, ctrl_taken, ctrl_target, is_trigger_ctrl,
                 expansion):
        self.pc = pc
        self.disepc = disepc
        self.opcode = opcode
        #: Source register ids (user 0..31, dedicated 32..39).
        self.srcs = srcs
        self.dest = dest
        self.mem_addr = mem_addr
        self.is_store = is_store
        #: I-cache fetch address — set on application-level instructions
        #: (i.e. once per trigger); None for replacement instructions, which
        #: come from the RT, not the I-cache.
        self.fetch_addr = fetch_addr
        #: One of the CTRL_* kinds, or None.
        self.ctrl = ctrl
        self.ctrl_taken = ctrl_taken
        self.ctrl_target = ctrl_target
        #: True when this control transfer is the expansion's trigger (it
        #: was fetched and predicted normally); False for non-trigger
        #: replacement branches, which are suppressed from prediction.
        self.is_trigger_ctrl = is_trigger_ctrl
        #: (seq_id, length, pt_miss, rt_miss, composed) on the first
        #: instruction of an expansion; None otherwise.
        self.expansion = expansion

    def __repr__(self):
        kind = f" {self.ctrl}{'T' if self.ctrl_taken else 'N'}" if self.ctrl else ""
        return (f"Op(pc={self.pc:#x}:{self.disepc} {self.opcode.mnemonic}"
                f"{kind})")


class TraceResult:
    """Output of one functional run."""

    __slots__ = (
        "ops", "outputs", "fault_code", "halted", "instructions",
        "app_instructions", "expansions", "final_regs", "final_memory",
        "cache_key", "_fingerprint", "_warm_states",
    )

    def __init__(self, ops, outputs, fault_code, halted, instructions,
                 app_instructions, expansions, final_regs, final_memory):
        self.ops: List[Op] = ops
        self.outputs: List[int] = outputs
        self.fault_code: Optional[int] = fault_code
        self.halted: bool = halted
        #: Total dynamic instructions (application + replacement).
        self.instructions: int = instructions
        #: Dynamic application-level instructions (fetch-stream length).
        self.app_instructions: int = app_instructions
        self.expansions: int = expansions
        self.final_regs: Tuple[int, ...] = final_regs
        self.final_memory = final_memory
        #: Content digest assigned by the persistent trace cache (None for
        #: traces that never passed through it).
        self.cache_key: Optional[str] = None
        #: Lazily computed content digest (see trace_cache.trace_fingerprint).
        self._fingerprint: Optional[str] = None
        #: Warm-start state memo (see cycle.CycleSimulator): geometry
        #: signature -> snapshot of warmed caches/predictor/RT.  Configs
        #: that differ only in placement, width, or window share warmed
        #: state, so sweeps skip redundant warm passes.
        self._warm_states = None

    @property
    def faulted(self) -> bool:
        return self.fault_code is not None
