"""Branch prediction: gshare direction predictor + BTB + return stack.

Models the "aggressive branch speculation" of the paper's R10000-like
baseline.  The timing simulator consults it for every application-level
control transfer.  DISE-internal branches are never predicted (Section 2.2:
"since DISE branches are not predicted, a taken DISE branch is interpreted
as a mis-prediction"), and non-trigger replacement-sequence branches are
suppressed from prediction/BTB update — the simulator simply does not call
the predictor for them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BranchPredictorConfig:
    gshare_bits: int = 14          # 16K 2-bit counters
    btb_entries: int = 2048
    ras_entries: int = 16


class BranchPredictor:
    """gshare + BTB + return-address stack."""

    def __init__(self, config: BranchPredictorConfig = BranchPredictorConfig()):
        self.config = config
        self._mask = (1 << config.gshare_bits) - 1
        self._counters = bytearray([2] * (1 << config.gshare_bits))
        self._history = 0
        self._btb = {}
        self._btb_entries = config.btb_entries
        self._ras = []
        self.cond_lookups = 0
        self.cond_mispredicts = 0
        self.target_lookups = 0
        self.target_mispredicts = 0

    # ------------------------------------------------------------------
    # Conditional direction prediction
    # ------------------------------------------------------------------
    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict direction for the conditional branch at ``pc``, update
        with the actual outcome, and return True iff mispredicted."""
        self.cond_lookups += 1
        index = ((pc >> 2) ^ self._history) & self._mask
        counter = self._counters[index]
        predicted_taken = counter >= 2
        if taken and counter < 3:
            self._counters[index] = counter + 1
        elif not taken and counter > 0:
            self._counters[index] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._mask
        mispredicted = predicted_taken != taken
        if mispredicted:
            self.cond_mispredicts += 1
        return mispredicted

    # ------------------------------------------------------------------
    # Target prediction (indirect jumps) and the return stack
    # ------------------------------------------------------------------
    def predict_indirect(self, pc: int, target: int, is_return=False,
                         is_call=False, return_addr=0) -> bool:
        """Predict the target of an indirect jump; True iff mispredicted."""
        self.target_lookups += 1
        mispredicted = False
        if is_return:
            predicted = self._ras.pop() if self._ras else None
            mispredicted = predicted != target
        else:
            index = (pc >> 2) % self._btb_entries
            predicted = self._btb.get(index)
            mispredicted = predicted != target
            self._btb[index] = target
        if is_call:
            self.push_return(return_addr)
        if mispredicted:
            self.target_mispredicts += 1
        return mispredicted

    def push_return(self, return_addr: int):
        self._ras.append(return_addr)
        if len(self._ras) > self.config.ras_entries:
            self._ras.pop(0)

    # ------------------------------------------------------------------
    @property
    def mispredicts(self) -> int:
        return self.cond_mispredicts + self.target_mispredicts

    @property
    def cond_mispredict_rate(self) -> float:
        if not self.cond_lookups:
            return 0.0
        return self.cond_mispredicts / self.cond_lookups


# ----------------------------------------------------------------------
# Phase-A outcome pass (see repro.sim.cycle, "outcome" engine)
# ----------------------------------------------------------------------
#: Per-op control actions for the timing kernel.  The kernel never sees
#: the predictor — only these codes.
ACT_NONE = 0          # no control effect on the front end
ACT_MISPREDICT = 1    # redirect fetch after resolve; counts as a mispredict
ACT_DISE_REDIRECT = 2  # taken DISE branch: same redirect, separate counter
ACT_END_GROUP = 3     # correctly-predicted taken transfer ends the group


class ControlOutcomes:
    """Result of one :func:`replay_control` pass: the per-op action column
    plus the branch-statistics totals the timing model reports."""

    __slots__ = ("actions", "cond_branches", "mispredicts", "dise_redirects")

    def __init__(self, actions, cond_branches, mispredicts, dise_redirects):
        self.actions = actions
        self.cond_branches = cond_branches
        self.mispredicts = mispredicts
        self.dise_redirects = dise_redirects


def replay_control(columns, predictor_config, predict_replacement,
                   passes=1) -> ControlOutcomes:
    """Replay a trace's control stream through a fresh predictor.

    Prediction outcomes are a pure function of the control-transfer stream
    and the predictor geometry — independent of caches, placement, widths
    and windows — so the cycle simulator's "outcome" engine runs this once
    per (trace, predictor config, replacement-prediction flag) and replays
    the action column under every other configuration axis.

    ``passes=2`` models ``warm_start`` (first pass trains only, second
    records).  Call set, arguments and ordering match the reference
    engine's replay loop exactly, so predictor state evolves identically.
    """
    from repro.sim.trace import (
        CC_CALL,
        CC_COND,
        CC_DISE,
        CC_INDIRECT,
        CC_RET,
        CTRL_SHIFT,
        DISEPC_SHIFT,
        META_TAKEN,
        META_TARGET,
        META_TRIGGER,
    )

    indirect = (CC_INDIRECT, CC_RET, CC_CALL)
    predictor = BranchPredictor(predictor_config)
    predict_cond = predictor.predict_and_update
    predict_target = predictor.predict_indirect
    pc_col = columns.pc
    meta_col = columns.meta
    tgt_col = columns.target
    n = len(pc_col)
    actions = bytearray(n)
    cond_branches = mispredicts = dise_redirects = 0
    for p in range(passes):
        record = p == passes - 1
        cond_branches = mispredicts = dise_redirects = 0
        for i in range(n):
            meta = meta_col[i]
            cc = (meta >> CTRL_SHIFT) & 0xF
            if not cc:
                continue
            pc = pc_col[i]
            taken = bool(meta & META_TAKEN)
            act = ACT_NONE
            if cc == CC_DISE:
                # Never predicted; a taken DISE branch redirects fetch.
                if taken:
                    act = ACT_DISE_REDIRECT
                    dise_redirects += 1
            elif not meta & META_TRIGGER:
                if predict_replacement and cc == CC_COND:
                    # Enhanced design: the predictor learns replacement
                    # branches, indexed by the PC:DISEPC pair.
                    cond_branches += 1
                    if predict_cond(
                        pc ^ ((meta >> DISEPC_SHIFT) << 4), taken
                    ):
                        act = ACT_MISPREDICT
                    elif taken:
                        act = ACT_END_GROUP
                elif predict_replacement and taken:
                    # Unconditional/indirect replacement transfer: the BTB
                    # learns the codeword's PC:DISEPC.
                    if predict_target(
                        pc ^ ((meta >> DISEPC_SHIFT) << 4), tgt_col[i]
                    ):
                        act = ACT_MISPREDICT
                    else:
                        act = ACT_END_GROUP
                elif taken:
                    # Paper's design: prediction suppressed, effectively
                    # predicted not-taken.
                    act = ACT_MISPREDICT
            elif cc == CC_COND:
                cond_branches += 1
                if predict_cond(pc, taken):
                    act = ACT_MISPREDICT
                elif taken:
                    act = ACT_END_GROUP
            elif cc in indirect:
                if meta & META_TARGET:
                    if predict_target(
                        pc, tgt_col[i],
                        is_return=cc == CC_RET, is_call=cc == CC_CALL,
                        return_addr=pc + 4,
                    ):
                        act = ACT_MISPREDICT
                    else:
                        act = ACT_END_GROUP
                else:
                    act = ACT_END_GROUP
            if act:
                if act == ACT_MISPREDICT:
                    mispredicts += 1
                if record:
                    actions[i] = act
    return ControlOutcomes(bytes(actions), cond_branches, mispredicts,
                           dise_redirects)
