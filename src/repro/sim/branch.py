"""Branch prediction: gshare direction predictor + BTB + return stack.

Models the "aggressive branch speculation" of the paper's R10000-like
baseline.  The timing simulator consults it for every application-level
control transfer.  DISE-internal branches are never predicted (Section 2.2:
"since DISE branches are not predicted, a taken DISE branch is interpreted
as a mis-prediction"), and non-trigger replacement-sequence branches are
suppressed from prediction/BTB update — the simulator simply does not call
the predictor for them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BranchPredictorConfig:
    gshare_bits: int = 14          # 16K 2-bit counters
    btb_entries: int = 2048
    ras_entries: int = 16


class BranchPredictor:
    """gshare + BTB + return-address stack."""

    def __init__(self, config: BranchPredictorConfig = BranchPredictorConfig()):
        self.config = config
        self._mask = (1 << config.gshare_bits) - 1
        self._counters = bytearray([2] * (1 << config.gshare_bits))
        self._history = 0
        self._btb = {}
        self._btb_entries = config.btb_entries
        self._ras = []
        self.cond_lookups = 0
        self.cond_mispredicts = 0
        self.target_lookups = 0
        self.target_mispredicts = 0

    # ------------------------------------------------------------------
    # Conditional direction prediction
    # ------------------------------------------------------------------
    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict direction for the conditional branch at ``pc``, update
        with the actual outcome, and return True iff mispredicted."""
        self.cond_lookups += 1
        index = ((pc >> 2) ^ self._history) & self._mask
        counter = self._counters[index]
        predicted_taken = counter >= 2
        if taken and counter < 3:
            self._counters[index] = counter + 1
        elif not taken and counter > 0:
            self._counters[index] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._mask
        mispredicted = predicted_taken != taken
        if mispredicted:
            self.cond_mispredicts += 1
        return mispredicted

    # ------------------------------------------------------------------
    # Target prediction (indirect jumps) and the return stack
    # ------------------------------------------------------------------
    def predict_indirect(self, pc: int, target: int, is_return=False,
                         is_call=False, return_addr=0) -> bool:
        """Predict the target of an indirect jump; True iff mispredicted."""
        self.target_lookups += 1
        mispredicted = False
        if is_return:
            predicted = self._ras.pop() if self._ras else None
            mispredicted = predicted != target
        else:
            index = (pc >> 2) % self._btb_entries
            predicted = self._btb.get(index)
            mispredicted = predicted != target
            self._btb[index] = target
        if is_call:
            self.push_return(return_addr)
        if mispredicted:
            self.target_mispredicts += 1
        return mispredicted

    def push_return(self, return_addr: int):
        self._ras.append(return_addr)
        if len(self._ras) > self.config.ras_entries:
            self._ras.pop(0)

    # ------------------------------------------------------------------
    @property
    def mispredicts(self) -> int:
        return self.cond_mispredicts + self.target_mispredicts

    @property
    def cond_mispredict_rate(self) -> float:
        if not self.cond_lookups:
            return 0.0
        return self.cond_mispredicts / self.cond_lookups
