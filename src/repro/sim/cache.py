"""Set-associative cache model with LRU replacement.

Used for the instruction cache, data cache, and unified L2 of the timing
model (Section 4: 32 KB I and D caches, unified 1 MB L2).  The model tracks
hits and misses only — contents are never stored, since the simulators keep
architectural state separately.

For speed, each set is an ordered dict of resident tags (LRU order) and
lookups are O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int = 64
    hit_latency: int = 1
    name: str = "cache"

    def __post_init__(self):
        if self.size_bytes <= 0 or self.assoc <= 0 or self.line_bytes <= 0:
            raise ValueError("cache dimensions must be positive")
        lines = self.size_bytes // self.line_bytes
        if lines == 0 or self.size_bytes % self.line_bytes:
            raise ValueError("size must be a positive multiple of line size")
        if lines % self.assoc:
            raise ValueError("line count must be a multiple of associativity")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.assoc


class Cache:
    """One cache level.  ``access`` returns True on hit."""

    __slots__ = ("config", "_sets", "_offset_bits", "_num_sets", "_assoc",
                 "accesses", "misses")

    def __init__(self, config: CacheConfig):
        self.config = config
        # One LRU-ordered dict per set, pre-allocated so the access path is
        # a plain list index (this method dominates timing-replay profiles).
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Access the line containing ``addr``; fill on miss; True on hit."""
        self.accesses += 1
        line = addr >> self._offset_bits
        entry_set = self._sets[line % self._num_sets]
        tag = line // self._num_sets
        if tag in entry_set:
            entry_set.move_to_end(tag)
            return True
        self.misses += 1
        if len(entry_set) >= self._assoc:
            entry_set.popitem(last=False)
        entry_set[tag] = True
        return False

    def probe(self, addr: int) -> bool:
        """Check residence without updating state or statistics."""
        line = addr >> self._offset_bits
        return (line // self._num_sets) in self._sets[line % self._num_sets]

    def invalidate(self):
        for entry_set in self._sets:
            entry_set.clear()

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class PerfectCache:
    """A cache that always hits (the paper's 'perfect' I-cache points)."""

    __slots__ = ("accesses", "misses")

    def __init__(self):
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        self.accesses += 1
        return True

    def probe(self, addr: int) -> bool:
        return True

    def invalidate(self):
        pass

    @property
    def hits(self) -> int:
        return self.accesses

    @property
    def miss_rate(self) -> float:
        return 0.0
