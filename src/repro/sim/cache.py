"""Set-associative cache model with LRU replacement.

Used for the instruction cache, data cache, and unified L2 of the timing
model (Section 4: 32 KB I and D caches, unified 1 MB L2).  The model tracks
hits and misses only — contents are never stored, since the simulators keep
architectural state separately.

For speed, each set is an ordered dict of resident tags (LRU order) and
lookups are O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int = 64
    hit_latency: int = 1
    name: str = "cache"

    def __post_init__(self):
        if self.size_bytes <= 0 or self.assoc <= 0 or self.line_bytes <= 0:
            raise ValueError("cache dimensions must be positive")
        lines = self.size_bytes // self.line_bytes
        if lines == 0 or self.size_bytes % self.line_bytes:
            raise ValueError("size must be a positive multiple of line size")
        if lines % self.assoc:
            raise ValueError("line count must be a multiple of associativity")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.assoc


class Cache:
    """One cache level.  ``access`` returns True on hit."""

    __slots__ = ("config", "_sets", "_offset_bits", "_num_sets", "_assoc",
                 "accesses", "misses")

    def __init__(self, config: CacheConfig):
        self.config = config
        # One LRU-ordered dict per set, pre-allocated so the access path is
        # a plain list index (this method dominates timing-replay profiles).
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Access the line containing ``addr``; fill on miss; True on hit."""
        self.accesses += 1
        line = addr >> self._offset_bits
        entry_set = self._sets[line % self._num_sets]
        tag = line // self._num_sets
        if tag in entry_set:
            entry_set.move_to_end(tag)
            return True
        self.misses += 1
        if len(entry_set) >= self._assoc:
            entry_set.popitem(last=False)
        entry_set[tag] = True
        return False

    def probe(self, addr: int) -> bool:
        """Check residence without updating state or statistics."""
        line = addr >> self._offset_bits
        return (line // self._num_sets) in self._sets[line % self._num_sets]

    def invalidate(self):
        for entry_set in self._sets:
            entry_set.clear()

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


# ----------------------------------------------------------------------
# Phase-A outcome pass (see repro.sim.cycle, "outcome" engine)
# ----------------------------------------------------------------------
#: Packed per-op hierarchy outcome codes.  Bits 0..1 describe the fetch
#: access (0 = no access or IL1 hit, 1 = L2 hit, 2 = L2 miss); bits 2..3
#: describe the load access the same way (stores and DL1 hits are 0 —
#: stores retire via the store buffer and add no latency).
FETCH_L2_HIT = 1
FETCH_L2_MISS = 2
MEM_SHIFT = 2


class HierarchyOutcomes:
    """Result of one :func:`replay_hierarchy` pass: the packed per-op
    outcome column plus the access/miss totals the timing model reports."""

    __slots__ = ("codes", "il1_accesses", "il1_misses", "dl1_accesses",
                 "dl1_misses", "l2_misses")

    def __init__(self, codes, il1_accesses, il1_misses, dl1_accesses,
                 dl1_misses, l2_misses):
        self.codes = codes
        self.il1_accesses = il1_accesses
        self.il1_misses = il1_misses
        self.dl1_accesses = dl1_accesses
        self.dl1_misses = dl1_misses
        self.l2_misses = l2_misses


def replay_hierarchy(columns, il1_config, dl1_config, l2_config,
                     passes=1) -> HierarchyOutcomes:
    """Replay a trace's address stream through the {IL1, DL1, L2} hierarchy.

    Cache behaviour is a pure function of the address stream and the
    geometry, so it can be simulated once per (trace, geometry) and the
    resulting outcome column replayed under any placement/width/window
    configuration — the decoupled-outcome move of the cycle simulator's
    "outcome" engine.  The three levels form *one* component: L2 contents
    depend on the interleaving of IL1 and DL1 misses, so they cannot be
    split further.

    ``passes=2`` models ``warm_start``: the first pass only evolves cache
    state, the second records outcomes and counters — exactly the
    reference engine's warm pass followed by its measured pass.  Access
    order per op matches the reference loop: fetch first, then the data
    access.
    """
    # Imported here (not at module level) to keep this leaf module free of
    # an import cycle with repro.sim.trace consumers.
    from repro.sim.trace import META_FETCH, META_MEM, META_STORE

    il1 = Cache(il1_config) if il1_config is not None else PerfectCache()
    dl1 = Cache(dl1_config) if dl1_config is not None else PerfectCache()
    l2 = Cache(l2_config) if l2_config is not None else PerfectCache()
    pc_col = columns.pc
    meta_col = columns.meta
    mem_col = columns.mem
    n = len(pc_col)
    codes = bytearray(n)
    l2_misses = 0
    for p in range(passes):
        record = p == passes - 1
        if record:
            # The recorded pass reports its own counts (the reference
            # engine resets statistics after its warm pass).
            il1.accesses = il1.misses = 0
            dl1.accesses = dl1.misses = 0
            l2.accesses = l2.misses = 0
            l2_misses = 0
        il1_access = il1.access
        dl1_access = dl1.access
        l2_access = l2.access
        for i in range(n):
            meta = meta_col[i]
            code = 0
            if meta & META_FETCH and not il1_access(pc_col[i]):
                if l2_access(pc_col[i]):
                    code = FETCH_L2_HIT
                else:
                    code = FETCH_L2_MISS
                    l2_misses += 1
            if meta & META_MEM:
                addr = mem_col[i]
                if meta & META_STORE:
                    dl1_access(addr)
                elif not dl1_access(addr):
                    if l2_access(addr):
                        code |= FETCH_L2_HIT << MEM_SHIFT
                    else:
                        code |= FETCH_L2_MISS << MEM_SHIFT
                        l2_misses += 1
            if record and code:
                codes[i] = code
    return HierarchyOutcomes(bytes(codes), il1.accesses, il1.misses,
                             dl1.accesses, dl1.misses, l2_misses)


class PerfectCache:
    """A cache that always hits (the paper's 'perfect' I-cache points)."""

    __slots__ = ("accesses", "misses")

    def __init__(self):
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        self.accesses += 1
        return True

    def probe(self, addr: int) -> bool:
        return True

    def invalidate(self):
        pass

    @property
    def hits(self) -> int:
        return self.accesses

    @property
    def miss_rate(self) -> float:
        return 0.0
