"""Machine configuration for the timing simulator.

Defaults model the paper's baseline (Section 4): an R10000-like 4-way
superscalar with a 12-stage pipeline, 128-entry reorder buffer, 80
reservation stations, aggressive branch and load speculation, 32 KB
instruction and data caches, and a unified 1 MB L2.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.config import DiseConfig
from repro.sim.branch import BranchPredictorConfig
from repro.sim.cache import CacheConfig

KB = 1024
MB = 1024 * KB


def il1_config(size_bytes=32 * KB) -> CacheConfig:
    """The baseline L1 instruction cache at a given capacity."""
    return CacheConfig(size_bytes=size_bytes, assoc=2, line_bytes=64,
                       hit_latency=1, name="il1")


def dl1_config(size_bytes=32 * KB) -> CacheConfig:
    """The baseline L1 data cache at a given capacity."""
    return CacheConfig(size_bytes=size_bytes, assoc=2, line_bytes=64,
                       hit_latency=1, name="dl1")


def l2_config(size_bytes=1 * MB) -> CacheConfig:
    """The baseline unified L2 at a given capacity."""
    return CacheConfig(size_bytes=size_bytes, assoc=4, line_bytes=64,
                       hit_latency=12, name="l2")


@dataclass
class MachineConfig:
    """Superscalar core + memory hierarchy + DISE engine configuration."""

    width: int = 4
    rob_entries: int = 128
    rs_entries: int = 80
    pipeline_stages: int = 12
    #: Front-end refill after a misprediction or pipeline flush.
    mispredict_penalty: int = 10
    #: Instruction cache; ``None`` models a perfect I-cache.
    il1: Optional[CacheConfig] = field(default_factory=il1_config)
    dl1: Optional[CacheConfig] = field(default_factory=dl1_config)
    l2: Optional[CacheConfig] = field(default_factory=l2_config)
    mem_latency: int = 80
    predictor: BranchPredictorConfig = field(
        default_factory=BranchPredictorConfig
    )
    dise: DiseConfig = field(default_factory=DiseConfig)
    #: Predict non-trigger replacement-sequence conditional branches with the
    #: gshare predictor (indexed by PC:DISEPC).  The paper's conservative
    #: design treats them as predicted not-taken (a taken one costs a full
    #: refill); an implementation could instead let the BTB/predictor learn
    #: the codeword PC.  Default True; ``benchmarks/bench_ablation.py``
    #: quantifies the difference.
    predict_replacement_branches: bool = True

    def with_changes(self, **changes) -> "MachineConfig":
        return replace(self, **changes)

    def with_il1_size(self, size_bytes: Optional[int]) -> "MachineConfig":
        """Vary the I-cache size; ``None`` selects a perfect I-cache."""
        il1 = None if size_bytes is None else il1_config(size_bytes)
        return self.with_changes(il1=il1)
