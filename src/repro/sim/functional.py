"""Functional simulator: architectural execution with DISE at fetch.

The :class:`Machine` executes a :class:`~repro.program.image.ProgramImage`
one dynamic instruction at a time.  When a DISE controller is attached, every
fetched application instruction passes through the engine; triggers are
replaced by their instantiated replacement sequences, executed under the
paper's two-level PC:DISEPC control model (Section 2.1):

* DISE-internal branches move the DISEPC only.
* Non-trigger application branches inside a sequence are effectively
  predicted not-taken — if taken, the rest of the sequence is squashed.
* A *trigger* branch's following replacement instructions belong to its
  predicted path: they execute regardless of the branch outcome, and the
  outcome takes effect when the sequence ends.
* Precise state exists at every PC:DISEPC boundary: :meth:`Machine.checkpoint`
  /:meth:`Machine.restore` save and resume mid-sequence by re-expanding the
  trigger and skipping the first DISEPC instructions, exactly as the paper's
  post-interrupt fetch does.

The run produces a :class:`~repro.sim.trace.TraceResult` that the timing
simulator replays under different machine configurations.

Three dispatch tiers implement the instruction semantics:

* the **translated tier** (default) — a superblock translation cache: each
  basic-block region (single entry, conditional branches may fall through,
  ends at unconditional transfers / CTRL calls / a length cap) is
  pre-decoded once into a linear list of pre-bound handler thunks, with
  DISE replacement bodies instantiated and inlined at translation time.
  Matching and instantiation are hoisted out of the run loop entirely;
  only the stateful PT/RT accesses stay per-dynamic-trigger.  Blocks are
  keyed by entry index and the engine's production-set ``generation``
  (and flushed via the controller's invalidation hook), mirroring the
  paper's RT, which stores replacement sequences pre-decoded so expansion
  costs nothing at fetch (Section 2.2);
* the **fast tier** — an opcode-indexed handler table plus a per-image
  decoded-instruction cache, in the style of pre-decoded interpreter
  loops (Blanqui et al., "Designing a CPU model: from a pseudo-formal
  document to fast code");
* the **generic tier** (``fast_dispatch=False``) — the original
  format/opcode if-chain, kept as the reference implementation the
  property tests compare the other tiers against.

The tier is chosen by the ``dispatch`` constructor argument, the
``REPRO_DISPATCH`` environment variable ("translated"/"fast"/"generic"),
or the default ("translated").  All tiers produce bit-identical traces and
observation streams; telemetry-instrumented machines fall back to the fast
interpretive tier so the per-opcode counting wrapper sees every dispatch.
"""

from __future__ import annotations

import os
import weakref
from typing import Dict, List, Optional, Tuple

from repro.core.controller import DiseController
from repro.core.engine import ExpansionError
from repro.errors import ExecutionError, ExecutionTimeout
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, OpClass, Opcode
from repro.program.image import ProgramImage
from repro.sim.memory import MASK64, Memory
from repro.telemetry import profile as _profile_mod
from repro.telemetry import registry as _telemetry
from repro.sim.trace import (
    CC_CALL,
    CC_COND,
    CC_DISE,
    CC_INDIRECT,
    CC_RET,
    CC_UNCOND,
    CTRL_CALL,
    CTRL_COND,
    CTRL_DISE,
    CTRL_INDIRECT,
    CTRL_RET,
    CTRL_SHIFT,
    CTRL_UNCOND,
    DEST_SHIFT,
    DISEPC_SHIFT,
    META_EXP,
    META_FETCH,
    META_MEM,
    META_STORE,
    META_TAKEN,
    META_TARGET,
    META_TRIGGER,
    Op,
    OpColumns,
    TraceResult,
    pack_srcs,
)

NUM_REGS = 40  # 32 user + 8 DISE dedicated
ZERO = 31

#: Fault code used when an indirect jump leaves the text segment.
FAULT_BAD_JUMP = 0xBAD1

# Re-exported for backwards compatibility: ExecutionError historically lived
# here.  It is now part of the shared taxonomy in :mod:`repro.errors` and
# carries the fault site (pc, instruction index, opcode) as fields.
__all__ = ["Machine", "run_program", "ExecutionError", "ExecutionTimeout",
           "FAULT_BAD_JUMP", "NUM_REGS", "ZERO"]


def _signed(value):
    return value - (1 << 64) if value >> 63 else value


# ----------------------------------------------------------------------
# Fast-path opcode handlers
# ----------------------------------------------------------------------
# Each handler executes one opcode's semantics against the machine and
# returns ``(ctrl, taken, target_idx, mem_addr, is_store, target_pc)``.
# Handlers for side-effect-only instructions share one constant result
# tuple so the common case allocates nothing.

_SIMPLE = (None, False, None, None, False, None)


def _x_addq(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    ra = instr.ra
    a = 0 if ra == ZERO else regs[ra]
    rb = instr.rb
    b = instr.imm if rb is None else (0 if rb == ZERO else regs[rb])
    rc = instr.rc
    if rc != ZERO:
        regs[rc] = (a + b) & MASK64
    return _SIMPLE


def _x_subq(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    ra = instr.ra
    a = 0 if ra == ZERO else regs[ra]
    rb = instr.rb
    b = instr.imm if rb is None else (0 if rb == ZERO else regs[rb])
    rc = instr.rc
    if rc != ZERO:
        regs[rc] = (a - b) & MASK64
    return _SIMPLE


def _x_mulq(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    ra = instr.ra
    a = 0 if ra == ZERO else regs[ra]
    rb = instr.rb
    b = instr.imm if rb is None else (0 if rb == ZERO else regs[rb])
    rc = instr.rc
    if rc != ZERO:
        regs[rc] = (a * b) & MASK64
    return _SIMPLE


def _x_and(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    ra = instr.ra
    a = 0 if ra == ZERO else regs[ra]
    rb = instr.rb
    b = instr.imm if rb is None else (0 if rb == ZERO else regs[rb])
    rc = instr.rc
    if rc != ZERO:
        regs[rc] = (a & b) & MASK64
    return _SIMPLE


def _x_bis(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    ra = instr.ra
    a = 0 if ra == ZERO else regs[ra]
    rb = instr.rb
    b = instr.imm if rb is None else (0 if rb == ZERO else regs[rb])
    rc = instr.rc
    if rc != ZERO:
        regs[rc] = (a | b) & MASK64
    return _SIMPLE


def _x_xor(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    ra = instr.ra
    a = 0 if ra == ZERO else regs[ra]
    rb = instr.rb
    b = instr.imm if rb is None else (0 if rb == ZERO else regs[rb])
    rc = instr.rc
    if rc != ZERO:
        regs[rc] = (a ^ b) & MASK64
    return _SIMPLE


def _x_sll(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    ra = instr.ra
    a = 0 if ra == ZERO else regs[ra]
    rb = instr.rb
    b = instr.imm if rb is None else (0 if rb == ZERO else regs[rb])
    rc = instr.rc
    if rc != ZERO:
        regs[rc] = (a << (b & 63)) & MASK64
    return _SIMPLE


def _x_srl(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    ra = instr.ra
    a = 0 if ra == ZERO else regs[ra]
    rb = instr.rb
    b = instr.imm if rb is None else (0 if rb == ZERO else regs[rb])
    rc = instr.rc
    if rc != ZERO:
        regs[rc] = a >> (b & 63)
    return _SIMPLE


def _x_sra(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    ra = instr.ra
    a = 0 if ra == ZERO else regs[ra]
    rb = instr.rb
    b = instr.imm if rb is None else (0 if rb == ZERO else regs[rb])
    rc = instr.rc
    if rc != ZERO:
        regs[rc] = (_signed(a) >> (b & 63)) & MASK64
    return _SIMPLE


def _x_cmpeq(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    ra = instr.ra
    a = 0 if ra == ZERO else regs[ra]
    rb = instr.rb
    b = instr.imm if rb is None else (0 if rb == ZERO else regs[rb])
    rc = instr.rc
    if rc != ZERO:
        regs[rc] = 1 if a == b else 0
    return _SIMPLE


def _x_cmplt(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    ra = instr.ra
    a = 0 if ra == ZERO else regs[ra]
    rb = instr.rb
    b = instr.imm if rb is None else (0 if rb == ZERO else regs[rb])
    rc = instr.rc
    if rc != ZERO:
        regs[rc] = 1 if _signed(a) < _signed(b) else 0
    return _SIMPLE


def _x_cmple(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    ra = instr.ra
    a = 0 if ra == ZERO else regs[ra]
    rb = instr.rb
    b = instr.imm if rb is None else (0 if rb == ZERO else regs[rb])
    rc = instr.rc
    if rc != ZERO:
        regs[rc] = 1 if _signed(a) <= _signed(b) else 0
    return _SIMPLE


def _x_cmpult(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    ra = instr.ra
    a = 0 if ra == ZERO else regs[ra]
    rb = instr.rb
    b = instr.imm if rb is None else (0 if rb == ZERO else regs[rb])
    rc = instr.rc
    if rc != ZERO:
        regs[rc] = 1 if a < b else 0
    return _SIMPLE


def _x_cmoveq(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    ra = instr.ra
    a = 0 if ra == ZERO else regs[ra]
    rb = instr.rb
    b = instr.imm if rb is None else (0 if rb == ZERO else regs[rb])
    rc = instr.rc
    value = b if a == 0 else (regs[rc] if rc != ZERO else 0)
    if rc != ZERO:
        regs[rc] = value & MASK64
    return _SIMPLE


def _x_cmovne(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    ra = instr.ra
    a = 0 if ra == ZERO else regs[ra]
    rb = instr.rb
    b = instr.imm if rb is None else (0 if rb == ZERO else regs[rb])
    rc = instr.rc
    value = b if a != 0 else (regs[rc] if rc != ZERO else 0)
    if rc != ZERO:
        regs[rc] = value & MASK64
    return _SIMPLE


def _x_lda(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    rb = instr.rb
    base = 0 if rb == ZERO else regs[rb]
    ra = instr.ra
    if ra != ZERO:
        regs[ra] = (base + instr.imm) & MASK64
    return _SIMPLE


def _x_ldah(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    rb = instr.rb
    base = 0 if rb == ZERO else regs[rb]
    ra = instr.ra
    if ra != ZERO:
        regs[ra] = (base + (instr.imm << 16)) & MASK64
    return _SIMPLE


def _x_ldq(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    rb = instr.rb
    base = 0 if rb == ZERO else regs[rb]
    addr = (base + instr.imm) & MASK64
    ra = instr.ra
    if ra != ZERO:
        regs[ra] = m.mem.read(addr)
    return None, False, None, addr, False, None


def _x_ldl(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    rb = instr.rb
    base = 0 if rb == ZERO else regs[rb]
    addr = (base + instr.imm) & MASK64
    raw = m.mem.read(addr) & 0xFFFFFFFF
    if raw & 0x80000000:
        raw |= 0xFFFFFFFF00000000
    ra = instr.ra
    if ra != ZERO:
        regs[ra] = raw
    return None, False, None, addr, False, None


def _x_stq(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    rb = instr.rb
    base = 0 if rb == ZERO else regs[rb]
    addr = (base + instr.imm) & MASK64
    ra = instr.ra
    m.mem.write(addr, 0 if ra == ZERO else regs[ra])
    return None, False, None, addr, True, None


def _x_stl(m, instr, pc, idx, trigger_idx, is_trigger):
    regs = m.regs
    rb = instr.rb
    base = 0 if rb == ZERO else regs[rb]
    addr = (base + instr.imm) & MASK64
    ra = instr.ra
    value = 0 if ra == ZERO else regs[ra]
    m.mem.write(addr, value & 0xFFFFFFFF)
    return None, False, None, addr, True, None


def _x_out(m, instr, pc, idx, trigger_idx, is_trigger):
    ra = instr.ra
    m.outputs.append(0 if ra == ZERO else m.regs[ra])
    return _SIMPLE


def _x_ctrl(m, instr, pc, idx, trigger_idx, is_trigger):
    handler = m.control_handlers.get(instr.imm)
    if handler is None:
        raise ExecutionError(
            f"ctrl call {instr.imm} at {pc:#x} has no registered handler",
            pc=pc, index=idx, opcode=instr.opcode,
        )
    handler(m)
    return _SIMPLE


def _x_fault(m, instr, pc, idx, trigger_idx, is_trigger):
    m.halted = True
    m.fault_code = instr.imm if instr.imm is not None else 0
    return _SIMPLE


def _x_dbr(m, instr, pc, idx, trigger_idx, is_trigger):
    if m._exp is None:
        raise ExecutionError(
            f"DISE branch outside a replacement sequence at {pc:#x}",
            pc=pc, index=idx, opcode=instr.opcode,
        )
    return CTRL_DISE, True, instr.imm, None, False, None


def _x_dbeq(m, instr, pc, idx, trigger_idx, is_trigger):
    if m._exp is None:
        raise ExecutionError(
            f"DISE branch outside a replacement sequence at {pc:#x}",
            pc=pc, index=idx, opcode=instr.opcode,
        )
    ra = instr.ra
    test = 0 if ra == ZERO else m.regs[ra]
    return CTRL_DISE, test == 0, instr.imm, None, False, None


def _x_dbne(m, instr, pc, idx, trigger_idx, is_trigger):
    if m._exp is None:
        raise ExecutionError(
            f"DISE branch outside a replacement sequence at {pc:#x}",
            pc=pc, index=idx, opcode=instr.opcode,
        )
    ra = instr.ra
    test = 0 if ra == ZERO else m.regs[ra]
    return CTRL_DISE, test != 0, instr.imm, None, False, None


def _make_cond_branch(predicate):
    def handler(m, instr, pc, idx, trigger_idx, is_trigger):
        ra = instr.ra
        test = 0 if ra == ZERO else m.regs[ra]
        if predicate(test):
            target_idx, target_pc = m._branch_target(instr, pc, idx,
                                                     is_trigger)
            return CTRL_COND, True, target_idx, None, False, target_pc
        return CTRL_COND, False, None, None, False, None
    return handler


_x_beq = _make_cond_branch(lambda test: test == 0)
_x_bne = _make_cond_branch(lambda test: test != 0)
_x_blt = _make_cond_branch(lambda test: _signed(test) < 0)
_x_ble = _make_cond_branch(lambda test: _signed(test) <= 0)
_x_bgt = _make_cond_branch(lambda test: _signed(test) > 0)
_x_bge = _make_cond_branch(lambda test: _signed(test) >= 0)


def _x_br(m, instr, pc, idx, trigger_idx, is_trigger):
    image = m.image
    return_addr = image.addresses[trigger_idx] + image.sizes[trigger_idx]
    ra = instr.ra
    if ra != ZERO:
        m.regs[ra] = return_addr & MASK64
    target_idx, target_pc = m._branch_target(instr, pc, idx, is_trigger)
    return CTRL_UNCOND, True, target_idx, None, False, target_pc


def _x_bsr(m, instr, pc, idx, trigger_idx, is_trigger):
    image = m.image
    return_addr = image.addresses[trigger_idx] + image.sizes[trigger_idx]
    ra = instr.ra
    if ra != ZERO:
        m.regs[ra] = return_addr & MASK64
    target_idx, target_pc = m._branch_target(instr, pc, idx, is_trigger)
    return CTRL_CALL, True, target_idx, None, False, target_pc


def _make_jump(ctrl_kind):
    def handler(m, instr, pc, idx, trigger_idx, is_trigger):
        regs = m.regs
        rb = instr.rb
        target_value = 0 if rb == ZERO else regs[rb]
        image = m.image
        return_addr = image.addresses[trigger_idx] + image.sizes[trigger_idx]
        ra = instr.ra
        if ra != ZERO:
            regs[ra] = return_addr & MASK64
        target_idx = image.index_of_addr.get(target_value)
        if target_idx is None:
            m.halted = True
            m.fault_code = FAULT_BAD_JUMP
        return ctrl_kind, True, target_idx, None, False, target_value
    return handler


_x_jmp = _make_jump(CTRL_INDIRECT)
_x_jsr = _make_jump(CTRL_CALL)
_x_ret = _make_jump(CTRL_RET)


def _x_nop(m, instr, pc, idx, trigger_idx, is_trigger):
    return _SIMPLE


def _x_halt(m, instr, pc, idx, trigger_idx, is_trigger):
    m.halted = True
    return _SIMPLE


def _x_codeword(m, instr, pc, idx, trigger_idx, is_trigger):
    raise ExecutionError(f"codeword reached execution at {pc:#x}",
                         pc=pc, index=idx, opcode=instr.opcode)


#: Opcode -> fast-path executor.
_EXEC_TABLE: Dict[Opcode, object] = {
    Opcode.ADDQ: _x_addq, Opcode.SUBQ: _x_subq, Opcode.MULQ: _x_mulq,
    Opcode.AND: _x_and, Opcode.BIS: _x_bis, Opcode.XOR: _x_xor,
    Opcode.SLL: _x_sll, Opcode.SRL: _x_srl, Opcode.SRA: _x_sra,
    Opcode.CMPEQ: _x_cmpeq, Opcode.CMPLT: _x_cmplt, Opcode.CMPLE: _x_cmple,
    Opcode.CMPULT: _x_cmpult, Opcode.CMOVEQ: _x_cmoveq,
    Opcode.CMOVNE: _x_cmovne,
    Opcode.LDA: _x_lda, Opcode.LDAH: _x_ldah, Opcode.LDQ: _x_ldq,
    Opcode.LDL: _x_ldl, Opcode.STQ: _x_stq, Opcode.STL: _x_stl,
    Opcode.OUT: _x_out, Opcode.CTRL: _x_ctrl, Opcode.FAULT: _x_fault,
    Opcode.DBR: _x_dbr, Opcode.DBEQ: _x_dbeq, Opcode.DBNE: _x_dbne,
    Opcode.BEQ: _x_beq, Opcode.BNE: _x_bne, Opcode.BLT: _x_blt,
    Opcode.BLE: _x_ble, Opcode.BGT: _x_bgt, Opcode.BGE: _x_bge,
    Opcode.BR: _x_br, Opcode.BSR: _x_bsr,
    Opcode.JMP: _x_jmp, Opcode.JSR: _x_jsr, Opcode.RET: _x_ret,
    Opcode.NOP: _x_nop, Opcode.HALT: _x_halt,
    Opcode.RES0: _x_codeword, Opcode.RES1: _x_codeword,
    Opcode.RES2: _x_codeword, Opcode.RES3: _x_codeword,
}

#: Sentinel for "the caller did not resolve a handler" — distinct from
#: None, which means "the table has no handler for this opcode".
_UNRESOLVED = object()


def _df(instr: Instruction) -> tuple:
    """(source_regs, dest_reg, packed_srcs) for one instruction."""
    srcs = instr.source_regs()
    return (srcs, instr.dest_reg(), pack_srcs(srcs))


# ----------------------------------------------------------------------
# Superblock translation (the pre-decoded dispatch tier)
# ----------------------------------------------------------------------
# Step kinds for translated app-level instructions.  Each kind fixes which
# parts of the handler's result tuple the block runner must look at, so the
# common cases skip all conditional record logic.
_T_SIMPLE = 0   # no control, no memory: result tuple ignored
_T_MEM = 1      # loads/stores: mem_addr from the handler result
_T_BRANCH = 2   # conditional branches: may exit the block when taken
_T_JUMP = 3     # always-taken transfers (br/bsr/jmp/jsr/ret): block-terminal
_T_HALT = 4     # halt/fault: block-terminal
_T_TRIG = 5     # DISE trigger with a pre-instantiated replacement body

# Body kinds for pre-bound replacement instructions.
_B_SIMPLE = 0
_B_MEM = 1
_B_DISE = 2     # DISE-internal branch: moves the DISEPC only
_B_CTRL = 3     # app branches and jumps: predicted-path/squash semantics
_B_HALT = 4

_COND_BRANCHES = frozenset((Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BLE,
                            Opcode.BGT, Opcode.BGE))
_MEM_META = {
    Opcode.LDQ: META_MEM, Opcode.LDL: META_MEM,
    Opcode.STQ: META_MEM | META_STORE, Opcode.STL: META_MEM | META_STORE,
}
_JUMP_CC = {Opcode.BR: CC_UNCOND, Opcode.BSR: CC_CALL, Opcode.JSR: CC_CALL,
            Opcode.JMP: CC_INDIRECT, Opcode.RET: CC_RET}


def _classify_app(opcode: Opcode):
    """(step kind, baked meta bits) for an app-level opcode, or None when
    the site must stay interpretive (ctrl calls can swap production sets
    mid-run; reserved codewords and stray DISE branches raise)."""
    if (opcode is Opcode.CTRL or opcode.is_reserved
            or opcode.opclass is OpClass.DISE_BRANCH):
        return None
    if opcode in (Opcode.HALT, Opcode.FAULT):
        return _T_HALT, 0
    cc = _JUMP_CC.get(opcode)
    if cc is not None:
        return _T_JUMP, (cc << CTRL_SHIFT) | META_TAKEN | META_TARGET
    if opcode in _COND_BRANCHES:
        return _T_BRANCH, CC_COND << CTRL_SHIFT
    extra = _MEM_META.get(opcode)
    if extra is not None:
        return _T_MEM, extra
    return _T_SIMPLE, 0


def _classify_body(opcode: Opcode):
    """(body kind, ctrl meta bits) for a replacement-body opcode, or None
    when the expansion cannot be pre-bound."""
    if opcode is Opcode.CTRL or opcode.is_reserved:
        return None
    if opcode.opclass is OpClass.DISE_BRANCH:
        return _B_DISE, CC_DISE << CTRL_SHIFT
    if opcode in (Opcode.HALT, Opcode.FAULT):
        return _B_HALT, 0
    cc = _JUMP_CC.get(opcode)
    if cc is not None:
        return _B_CTRL, cc << CTRL_SHIFT
    if opcode in _COND_BRANCHES:
        return _B_CTRL, CC_COND << CTRL_SHIFT
    extra = _MEM_META.get(opcode)
    if extra is not None:
        return _B_MEM, extra
    return _B_SIMPLE, 0


#: Maximum app-level instructions per superblock.
_BLOCK_CAP = 64

#: Entry visits before a superblock is translated (warmup gate): code
#: executed once — cold tails, straight-line init — runs interpretively
#: and never pays translation; any revisited entry is hot by definition.
_HOT_THRESHOLD = 1

#: Cached marker for "this entry point cannot be translated" — the run loop
#: falls back to one interpretive step.
_NO_BLOCK = ((), 0)


def _make_flush_callback(machine_ref):
    """Production-set invalidation callback holding only a weakref, so a
    registered machine can still be collected."""
    def flush():
        machine = machine_ref()
        if machine is not None:
            machine._attach_translations()
    return flush


class Machine:
    """Architectural machine state plus the fetch/expand/execute loop."""

    def __init__(self, image: ProgramImage,
                 controller: Optional[DiseController] = None,
                 record_trace=True, fast_dispatch=True, observer=None,
                 dispatch: Optional[str] = None):
        self.image = image
        self.controller = controller
        self.engine = controller.engine if controller is not None else None
        self.record_trace = record_trace
        if dispatch is None:
            if not fast_dispatch:
                dispatch = "generic"
            else:
                dispatch = os.environ.get("REPRO_DISPATCH") or "translated"
        if dispatch not in ("translated", "fast", "generic"):
            raise ValueError(
                f"unknown dispatch tier {dispatch!r}: expected 'translated', "
                "'fast', or 'generic'"
            )
        self.dispatch = dispatch
        self.fast_dispatch = dispatch != "generic"
        self._execute = (self._execute_fast if self.fast_dispatch
                         else self._execute_generic)
        # The translated tier keeps running under telemetry: superblock
        # dispatches bypass the counting wrapper, so _exec_block counts
        # opcodes itself — app steps batched at block boundaries, body
        # instructions inline — and only the interpretive fallback steps
        # go through the wrapper.
        self._translated = dispatch == "translated"
        # Telemetry and verification observers are wired at construction
        # time: when absent, no wrapper is installed and the dispatch path
        # is identical to the uninstrumented machine (bench_telemetry.py
        # asserts this).
        self._opcode_counts: Optional[Dict[Opcode, int]] = None
        self._tm_prev: Optional[dict] = None
        self._observer = None
        self._profile: Optional[dict] = None
        if observer is not None:
            self._install_observer(observer)
        if _telemetry.enabled():
            self._install_opcode_telemetry()
        if _profile_mod.enabled():
            self._install_profiler()

        self.regs: List[int] = [0] * NUM_REGS
        self.mem = Memory(image.data_words)
        self.idx = image.entry_index
        self.halted = False
        self.fault_code: Optional[int] = None
        self.outputs: List[int] = []
        self._cols = OpColumns()

        self.instructions = 0
        self.app_instructions = 0
        self.expansions = 0
        self.pt_misses = 0
        self.rt_misses = 0

        #: Controller-call handlers for the ``ctrl`` instruction — the
        #: paper's instruction-based controller interface (Section 2.3).
        #: code -> callable(machine).
        self.control_handlers: Dict[int, callable] = {}

        # Per-image decoded-instruction cache: index -> (instruction,
        # (source_regs, dest_reg), is_reserved, handler, is_trigger).
        # Filled lazily so huge images only pay for the instructions they
        # actually execute; flushed when the engine's production set
        # changes (is_trigger depends on it).
        self._decode: List[Optional[tuple]] = [None] * len(image.instructions)
        self._decode_gen = self.engine.generation if self.engine else 0
        # Dataflow cache for dynamic (replacement) instructions.  Keyed by
        # id(); the entry holds a strong reference to the instruction, so an
        # id can never be recycled while its entry is alive.  Scoped to this
        # machine, unlike the old module-global cache, so one long-lived
        # process does not accumulate every image's instructions.
        self._dyn_dataflow: Dict[int, tuple] = {}

        # In-flight expansion state.
        self._exp = None
        self._disepc = 0
        self._pending: Optional[int] = None   # deferred trigger-branch target
        self._exp_event = None                # attached to first expansion op

        # Superblock translation cache: entry index -> (steps, exit_idx), or
        # _NO_BLOCK for untranslatable entries.  Alongside it, the
        # translation memos: per-index step tuples (False = untranslatable
        # site), so overlapping superblocks pay the per-instruction cost
        # once; per-(seq_id, trigger_pc) pre-bound replacement bodies; and
        # entry-visit counts for the warmup gate.  All four are normally
        # views into the image-wide store (_attach_translations), shared
        # by every machine running the same productions, and are re-bound
        # through the controller's invalidation listener and the engine's
        # generation counter whenever the active set changes.
        self._blocks: Dict[int, tuple] = {}
        self._steps: Dict[int, tuple] = {}
        self._bodies: Dict[tuple, list] = {}
        self._heat: Dict[int, int] = {}
        self._warm = False
        self._blocks_gen = self._decode_gen
        if self._translated:
            self._attach_translations()
            if controller is not None:
                controller.add_invalidation_listener(
                    _make_flush_callback(weakref.ref(self)))

    # ------------------------------------------------------------------
    # Verification observer (installed only when one is supplied)
    # ------------------------------------------------------------------
    def _install_observer(self, observer):
        """Wrap dispatch with the conformance observation hook.

        The observer sees architectural state *after* each retirement;
        :mod:`repro.verify.observe` recomputes effects from it.  Faulting
        dispatches (ExecutionError) produce no observation.
        """
        inner = self._execute
        observe = observer.observe

        def observing_execute(instr, pc, idx, **kwargs):
            out = inner(instr, pc, idx, **kwargs)
            observe(self, instr, pc, kwargs["disepc"], kwargs["is_trigger"])
            return out

        self._execute = observing_execute
        self._observer = observer

    # ------------------------------------------------------------------
    # Telemetry (installed only when REPRO_TELEMETRY is on)
    # ------------------------------------------------------------------
    def _install_opcode_telemetry(self):
        """Wrap dispatch with a per-opcode retirement counter."""
        inner = self._execute
        counts: Dict[Opcode, int] = {}
        self._opcode_counts = counts
        self._tm_prev = {"instructions": 0, "app_instructions": 0,
                         "expansions": 0, "pt_misses": 0, "rt_misses": 0,
                         "opcodes": {}}

        def counting_execute(instr, pc, idx, **kwargs):
            opcode = instr.opcode
            counts[opcode] = counts.get(opcode, 0) + 1
            return inner(instr, pc, idx, **kwargs)

        self._execute = counting_execute

    # ------------------------------------------------------------------
    # Hot-path profiler (installed only when REPRO_TRACE_PROFILE is on)
    # ------------------------------------------------------------------
    def _install_profiler(self):
        """Attach retirement-attribution state for this machine's tier.

        On the translated tier the hooks live inline in
        :meth:`_exec_block` (one dict bump per superblock execution, so
        the warm-path overhead stays block-granular).  On the
        interpretive tiers — where no superblocks exist — dispatch is
        wrapped and retirements are attributed to *dynamic basic-block
        leaders*: any PC reached non-sequentially starts a new leader.
        """
        tier = ("translated" if self._translated
                else ("fast" if self.fast_dispatch else "generic"))
        profile = _profile_mod.new_profile(tier)
        self._profile = profile
        if self._translated:
            return
        inner = self._execute
        blocks = profile["block"]
        triggers = profile["trigger"]
        productions = profile["production"]
        state = {"last": None, "leader": 0}

        def profiling_execute(instr, pc, idx, **kwargs):
            if self._exp is None:
                last = state["last"]
                if last is None or pc != last + 4:
                    state["leader"] = pc
                state["last"] = pc
                leader = state["leader"]
                blocks[leader] = blocks.get(leader, 0) + 1
            else:
                seq_id = self._exp.seq_id
                productions[seq_id] = productions.get(seq_id, 0) + 1
                if kwargs.get("disepc") == 0 and kwargs.get("fetch_addr") \
                        is not None:
                    triggers[pc] = triggers.get(pc, 0) + 1
                state["last"] = None
            return inner(instr, pc, idx, **kwargs)

        self._execute = profiling_execute

    def _publish_telemetry(self):
        """Fold this machine's totals into the process registry.

        Publishes only the growth since the previous call, so calling
        :meth:`result` repeatedly (or resuming after a checkpoint) never
        double-counts.
        """
        prev = self._tm_prev
        for field in ("instructions", "app_instructions", "expansions",
                      "pt_misses", "rt_misses"):
            delta = getattr(self, field) - prev[field]
            if delta:
                _telemetry.counter(f"sim.{field}").inc(delta)
                prev[field] = getattr(self, field)
        loads = stores = 0
        prev_opcodes = prev["opcodes"]
        for opcode, count in self._opcode_counts.items():
            delta = count - prev_opcodes.get(opcode, 0)
            if not delta:
                continue
            _telemetry.counter(f"sim.opcode.{opcode.name}").inc(delta)
            prev_opcodes[opcode] = count
            if opcode in (Opcode.LDQ, Opcode.LDL):
                loads += delta
            elif opcode in (Opcode.STQ, Opcode.STL):
                stores += delta
        if loads:
            _telemetry.counter("sim.mem.loads").inc(loads)
        if stores:
            _telemetry.counter("sim.mem.stores").inc(stores)

    # ------------------------------------------------------------------
    # Register access helpers
    # ------------------------------------------------------------------
    def read_reg(self, reg: int) -> int:
        return 0 if reg == ZERO else self.regs[reg]

    def write_reg(self, reg: int, value: int):
        if reg != ZERO:
            self.regs[reg] = value & MASK64

    def register_control_handler(self, code: int, handler):
        """Register a handler for ``ctrl <reg>, <code>`` instructions.

        The handler receives the machine; it typically reads its argument
        from a register and talks to the DISE controller — modelling the
        user-level production-management interface of Section 2.3.
        """
        if code in self.control_handlers:
            raise ValueError(f"ctrl code {code} already registered")
        self.control_handlers[code] = handler

    # ------------------------------------------------------------------
    # Decode caches
    # ------------------------------------------------------------------
    def _decode_at(self, idx: int) -> tuple:
        instr = self.image.instructions[idx]
        opcode = instr.opcode
        engine = self.engine
        entry = (instr, _df(instr), opcode.is_reserved,
                 _EXEC_TABLE.get(opcode),
                 engine is not None and opcode in engine.trigger_opcodes)
        self._decode[idx] = entry
        return entry

    def _dataflow(self, instr: Instruction) -> tuple:
        return self._dyn_info(instr)[0]

    def _dyn_info(self, instr: Instruction) -> tuple:
        """((source_regs, dest_reg, packed_srcs), handler) for a dynamic
        (replacement) instruction, cached by identity."""
        entry = self._dyn_dataflow.get(id(instr))
        if entry is None or entry[0] is not instr:
            entry = (instr, _df(instr), _EXEC_TABLE.get(instr.opcode))
            self._dyn_dataflow[id(instr)] = entry
        return entry[1], entry[2]

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_steps=5_000_000) -> TraceResult:
        if self._translated:
            return self._run_translated(max_steps)
        steps = 0
        while not self.halted and steps < max_steps:
            self.step()
            steps += 1
        if not self.halted and steps >= max_steps:
            raise ExecutionTimeout(
                f"program did not halt within {max_steps} dynamic "
                "instructions",
                steps=max_steps, index=self.idx,
            )
        return self.result()

    def step(self):
        """Execute exactly one dynamic instruction."""
        if self.halted:
            return
        if self._exp is not None:
            self._step_expansion()
        else:
            self._step_app()

    def _step_app(self):
        idx = self.idx
        image = self.image
        engine = self.engine
        if engine is not None and engine.generation != self._decode_gen:
            # Production set changed mid-run (controller ctrl call):
            # cached trigger decisions are stale.
            self._decode = [None] * len(image.instructions)
            self._decode_gen = engine.generation
        try:
            entry = self._decode[idx]
        except IndexError:
            raise ExecutionError(
                f"control fell off the image at index {idx}", index=idx
            ) from None
        if entry is None:
            entry = self._decode_at(idx)
        instr, dataflow, is_reserved, handler, is_engine_trigger = entry
        pc = image.addresses[idx]
        if engine is not None:
            if is_engine_trigger:
                exp, pt_miss, rt_miss = engine.process(instr, pc)
                if pt_miss:
                    self.pt_misses += 1
                if exp is not None:
                    if rt_miss:
                        self.rt_misses += 1
                    self._exp = exp
                    self._disepc = 0
                    self._pending = None
                    self._exp_event = (
                        exp.seq_id, len(exp.instrs), pt_miss, rt_miss,
                        exp.composed
                    )
                    self.app_instructions += 1
                    self.expansions += 1
                    self._step_expansion()
                    return
            else:
                # No active production can match this opcode: skip the
                # engine entirely (the PT holds no patterns for it, so the
                # access would not change any physical state either).
                engine.inspected += 1
        self.app_instructions += 1
        if is_reserved:
            raise ExecutionError(
                f"stray codeword at {pc:#x}: no decompression production "
                f"matches {instr}",
                pc=pc, index=idx, opcode=instr.opcode,
            )
        kind, taken, target_idx = self._execute(
            instr, pc, idx, fetch_addr=pc, disepc=0, trigger_idx=idx,
            is_trigger=True, expansion_event=None, dataflow=dataflow,
            handler=handler,
        )
        if self.halted:
            return
        if kind is not None and taken:
            self.idx = target_idx
        else:
            self.idx = idx + 1

    def _step_expansion(self):
        exp = self._exp
        disepc = self._disepc
        instr = exp.instrs[disepc]
        idx = self.idx
        # The engine caches expansions by trigger bits; identical triggers at
        # different addresses share one Expansion, so the *current* address
        # (not exp.trigger_pc) must anchor PC-relative semantics.
        pc = self.image.addresses[idx]
        is_trigger_copy = disepc in exp.trigger_offsets
        fetch_addr = pc if disepc == 0 else None
        event = self._exp_event
        self._exp_event = None

        dataflow, handler = self._dyn_info(instr)
        kind, taken, target_idx = self._execute(
            instr, pc, idx, fetch_addr=fetch_addr, disepc=disepc,
            trigger_idx=idx, is_trigger=is_trigger_copy,
            expansion_event=event, dataflow=dataflow, handler=handler,
        )
        if self.halted:
            return

        if kind == CTRL_DISE:
            self._disepc = target_idx if taken else disepc + 1
        elif kind is not None and taken:
            if is_trigger_copy:
                # Predicted-path semantics: the rest of the sequence still
                # executes; the branch outcome applies at sequence end.
                self._pending = target_idx
                self._disepc = disepc + 1
            else:
                # Effectively predicted not-taken: squash the rest.
                self._finish_expansion(target_idx)
                return
        else:
            self._disepc = disepc + 1

        if self._exp is not None and self._disepc >= len(exp.instrs):
            self._finish_expansion(
                self._pending if self._pending is not None else idx + 1
            )

    def _finish_expansion(self, next_idx: int):
        self._exp = None
        self._disepc = 0
        self._pending = None
        self.idx = next_idx

    # ------------------------------------------------------------------
    # Superblock translation cache (translated dispatch tier)
    # ------------------------------------------------------------------
    def _attach_translations(self):
        """Bind this machine's translation memos to the image-wide store.

        Translated superblocks depend only on the image text and the
        active production set, so they live on the image, keyed by the
        engine's cross-machine :attr:`production_signature` — every
        machine running the same installation shares one memo set and
        fresh machines start warm.  Re-invoked (via the controller's
        invalidation listener and the generation check in the run loop)
        whenever the active set changes: the machine re-binds to the
        entry for the new signature, leaving other keyings warm.  Images
        that refuse attribute stashing fall back to private memos.
        """
        engine = self.engine
        image = self.image
        if engine is not None and engine.generation != self._decode_gen:
            self._decode = [None] * len(image.instructions)
            self._decode_gen = engine.generation
        store = getattr(image, "_translation_store", None)
        if store is None:
            try:
                store = image._translation_store = {}
            except AttributeError:
                self._blocks, self._steps = {}, {}
                self._bodies, self._heat = {}, {}
                self._warm = False
                if engine is not None:
                    self._blocks_gen = engine.generation
                return
        key = engine.production_signature if engine is not None else None
        entry = store.get(key)
        if entry is None:
            entry = store[key] = ({}, {}, {}, {})
        self._blocks, self._steps, self._bodies, self._heat = entry
        # Warm-store pre-seed: a sibling machine already paid the
        # interpretive warmup for this keying, so later lanes skip the
        # revisit gate entirely and translate on first touch.
        self._warm = bool(entry[0] or entry[1])
        if engine is not None:
            self._blocks_gen = engine.generation

    def invalidate_translations(self):
        """Flush every translated superblock and decoded instruction.

        Call after rewriting the text segment in place (e.g. a
        decompression ACF patching codewords): the *whole* image-wide
        store is stale then, under every production-set keying, so it is
        dropped and this machine re-binds to a fresh entry.  (Plain
        production-set swaps do not need this — the controller's
        invalidation listener re-binds to the right keying and keeps the
        others warm.)
        """
        store = getattr(self.image, "_translation_store", None)
        if store is not None:
            store.clear()
        bstore = getattr(self.image, "_batch_store", None)
        if bstore is not None:
            bstore.clear()
        self._attach_translations()
        self._decode = [None] * len(self.image.instructions)
        if self.engine is not None:
            self._decode_gen = self.engine.generation

    def _run_translated(self, max_steps) -> TraceResult:
        """Main loop of the translated tier.

        Executes whole superblocks when one is available for the current
        index and falls back to single interpretive steps everywhere else
        (untranslatable sites, in-flight expansions after a restore).  The
        step budget is shared with the interpretive loop so
        :class:`ExecutionTimeout` fires after exactly the same number of
        dynamic instructions.
        """
        steps_left = max_steps
        image_len = len(self.image.instructions)
        while not self.halted and steps_left > 0:
            if self._exp is not None:
                self.step()
                steps_left -= 1
                continue
            engine = self.engine
            if engine is not None and engine.generation != self._blocks_gen:
                # Production set changed (ctrl call or direct controller
                # use): re-bind to the store entry for the new active set.
                # Flushes _decode too if the interpretive fallback has not
                # already done so under its own generation marker.
                self._attach_translations()
            idx = self.idx
            block = self._blocks.get(idx)
            if block is None:
                if 0 <= idx < image_len:
                    # Warmup gate: translation only pays off on re-executed
                    # code, so cold entries run interpretively and a block
                    # is built the first time its entry is *revisited*.
                    count = self._heat.get(idx, 0)
                    if count < _HOT_THRESHOLD and not self._warm:
                        self._heat[idx] = count + 1
                        self.step()
                        steps_left -= 1
                        continue
                    block = self._translate(idx)
                else:
                    block = _NO_BLOCK   # step() raises the precise error
                self._blocks[idx] = block
            steps, _ = block
            if not steps:
                self.step()
                steps_left -= 1
                continue
            steps_left -= self._exec_block(block, steps_left)
        if not self.halted and steps_left <= 0:
            raise ExecutionTimeout(
                f"program did not halt within {max_steps} dynamic "
                "instructions",
                steps=max_steps, index=self.idx,
            )
        return self.result()

    def _translate(self, entry_idx: int) -> tuple:
        """Pre-decode one superblock starting at ``entry_idx``.

        Returns ``(steps, exit_idx)`` — ``steps`` is a tuple of pre-bound
        step tuples ``(kind, instr, pc, idx, handler, meta, packed_srcs,
        probe, trig)``; ``exit_idx`` is the fall-through index when the
        runner walks off the end of the list.  Sites whose semantics cannot
        be hoisted (ctrl calls, stray codewords, expansion errors,
        unsupported bodies) end the block; an empty block (``_NO_BLOCK``)
        sends the entry back to the interpretive loop.
        """
        step_memo = self._steps
        steps = []
        idx = entry_idx
        n = len(self._decode)
        while idx < n and len(steps) < _BLOCK_CAP:
            st = step_memo.get(idx)
            if st is None:
                st = self._translate_step(idx)
                step_memo[idx] = st
            if st is False:
                break
            steps.append(st)
            idx += 1
            kind = st[0]
            if kind == _T_JUMP or kind == _T_HALT:
                break
        return (tuple(steps), idx) if steps else _NO_BLOCK

    def _translate_step(self, idx: int):
        """Pre-bind the step tuple for one static instruction.

        Position-dependent only through ``idx``/``pc``, so overlapping
        superblocks share the result via the ``_steps`` memo.  Returns
        ``False`` for untranslatable sites.
        """
        entry = self._decode[idx]
        if entry is None:
            entry = self._decode_at(idx)
        instr, dataflow, is_reserved, handler, is_engine_trigger = entry
        opcode = instr.opcode
        pc = self.image.addresses[idx]
        probe = None
        if is_engine_trigger:
            try:
                pre = self.engine.preexpand(instr, pc)
            except ExpansionError:
                # Raises only when executed on the interpretive path.
                return False
            if pre is not None:
                production, seq_id, spec, exp = pre
                body = self._translate_body(exp)
                if body is None:
                    return False
                return (_T_TRIG, instr, pc, idx, None, 0, 0, None,
                        (opcode, seq_id, len(spec), exp, body, production))
            # Trigger opcode, but no production matches this site: the
            # PT is still probed per dynamic instance.
            probe = opcode
        if handler is None:
            return False
        cls = _classify_app(opcode)
        if cls is None:
            return False
        kind, extra = cls
        meta = opcode.code | extra | META_FETCH | META_TRIGGER
        dest = dataflow[1]
        if dest is not None:
            meta |= (dest + 1) << DEST_SHIFT
        return (kind, instr, pc, idx, handler, meta, dataflow[2], probe, None)

    def _translate_body(self, exp) -> Optional[list]:
        """Pre-bind one instantiated replacement body, or None when any
        instruction resists hoisting (ctrl calls can invalidate the block
        they run in; codeword copies raise interpretively).

        Memoised per ``(seq_id, trigger_pc)``: instantiation is a pure
        function of the production set and the trigger instruction, both
        fixed for the memo's lifetime (flushed with ``_blocks``).
        """
        key = (exp.seq_id, exp.trigger_pc)
        cached = self._bodies.get(key)
        if cached is not None:
            return cached or None
        body = self._build_body(exp)
        self._bodies[key] = body if body is not None else ()
        return body

    def _build_body(self, exp) -> Optional[list]:
        instrs = exp.instrs
        if not instrs:
            return None
        offsets = exp.trigger_offsets
        body = []
        for k, binstr in enumerate(instrs):
            cls = _classify_body(binstr.opcode)
            if cls is None:
                return None
            dataflow, bhandler = self._dyn_info(binstr)
            if bhandler is None:
                return None
            bkind, extra = cls
            is_copy = k in offsets
            meta = binstr.opcode.code | extra | (k << DISEPC_SHIFT)
            if k == 0:
                meta |= META_FETCH
            if is_copy:
                meta |= META_TRIGGER
            dest = dataflow[1]
            if dest is not None:
                meta |= (dest + 1) << DEST_SHIFT
            body.append((bkind, binstr, bhandler, meta, dataflow[2], is_copy))
        return body

    def _exec_block(self, block, budget: int) -> int:
        """Run one translated superblock; returns retirements executed.

        Mirrors the interpretive loop's observable behaviour exactly:
        counter ordering, trace records (including the taken-DISE-branch
        target quirk), observer calls, precise state at faults and halts,
        and budget exhaustion mid-sequence all match ``step()``.
        ``self.idx`` is kept current throughout, so exceptions raised by
        handlers propagate with the same machine state the interpretive
        path would leave.
        """
        steps, exit_idx = block
        engine = self.engine
        record = self.record_trace
        observer = self._observer
        observe = observer.observe if observer is not None else None
        cols = self._cols
        pc_col = cols.pc
        meta_col = cols.meta
        mem_col = cols.mem
        tgt_col = cols.target
        srcs_col = cols.srcs
        exp_map = cols.exp
        addresses = self.image.addresses
        n_addr = len(addresses)
        profile = self._profile
        counts = self._opcode_counts
        executed = 0
        retired = 0
        app = 0
        i = 0
        n = len(steps)
        try:
            while i < n:
                st = steps[i]
                idx = st[3]
                self.idx = idx
                if executed >= budget:
                    return executed
                kind = st[0]
                instr = st[1]
                pc = st[2]
                probe = st[7]
                if probe is not None and engine.pt.access(probe):
                    self.pt_misses += 1
                app += 1
                if kind == _T_SIMPLE:
                    st[4](self, instr, pc, idx, idx, True)
                    retired += 1
                    executed += 1
                    if record:
                        pc_col.append(pc)
                        meta_col.append(st[5])
                        mem_col.append(0)
                        tgt_col.append(0)
                        srcs_col.append(st[6])
                    if observe is not None:
                        observe(self, instr, pc, 0, True)
                    i += 1
                    continue
                if kind == _T_MEM:
                    res = st[4](self, instr, pc, idx, idx, True)
                    retired += 1
                    executed += 1
                    if record:
                        pc_col.append(pc)
                        meta_col.append(st[5])
                        mem_col.append(res[3])
                        tgt_col.append(0)
                        srcs_col.append(st[6])
                    if observe is not None:
                        observe(self, instr, pc, 0, True)
                    i += 1
                    continue
                if kind == _T_BRANCH:
                    res = st[4](self, instr, pc, idx, idx, True)
                    retired += 1
                    executed += 1
                    taken = res[1]
                    if record:
                        pc_col.append(pc)
                        if taken:
                            meta_col.append(st[5] | META_TAKEN | META_TARGET)
                            tgt_col.append(res[5])
                        else:
                            meta_col.append(st[5])
                            tgt_col.append(0)
                        mem_col.append(0)
                        srcs_col.append(st[6])
                    if observe is not None:
                        observe(self, instr, pc, 0, True)
                    if taken:
                        target_idx = res[2]
                        self.idx = target_idx
                        if target_idx != idx + 1:
                            return executed
                    i += 1
                    continue
                if kind == _T_JUMP:
                    res = st[4](self, instr, pc, idx, idx, True)
                    retired += 1
                    executed += 1
                    if record:
                        pc_col.append(pc)
                        meta_col.append(st[5])
                        mem_col.append(0)
                        tgt_col.append(res[5])
                        srcs_col.append(st[6])
                    if observe is not None:
                        observe(self, instr, pc, 0, True)
                    if self.halted:
                        return executed   # bad jump: idx stays at the jump
                    self.idx = res[2]
                    return executed
                if kind == _T_HALT:
                    st[4](self, instr, pc, idx, idx, True)
                    retired += 1
                    executed += 1
                    if record:
                        pc_col.append(pc)
                        meta_col.append(st[5])
                        mem_col.append(0)
                        tgt_col.append(0)
                        srcs_col.append(st[6])
                    if observe is not None:
                        observe(self, instr, pc, 0, True)
                    return executed
                # _T_TRIG: run the pre-bound replacement body inline.  Only
                # the stateful PT/RT accesses and the counters remain from
                # engine.process(); match + instantiation happened at
                # translation time.
                opcode, seq_id, spec_len, exp, body, production = st[8]
                pt_miss = engine.pt.access(opcode)
                if pt_miss:
                    self.pt_misses += 1
                rt_miss = engine.rt.access_sequence(seq_id, spec_len)
                if rt_miss:
                    self.rt_misses += 1
                engine.expansions += 1
                self.expansions += 1
                if engine._tm is not None:
                    # Same per-dynamic-expansion telemetry as
                    # engine.process() on the interpretive tiers.
                    engine._tm.record(engine, production, exp)
                if profile is not None:
                    ptrig = profile["trigger"]
                    ptrig[pc] = ptrig.get(pc, 0) + 1
                    pprod = profile["production"]
                    pprod[seq_id] = pprod.get(seq_id, 0) + len(body)
                event = (seq_id, len(body), pt_miss, rt_miss, exp.composed)
                self._exp = exp
                self._pending = None
                self._disepc = 0
                first = True
                disepc = 0
                nbody = len(body)
                while disepc < nbody:
                    if executed >= budget:
                        # Out of budget mid-sequence: leave precise
                        # PC:DISEPC state for the caller's timeout.
                        self._disepc = disepc
                        return executed
                    belem = body[disepc]
                    self._disepc = disepc
                    binstr = belem[1]
                    is_copy = belem[5]
                    if counts is not None:
                        # Inline (not batched): body length varies with
                        # mid-sequence exits, and like the interpretive
                        # counting wrapper the bump precedes the handler
                        # call so faulting dispatches are counted.
                        bop = binstr.opcode
                        counts[bop] = counts.get(bop, 0) + 1
                    res = belem[2](self, binstr, pc, idx, idx, is_copy)
                    retired += 1
                    executed += 1
                    bkind = belem[0]
                    if record:
                        bmeta = belem[3]
                        tgt = 0
                        memv = 0
                        if bkind == _B_MEM:
                            memv = res[3]
                        elif res[1]:
                            bmeta |= META_TAKEN
                            if bkind == _B_DISE:
                                # Interpretive quirk, preserved for
                                # bit-identical traces: a taken DISE branch
                                # records addresses[target DISEPC].
                                td = res[2]
                                if td is not None:
                                    bmeta |= META_TARGET
                                    tgt = addresses[td] if td < n_addr else 0
                            else:
                                tpc = res[5]
                                if tpc is None and res[2] is not None:
                                    tpc = (addresses[res[2]]
                                           if res[2] < n_addr else 0)
                                if tpc is not None:
                                    bmeta |= META_TARGET
                                    tgt = tpc
                        if first:
                            bmeta |= META_EXP
                            exp_map[len(pc_col)] = event
                        pc_col.append(pc)
                        meta_col.append(bmeta)
                        mem_col.append(memv)
                        tgt_col.append(tgt)
                        srcs_col.append(belem[4])
                    first = False
                    if observe is not None:
                        observe(self, binstr, pc, disepc, is_copy)
                    if bkind == _B_SIMPLE or bkind == _B_MEM:
                        disepc += 1
                    elif bkind == _B_DISE:
                        disepc = res[2] if res[1] else disepc + 1
                    elif self.halted:
                        # Fault/halt mid-sequence: expansion state stays
                        # live, exactly as the interpretive path leaves it.
                        self._disepc = disepc
                        return executed
                    elif res[1]:
                        if is_copy:
                            # Predicted-path semantics: the outcome applies
                            # at sequence end.
                            self._pending = res[2]
                            disepc += 1
                        else:
                            # Effectively predicted not-taken: squash.
                            next_idx = res[2]
                            self._exp = None
                            self._disepc = 0
                            self._pending = None
                            self.idx = next_idx
                            return executed
                    else:
                        disepc += 1
                pending = self._pending
                next_idx = pending if pending is not None else idx + 1
                self._exp = None
                self._disepc = 0
                self._pending = None
                self.idx = next_idx
                if next_idx != idx + 1:
                    return executed
                i += 1
            self.idx = exit_idx
            return executed
        finally:
            self.instructions += retired
            self.app_instructions += app
            if engine is not None:
                engine.inspected += app
            if counts is not None:
                # Per-opcode telemetry for the app-level steps, batched at
                # the block boundary.  ``app`` was bumped before each
                # dispatch, so a faulting step is included — the same
                # semantics as the interpretive counting wrapper.  Trigger
                # steps are skipped: the trigger instruction itself never
                # passes through dispatch (its replacement body, counted
                # inline above, retires in its place).
                for k in range(app):
                    st_k = steps[k]
                    if st_k[0] != _T_TRIG:
                        op = st_k[1].opcode
                        counts[op] = counts.get(op, 0) + 1
            if profile is not None and retired:
                entry_pc = steps[0][2]
                pblocks = profile["block"]
                pblocks[entry_pc] = pblocks.get(entry_pc, 0) + retired

    # ------------------------------------------------------------------
    # Precise state (PC:DISEPC checkpoints, Section 2.1/2.2)
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Capture precise state at the current PC:DISEPC boundary.

        The checkpoint carries the execution counters too, so restoring
        into a *fresh* machine (fork semantics — a new controller/session
        resuming someone else's run) continues ``instructions`` /
        ``app_instructions`` / ``expansions`` and the PT/RT miss tallies
        from the checkpoint instead of restarting them at zero; an
        :class:`ExecutionTimeout` budget therefore fires at the same
        cumulative retirement count whether or not the run was migrated.
        A fresh machine built on the same image and an equivalent
        production set also re-binds to the warm
        ``image._translation_store`` entry (keyed by the engine's
        content-based ``production_signature``), so the restored run
        skips interpretive warmup entirely — see
        :meth:`_attach_translations`.
        """
        return {
            "regs": list(self.regs),
            "mem": self.mem.snapshot(),
            "idx": self.idx,
            "disepc": self._disepc if self._exp is not None else 0,
            "pending": self._pending,
            "halted": self.halted,
            "fault_code": self.fault_code,
            "outputs": list(self.outputs),
            "counters": {
                "instructions": self.instructions,
                "app_instructions": self.app_instructions,
                "expansions": self.expansions,
                "pt_misses": self.pt_misses,
                "rt_misses": self.rt_misses,
            },
        }

    def restore(self, state: dict):
        """Resume from a checkpoint, re-expanding a mid-sequence trigger.

        Checkpoints written by older builds lack the ``counters`` key;
        those restore architectural state only and leave this machine's
        counters untouched (the pre-fork behaviour).
        """
        self.regs = list(state["regs"])
        self.mem.restore(state["mem"])
        self.idx = state["idx"]
        self.halted = state["halted"]
        self.fault_code = state["fault_code"]
        self.outputs = list(state["outputs"])
        counters = state.get("counters")
        if counters is not None:
            self.instructions = counters["instructions"]
            self.app_instructions = counters["app_instructions"]
            self.expansions = counters["expansions"]
            self.pt_misses = counters["pt_misses"]
            self.rt_misses = counters["rt_misses"]
            if self._tm_prev is not None:
                # Only growth *after* the restore publishes to telemetry:
                # the checkpointing machine already published (or will
                # publish) everything up to the checkpoint.
                for field in ("instructions", "app_instructions",
                              "expansions", "pt_misses", "rt_misses"):
                    self._tm_prev[field] = counters[field]
        self._exp = None
        self._disepc = 0
        self._pending = None
        disepc = state["disepc"]
        if disepc:
            if self.engine is None:
                raise ExecutionError("cannot resume a DISEPC without an engine",
                                     index=self.idx)
            instr = self.image.instructions[self.idx]
            pc = self.image.addresses[self.idx]
            exp, _, _ = self.engine.process(instr, pc)
            if exp is None or disepc >= len(exp.instrs):
                raise ExecutionError(
                    "replacement sequence changed across restore; cannot "
                    f"resume at DISEPC {disepc}",
                    pc=pc, index=self.idx,
                )
            self._exp = exp
            self._disepc = disepc
            self._pending = state["pending"]
            self._exp_event = None

    # ------------------------------------------------------------------
    # Instruction semantics — fast path (opcode-indexed handler table)
    # ------------------------------------------------------------------
    def _execute_fast(self, instr, pc, idx, fetch_addr, disepc, trigger_idx,
                      is_trigger, expansion_event, dataflow=None,
                      handler=_UNRESOLVED):
        """Execute one dynamic instruction via the handler table; returns
        (ctrl_kind, taken, target_idx) and records the trace op."""
        if handler is _UNRESOLVED:
            handler = _EXEC_TABLE.get(instr.opcode)
        if handler is None:
            # New or exotic opcode with no fast handler: the generic
            # if-chain raises the precise model-level error.
            return self._execute_generic(
                instr, pc, idx, fetch_addr, disepc, trigger_idx,
                is_trigger, expansion_event, dataflow,
            )
        ctrl, taken, target_idx, mem_addr, is_store, target_pc = handler(
            self, instr, pc, idx, trigger_idx, is_trigger
        )
        self.instructions += 1
        if self.record_trace:
            if dataflow is None:
                dataflow = self._dataflow(instr)
            if ctrl is not None and taken and target_pc is None and \
                    target_idx is not None:
                addresses = self.image.addresses
                target_pc = addresses[target_idx] \
                    if target_idx < len(addresses) else 0
            self._cols.append(
                pc, disepc, instr.opcode.code, dataflow[2], dataflow[1],
                mem_addr, is_store, fetch_addr is not None, ctrl, taken,
                target_pc if taken else None, is_trigger, expansion_event,
            )
        return ctrl, taken, target_idx

    # ------------------------------------------------------------------
    # Instruction semantics — generic path (reference implementation)
    # ------------------------------------------------------------------
    def _execute_generic(self, instr, pc, idx, fetch_addr, disepc,
                         trigger_idx, is_trigger, expansion_event,
                         dataflow=None, handler=None):
        """Execute one dynamic instruction; returns (ctrl_kind, taken,
        target_idx) and records the trace op."""
        image = self.image
        regs = self.regs
        op = instr.opcode
        opclass = op.opclass
        fmt = op.format

        mem_addr = None
        is_store = False
        ctrl = None
        taken = False
        target_idx = None
        target_pc = None

        if fmt is Format.OPERATE:
            a = 0 if instr.ra == ZERO else regs[instr.ra]
            if instr.rb is None:
                b = instr.imm
            else:
                b = 0 if instr.rb == ZERO else regs[instr.rb]
            if op is Opcode.ADDQ:
                value = (a + b) & MASK64
            elif op is Opcode.SUBQ:
                value = (a - b) & MASK64
            elif op is Opcode.MULQ:
                value = (a * b) & MASK64
            elif op is Opcode.AND:
                value = a & b
            elif op is Opcode.BIS:
                value = a | b
            elif op is Opcode.XOR:
                value = a ^ b
            elif op is Opcode.SLL:
                value = (a << (b & 63)) & MASK64
            elif op is Opcode.SRL:
                value = a >> (b & 63)
            elif op is Opcode.SRA:
                value = (_signed(a) >> (b & 63)) & MASK64
            elif op is Opcode.CMPEQ:
                value = 1 if a == b else 0
            elif op is Opcode.CMPLT:
                value = 1 if _signed(a) < _signed(b) else 0
            elif op is Opcode.CMPLE:
                value = 1 if _signed(a) <= _signed(b) else 0
            elif op is Opcode.CMPULT:
                value = 1 if a < b else 0
            elif op is Opcode.CMOVEQ:
                value = b if a == 0 else regs[instr.rc] if instr.rc != ZERO else 0
            elif op is Opcode.CMOVNE:
                value = b if a != 0 else regs[instr.rc] if instr.rc != ZERO else 0
            else:
                raise ExecutionError(f"unhandled operate opcode {op}",
                                     pc=pc, index=idx, opcode=op)
            self.write_reg(instr.rc, value)

        elif fmt is Format.MEM:
            base = 0 if instr.rb == ZERO else regs[instr.rb]
            if op is Opcode.LDA:
                self.write_reg(instr.ra, (base + instr.imm) & MASK64)
            elif op is Opcode.LDAH:
                self.write_reg(instr.ra, (base + (instr.imm << 16)) & MASK64)
            else:
                mem_addr = (base + instr.imm) & MASK64
                if op is Opcode.LDQ:
                    self.write_reg(instr.ra, self.mem.read(mem_addr))
                elif op is Opcode.LDL:
                    raw = self.mem.read(mem_addr) & 0xFFFFFFFF
                    if raw & 0x80000000:
                        raw |= 0xFFFFFFFF00000000
                    self.write_reg(instr.ra, raw)
                elif op is Opcode.STQ:
                    is_store = True
                    self.mem.write(mem_addr, self.read_reg(instr.ra))
                elif op is Opcode.STL:
                    is_store = True
                    self.mem.write(mem_addr, self.read_reg(instr.ra) & 0xFFFFFFFF)
                else:
                    raise ExecutionError(f"unhandled memory opcode {op}",
                                         pc=pc, index=idx, opcode=op)

        elif fmt is Format.BRANCH:
            if op is Opcode.OUT:
                self.outputs.append(self.read_reg(instr.ra))
            elif op is Opcode.CTRL:
                handler = self.control_handlers.get(instr.imm)
                if handler is None:
                    raise ExecutionError(
                        f"ctrl call {instr.imm} at {pc:#x} has no registered "
                        "handler",
                        pc=pc, index=idx, opcode=op,
                    )
                handler(self)
            elif op is Opcode.FAULT:
                self.halted = True
                self.fault_code = instr.imm if instr.imm is not None else 0
            elif opclass is OpClass.DISE_BRANCH:
                if disepc is None or self._exp is None:
                    raise ExecutionError(
                        f"DISE branch outside a replacement sequence at "
                        f"{pc:#x}",
                        pc=pc, index=idx, opcode=op,
                    )
                ctrl = CTRL_DISE
                test = self.read_reg(instr.ra)
                if op is Opcode.DBR:
                    taken = True
                elif op is Opcode.DBEQ:
                    taken = test == 0
                else:  # DBNE
                    taken = test != 0
                target_idx = instr.imm  # a DISEPC, not an instruction index
            else:
                test = self.read_reg(instr.ra)
                if op is Opcode.BEQ:
                    taken = test == 0
                elif op is Opcode.BNE:
                    taken = test != 0
                elif op is Opcode.BLT:
                    taken = _signed(test) < 0
                elif op is Opcode.BLE:
                    taken = _signed(test) <= 0
                elif op is Opcode.BGT:
                    taken = _signed(test) > 0
                elif op is Opcode.BGE:
                    taken = _signed(test) >= 0
                elif op in (Opcode.BR, Opcode.BSR):
                    taken = True
                    return_addr = (image.addresses[trigger_idx]
                                   + image.sizes[trigger_idx])
                    self.write_reg(instr.ra, return_addr)
                else:
                    raise ExecutionError(f"unhandled branch opcode {op}",
                                         pc=pc, index=idx, opcode=op)
                ctrl = CTRL_CALL if op is Opcode.BSR else (
                    CTRL_UNCOND if op is Opcode.BR else CTRL_COND
                )
                if taken:
                    target_idx, target_pc = self._branch_target(
                        instr, pc, idx, is_trigger
                    )

        elif fmt is Format.JUMP:
            target_value = self.read_reg(instr.rb)
            return_addr = (image.addresses[trigger_idx]
                           + image.sizes[trigger_idx])
            self.write_reg(instr.ra, return_addr)
            taken = True
            ctrl = CTRL_RET if op is Opcode.RET else (
                CTRL_CALL if op is Opcode.JSR else CTRL_INDIRECT
            )
            target_pc = target_value
            target_idx = image.index_of_addr.get(target_value)
            if target_idx is None:
                self.halted = True
                self.fault_code = FAULT_BAD_JUMP

        elif fmt is Format.NULLARY:
            if op is Opcode.HALT:
                self.halted = True
            # NOP: nothing.

        elif fmt is Format.CODEWORD:
            raise ExecutionError(f"codeword reached execution at {pc:#x}",
                                 pc=pc, index=idx, opcode=op)

        else:
            raise ExecutionError(f"unhandled format {fmt}",
                                 pc=pc, index=idx, opcode=op)

        self.instructions += 1
        if self.record_trace:
            if dataflow is None:
                dataflow = self._dataflow(instr)
            if ctrl is not None and taken and target_pc is None and \
                    target_idx is not None:
                target_pc = image.addresses[target_idx] \
                    if target_idx < len(image.addresses) else 0
            self._cols.append(
                pc, disepc, op.code, dataflow[2], dataflow[1], mem_addr,
                is_store, fetch_addr is not None, ctrl, taken,
                target_pc if taken else None, is_trigger, expansion_event,
            )
        return ctrl, taken, target_idx

    def _branch_target(self, instr, pc, idx, is_trigger):
        """Resolve a direct branch's target to (index, address)."""
        image = self.image
        if is_trigger and self._exp is None:
            target_idx = image.target_index[idx]
            if target_idx is None:
                raise ExecutionError(f"unresolved branch target at {pc:#x}",
                                     pc=pc, index=idx,
                                     opcode=instr.opcode)
            return target_idx, image.addresses[target_idx]
        if is_trigger and self._exp is not None:
            target_idx = image.target_index[idx]
            if target_idx is not None:
                return target_idx, image.addresses[target_idx]
        # Engine-generated branch: displacement is relative to trigger PC.
        target_pc = pc + 4 + instr.imm * 4
        target_idx = image.index_of_addr.get(target_pc)
        if target_idx is None:
            raise ExecutionError(
                f"replacement branch to non-text address {target_pc:#x}",
                pc=pc, index=idx, opcode=instr.opcode,
            )
        return target_idx, target_pc

    # ------------------------------------------------------------------
    def result(self) -> TraceResult:
        if self._tm_prev is not None:
            self._publish_telemetry()
        if self._profile is not None:
            _profile_mod.publish(self._profile)
        return TraceResult(
            columns=self._cols,
            outputs=list(self.outputs),
            fault_code=self.fault_code,
            halted=self.halted,
            instructions=self.instructions,
            app_instructions=self.app_instructions,
            expansions=self.expansions,
            final_regs=tuple(self.regs),
            final_memory=self.mem,
        )


def run_program(image: ProgramImage,
                controller: Optional[DiseController] = None,
                record_trace=True, max_steps=5_000_000,
                observer=None, dispatch: Optional[str] = None) -> TraceResult:
    """Convenience wrapper: build a machine, run to halt, return the trace."""
    machine = Machine(image, controller=controller, record_trace=record_trace,
                      observer=observer, dispatch=dispatch)
    return machine.run(max_steps=max_steps)
