"""Batched lockstep cohort execution: N machines stepped per superblock.

A :class:`BatchMachine` holds a cohort of scalar
:class:`~repro.sim.functional.Machine` lanes and advances them one
*compiled superblock* at a time.  Each translated superblock (the step
tuples from the image-wide ``_translation_store``, keyed by
``production_signature``) is lowered once into a straight-line Python
function via ``exec`` — registers, memory words, PT/RT probes, trace
records and observer hooks all inlined — and the compiled function is
shared by every lane running the same production set, so the cohort
amortises both translation and compilation while each lane keeps its own
architectural state.

Scheduler state (per-lane flags and retirement counts) is kept as
structure-of-arrays ``array('Q')`` columns mirroring ``sim/trace.py``;
register files deliberately stay in the per-lane ``Machine`` objects:
compiled superblocks mutate them in place, and masking a lane out to the
scalar tiers (translated -> fast -> generic) must be a zero-copy handoff
for the scalar simulator to remain the always-correct fallback.  NumPy,
when available, accelerates the occupancy summaries only — it is never
required and never touches architectural state.

Divergence handling: a lane whose control flow leaves the compiled
region, takes a fault, is mid-expansion, sits on a watchpoint site, or
is too close to its step budget / checkpoint boundary for a whole block
is *drained* on the scalar tiers in bounded quanta and re-admitted to
the batch tier when its PC re-converges on a compiled entry.  Compiled
functions retire a statically known instruction count per exit path and
are only entered when the remaining budget covers the worst case, so
``ExecutionTimeout`` and ``stop_at`` checkpoints land at exactly the
same retirement counts — with exactly the same machine state — as a
serial run.

Bodies containing DISE-internal branches (``dbr``/``dbeq``/``dbne``)
make the DISEPC data-dependent and are left to the scalar tiers; the
MFI productions that dominate cohort workloads never use them.

Gating follows the dispatch tier: an explicit ``batch=`` argument wins,
else ``REPRO_BATCH`` (``0``/``off`` disables, ``1``/``on`` selects the
default cohort width, an integer >= 2 selects that width), else off.
"""

from __future__ import annotations

import os
from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

try:  # optional acceleration for occupancy summaries only
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

from repro.errors import ExecutionError, ExecutionTimeout
from repro.isa.opcodes import Opcode
from repro.sim.functional import (
    FAULT_BAD_JUMP,
    ZERO,
    _B_CTRL,
    _B_DISE,
    _B_HALT,
    _B_MEM,
    _B_SIMPLE,
    _HOT_THRESHOLD,
    _T_BRANCH,
    _T_HALT,
    _T_JUMP,
    _T_MEM,
    _T_SIMPLE,
    _T_TRIG,
    _signed,
)
from repro.sim.memory import MASK64
from repro.sim.trace import META_EXP, META_TAKEN, META_TARGET
from repro.telemetry import events as _events
from repro.telemetry import profile as _profile_mod
from repro.telemetry import registry as _telemetry

#: Cohort width selected by ``REPRO_BATCH=1`` / ``batch=1`` ("on").
DEFAULT_COHORT = 8

#: Scalar steps per drain round for a diverged lane.
_DRAIN_QUANTUM = 64

#: Retirements per lane per batch round before the scheduler rotates.
_CHAIN_QUANTUM = 512

#: A block is lowered to Python only once this many lane-arrivals have
#: requested it.  ``exec``-compiling a block costs ~1000x one scalar
#: step, so one-off paths (a faulted lane wandering through cold code)
#: stay on the scalar tiers; anything a cohort shares — or a single lane
#: loops over — passes the gate almost immediately.
_COMPILE_THRESHOLD = 2

_UNSET = object()


def resolve_batch(batch: Optional[int] = None) -> int:
    """Resolve the cohort width: explicit argument > ``REPRO_BATCH`` > off.

    Returns 0 (disabled) or a width >= 2.  ``1`` (and the strings
    ``on``/``true``) mean "enabled at the default width".
    """
    if batch is None:
        raw = os.environ.get("REPRO_BATCH", "").strip().lower()
        if raw in ("", "0", "off", "false", "no"):
            return 0
        if raw in ("1", "on", "true", "yes"):
            return DEFAULT_COHORT
        try:
            batch = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_BATCH={raw!r} is not an integer or on/off"
            ) from None
    if batch <= 0:
        return 0
    if batch == 1:
        return DEFAULT_COHORT
    return batch


# ----------------------------------------------------------------------
# Superblock -> Python compilation
# ----------------------------------------------------------------------
#: Binary OPERATE opcodes lowered to a single masked expression.
_BINOPS = {
    Opcode.ADDQ: "+", Opcode.SUBQ: "-", Opcode.MULQ: "*",
    Opcode.AND: "&", Opcode.BIS: "|", Opcode.XOR: "^",
}

_COND_TMPL = {
    Opcode.BEQ: "t == 0", Opcode.BNE: "t != 0",
    Opcode.BLT: "t >> 63", Opcode.BGE: "not t >> 63",
    Opcode.BLE: "t == 0 or t >> 63",
    Opcode.BGT: "t != 0 and not t >> 63",
}
#: Branch outcome when the test register is the zero register.
_COND_ZERO = {
    Opcode.BEQ: True, Opcode.BNE: False, Opcode.BLT: False,
    Opcode.BGE: True, Opcode.BLE: True, Opcode.BGT: False,
}

_JUMPS = (Opcode.JMP, Opcode.JSR, Opcode.RET)
_DIRECT = (Opcode.BR, Opcode.BSR)


def _rv(reg: int) -> str:
    return "0" if reg == ZERO else f"r[{reg}]"


def _bv(instr) -> str:
    """Operand b: immediate form when ``rb`` is None (operate format)."""
    return repr(instr.imm) if instr.rb is None else _rv(instr.rb)


class _Codegen:
    """Accumulates source lines + namespace for one superblock function."""

    def __init__(self, machine, record: bool, observed: bool):
        self.m = machine
        self.record = record
        self.observed = observed
        self.lines: List[str] = []
        self.ns: Dict[str, object] = {"M": MASK64, "sg": _signed}
        self.retired = 0
        self.app = 0
        self.exps = 0
        self.indices = set()
        self.has_engine = machine.engine is not None
        self.need_mem = False
        self.need_out = False
        self.need_pt = False
        self.need_rt = False
        self.need_ioa = False
        self._mark = None

    # -- line plumbing -------------------------------------------------
    def emit(self, line: str, depth: int = 0):
        self.lines.append("    " * (depth + 1) + line)

    def const(self, prefix: str, value) -> str:
        name = f"{prefix}{len(self.ns)}"
        self.ns[name] = value
        return name

    def begin_step(self):
        self._mark = (len(self.lines), self.retired, self.app, self.exps,
                      set(self.indices), self.need_mem, self.need_out,
                      self.need_pt, self.need_rt, self.need_ioa)

    def abort_step(self):
        (n, self.retired, self.app, self.exps, self.indices, self.need_mem,
         self.need_out, self.need_pt, self.need_rt, self.need_ioa) = self._mark
        del self.lines[n:]

    # -- shared fragments ----------------------------------------------
    def emit_exit(self, depth: int):
        """Counter flush + return: every exit path retires a static count.

        Mirrors ``_exec_block``'s ``finally`` flush; nothing inside a
        compiled function observes the counters, so folding them into
        per-exit epilogues is unobservable.
        """
        self.emit(f"m.instructions += {self.retired}", depth)
        self.emit(f"m.app_instructions += {self.app}", depth)
        if self.has_engine:
            self.emit(f"e.inspected += {self.app}", depth)
        if self.exps:
            self.emit(f"m.expansions += {self.exps}", depth)
            self.emit(f"e.expansions += {self.exps}", depth)
        self.emit(f"return {self.retired}", depth)

    def emit_record(self, depth: int, pc: int, meta, mem="0", tgt="0",
                    srcs: int = 0, event: Optional[str] = None):
        if not self.record:
            return
        if event is not None:
            self.emit(f"cx[len(cp)] = {event}", depth)
        self.emit(f"cp.append({pc})", depth)
        self.emit(f"cm.append({meta})", depth)
        self.emit(f"ce.append({mem})", depth)
        self.emit(f"ct.append({tgt})", depth)
        self.emit(f"cs.append({srcs})", depth)

    def emit_observe(self, depth: int, iname: str, pc: int, disepc: int,
                     is_trigger: bool):
        if self.observed:
            self.emit(f"ob(m, {iname}, {pc}, {disepc}, {is_trigger})", depth)

    # -- straight-line opcode semantics (app steps and body elements) --
    def emit_alu(self, depth: int, instr, need_addr: bool):
        """Inline one SIMPLE/MEM opcode; returns (ok, mem_addr_expr)."""
        opcode = instr.opcode
        op = _BINOPS.get(opcode)
        if op is not None:
            if instr.rc != ZERO:
                a, b = _rv(instr.ra), _bv(instr)
                self.emit(f"r[{instr.rc}] = ({a} {op} {b}) & M", depth)
            return True, None
        if opcode is Opcode.SLL or opcode is Opcode.SRL \
                or opcode is Opcode.SRA:
            if instr.rc != ZERO:
                a, b = _rv(instr.ra), _bv(instr)
                if opcode is Opcode.SLL:
                    self.emit(
                        f"r[{instr.rc}] = ({a} << ({b} & 63)) & M", depth)
                elif opcode is Opcode.SRL:
                    self.emit(f"r[{instr.rc}] = {a} >> ({b} & 63)", depth)
                else:
                    self.emit(
                        f"r[{instr.rc}] = (sg({a}) >> ({b} & 63)) & M", depth)
            return True, None
        if opcode is Opcode.CMPEQ or opcode is Opcode.CMPULT:
            if instr.rc != ZERO:
                rel = "==" if opcode is Opcode.CMPEQ else "<"
                a, b = _rv(instr.ra), _bv(instr)
                self.emit(
                    f"r[{instr.rc}] = 1 if {a} {rel} {b} else 0", depth)
            return True, None
        if opcode is Opcode.CMPLT or opcode is Opcode.CMPLE:
            if instr.rc != ZERO:
                rel = "<" if opcode is Opcode.CMPLT else "<="
                a, b = _rv(instr.ra), _bv(instr)
                self.emit(
                    f"r[{instr.rc}] = 1 if sg({a}) {rel} sg({b}) else 0",
                    depth)
            return True, None
        if opcode is Opcode.CMOVEQ or opcode is Opcode.CMOVNE:
            # The not-moved arm re-writes regs[rc] & M — a no-op, since
            # the register file is always masked; elide it.
            if instr.rc != ZERO:
                rel = "==" if opcode is Opcode.CMOVEQ else "!="
                a, b = _rv(instr.ra), _bv(instr)
                self.emit(f"if {a} {rel} 0:", depth)
                self.emit(f"r[{instr.rc}] = ({b}) & M", depth + 1)
            return True, None
        if opcode is Opcode.LDA or opcode is Opcode.LDAH:
            if instr.ra != ZERO:
                base = _rv(instr.rb)
                imm = instr.imm if opcode is Opcode.LDA else instr.imm << 16
                self.emit(f"r[{instr.ra}] = ({base} + {imm}) & M", depth)
            return True, None
        if opcode is Opcode.LDQ or opcode is Opcode.LDL:
            self.need_mem = True
            base = _rv(instr.rb)
            if need_addr or instr.ra != ZERO:
                self.emit(f"ad = ({base} + {instr.imm}) & M", depth)
            if instr.ra != ZERO:
                if opcode is Opcode.LDQ:
                    self.emit(f"r[{instr.ra}] = mg(ad & -8, 0)", depth)
                else:
                    self.emit("w = mg(ad & -8, 0) & 0xFFFFFFFF", depth)
                    self.emit("if w & 0x80000000:", depth)
                    self.emit("w |= 0xFFFFFFFF00000000", depth + 1)
                    self.emit(f"r[{instr.ra}] = w", depth)
            return True, "ad"
        if opcode is Opcode.STQ or opcode is Opcode.STL:
            self.need_mem = True
            base = _rv(instr.rb)
            self.emit(f"ad = ({base} + {instr.imm}) & M", depth)
            value = _rv(instr.ra)
            if opcode is Opcode.STL:
                value = f"({value}) & 0xFFFFFFFF"
            self.emit(f"mw[ad & -8] = {value}", depth)
            return True, "ad"
        if opcode is Opcode.OUT:
            self.need_out = True
            self.emit(f"o.append({_rv(instr.ra)})", depth)
            return True, None
        if opcode is Opcode.NOP:
            return True, None
        return False, None

    def emit_halt(self, depth: int, instr):
        self.emit("m.halted = True", depth)
        if instr.opcode is Opcode.FAULT:
            code = instr.imm if instr.imm is not None else 0
            self.emit(f"m.fault_code = {code}", depth)


def _cond(instr):
    """Branch condition expr (after ``t = <test reg>``) or a constant."""
    if instr.ra == ZERO:
        return _COND_ZERO[instr.opcode]
    return _COND_TMPL[instr.opcode]


def _resolve_direct(image, idx, instr, in_expansion: bool):
    """Compile-time target of a direct branch at ``idx``.

    Mirrors ``Machine._branch_target``: app-level direct branches and
    trigger copies resolve through ``target_index`` (copies falling back
    to the engine-relative displacement); non-copy replacement branches
    always use the displacement.  Returns (target_idx, target_pc) or
    None when the serial path would raise (the block is truncated there
    so the scalar tiers raise the precise error).
    """
    if not in_expansion:
        ti = image.target_index[idx]
        if ti is None:
            return None
        return ti, image.addresses[ti]
    return None


def _resolve_body_direct(image, idx, pc, instr, is_copy: bool):
    if is_copy:
        ti = image.target_index[idx]
        if ti is not None:
            return ti, image.addresses[ti]
    target_pc = pc + 4 + instr.imm * 4
    ti = image.index_of_addr.get(target_pc)
    if ti is None:
        return None
    return ti, target_pc


def compile_block(machine, block, record: bool, observed: bool):
    """Lower one translated superblock to a Python function, or None.

    The function takes the machine and returns the retirement count; it
    reproduces ``Machine._exec_block`` bit-for-bit (counter ordering,
    trace records including the taken-DISE-branch target quirk, observer
    calls, precise ``idx``/expansion state at every exit) except that it
    contains no budget checks — callers must only enter it when the
    remaining budget covers ``fn.max_retire``.  Attributes:

    ``fn.max_retire``
        worst-case retirements of one call (static).
    ``fn.indices``
        frozenset of image indexes whose app-level sites execute inside
        — used to keep watchpoint lanes on the scalar tiers.
    """
    steps, exit_idx = block
    g = _Codegen(machine, record, observed)
    image = machine.image
    terminal = False
    truncated_at = None

    for st in steps:
        g.begin_step()
        if not _compile_step(g, st, image):
            g.abort_step()
            truncated_at = st[3]
            break
        if st[0] == _T_JUMP or st[0] == _T_HALT:
            terminal = True
    if not g.indices:
        return None
    if truncated_at is not None:
        g.emit(f"m.idx = {truncated_at}")
        g.emit_exit(0)
    elif not terminal:
        g.emit(f"m.idx = {exit_idx}")
        g.emit_exit(0)

    header = ["def _fn(m):", "    r = m.regs"]
    if g.need_mem:
        header.append("    mw = m.mem._words")
        header.append("    mg = mw.get")
    if g.need_out:
        header.append("    o = m.outputs")
    if g.has_engine:
        header.append("    e = m.engine")
    if g.need_pt:
        header.append("    pt = e.pt")
        ptn = len({index
                   for lst in machine.engine.pt._active_by_opcode.values()
                   for index in lst})
        # Warm fast path: with every active pattern resident and the PT
        # big enough to hold them all, access() can only hit — it bumps
        # the access counter and changes nothing else (no fills, no
        # evictions, so the LRU order is never consulted again).
        header.append(f"    ptf = {ptn} <= pt.entries and "
                      f"len(pt._resident) == {ptn}")
    if g.need_rt:
        header.append("    rt = e.rt")
        header.append("    rtp = rt.perfect")
    if g.need_ioa:
        g.ns["ioa"] = image.index_of_addr
    if record:
        header.append("    c = m._cols")
        header.append("    cp = c.pc")
        header.append("    cm = c.meta")
        header.append("    ce = c.mem")
        header.append("    ct = c.target")
        header.append("    cs = c.srcs")
        header.append("    cx = c.exp")
    if observed:
        header.append("    ob = m._observer.observe")

    src = "\n".join(header + g.lines) + "\n"
    code = compile(src, f"<batch:{steps[0][3]}>", "exec")
    exec(code, g.ns)
    fn = g.ns["_fn"]
    fn.max_retire = g.retired
    fn.indices = frozenset(g.indices)
    fn.src = src
    fn.entry_pc = steps[0][2]
    return fn


def _compile_step(g: _Codegen, st, image) -> bool:
    """Emit one app-level step; False -> truncate the block before it."""
    kind, instr, pc, idx, handler, meta, srcs, probe, trig = st
    opcode = instr.opcode
    if probe is not None:
        # Unmatched trigger opcode: the PT is still probed per instance.
        g.need_pt = True
        oc = g.const("O", probe)
        g.emit("if ptf:")
        g.emit("pt.accesses += 1", 1)
        g.emit(f"elif pt.access({oc}):")
        g.emit("m.pt_misses += 1", 1)
    g.app += 1
    g.indices.add(idx)

    if kind == _T_TRIG:
        return _compile_trig(g, st, image)

    if kind == _T_SIMPLE or kind == _T_MEM:
        ok, addr = g.emit_alu(0, instr, need_addr=(kind == _T_MEM
                                                   and g.record))
        if not ok:
            # No inline lowering: fall back to the pre-bound handler.
            # App-level handlers for SIMPLE/MEM opcodes read only the
            # register file and memory, so the call is safe mid-block.
            hn = g.const("H", handler)
            in_ = g.const("I", instr)
            g.emit(f"res = {hn}(m, {in_}, {pc}, {idx}, {idx}, True)")
            addr = "res[3]"
        g.retired += 1
        g.emit_record(0, pc, meta, mem=(addr or "0") if kind == _T_MEM
                      else "0", srcs=srcs)
        in_ = g.const("I", instr) if g.observed else None
        g.emit_observe(0, in_, pc, 0, True)
        return True

    if kind == _T_BRANCH:
        resolved = _resolve_direct(image, idx, instr, in_expansion=False)
        cond = _cond(instr)
        if resolved is None and cond is not False:
            return False     # taken path would raise: leave it scalar
        ti, tpc = resolved if resolved is not None else (None, None)
        g.retired += 1
        in_ = g.const("I", instr) if g.observed else None
        if cond is True or cond is False:
            taken = cond
            if taken:
                g.emit_record(0, pc, meta | META_TAKEN | META_TARGET,
                              tgt=tpc, srcs=srcs)
                g.emit_observe(0, in_, pc, 0, True)
                if ti != idx + 1:
                    g.emit(f"m.idx = {ti}")
                    g.emit_exit(0)
            else:
                g.emit_record(0, pc, meta, srcs=srcs)
                g.emit_observe(0, in_, pc, 0, True)
            return True
        if ti == idx + 1 and not g.record and not g.observed:
            # Taken and not-taken converge and nothing records the
            # outcome: the branch (side-effect free test) is a no-op.
            return True
        g.emit(f"t = r[{instr.ra}]")
        g.emit(f"if {cond}:")
        g.emit_record(1, pc, meta | META_TAKEN | META_TARGET, tgt=tpc,
                      srcs=srcs)
        g.emit_observe(1, in_, pc, 0, True)
        if ti != idx + 1:
            g.emit(f"m.idx = {ti}", 1)
            g.emit_exit(1)
            g.emit_record(0, pc, meta, srcs=srcs)
            g.emit_observe(0, in_, pc, 0, True)
        else:
            g.emit("else:")
            g.emit_record(1, pc, meta, srcs=srcs)
            g.emit_observe(1, in_, pc, 0, True)
            if not g.record and not g.observed:
                g.emit("pass", 1)
        return True

    if kind == _T_JUMP:
        reta = (image.addresses[idx] + image.sizes[idx]) & MASK64
        in_ = g.const("I", instr) if g.observed else None
        if opcode in _DIRECT:
            resolved = _resolve_direct(image, idx, instr, in_expansion=False)
            if resolved is None:
                return False
            ti, tpc = resolved
            if instr.ra != ZERO:
                g.emit(f"r[{instr.ra}] = {reta}")
            g.retired += 1
            g.emit_record(0, pc, meta, tgt=tpc, srcs=srcs)
            g.emit_observe(0, in_, pc, 0, True)
            g.emit(f"m.idx = {ti}")
            g.emit_exit(0)
            return True
        # jmp/jsr/ret: indirect through a register.
        g.need_ioa = True
        g.emit(f"tv = {_rv(instr.rb)}")
        if instr.ra != ZERO:
            g.emit(f"r[{instr.ra}] = {reta}")
        g.emit("ti = ioa.get(tv)")
        g.emit("if ti is None:")
        g.emit("m.halted = True", 1)
        g.emit(f"m.fault_code = {FAULT_BAD_JUMP}", 1)
        g.retired += 1
        g.emit_record(0, pc, meta, tgt="tv", srcs=srcs)
        g.emit_observe(0, in_, pc, 0, True)
        g.emit("if ti is None:")
        g.emit(f"m.idx = {idx}", 1)     # bad jump: idx stays at the jump
        g.emit_exit(1)
        g.emit("m.idx = ti")
        g.emit_exit(0)
        return True

    if kind == _T_HALT:
        g.emit_halt(0, instr)
        g.retired += 1
        g.emit_record(0, pc, meta, srcs=srcs)
        in_ = g.const("I", instr) if g.observed else None
        g.emit_observe(0, in_, pc, 0, True)
        g.emit(f"m.idx = {idx}")
        g.emit_exit(0)
        return True

    return False


def _compile_trig(g: _Codegen, st, image) -> bool:
    """Emit one trigger step with its fully inlined replacement body.

    Body elements must all be inlinable — replacement-body handlers may
    read ``m._exp``/``m._disepc``, which compiled functions only
    materialise at exit points, so there is no handler fallback here.
    """
    _, tinstr, pc, idx, _, _, _, _, payload = st
    opcode, seq_id, spec_len, exp, body = payload[:5]
    for belem in body:
        bkind, binstr = belem[0], belem[1]
        if bkind == _B_DISE:
            return False    # data-dependent DISEPC: scalar only
        if bkind == _B_SIMPLE or bkind == _B_MEM:
            if binstr.opcode not in _BINOPS and binstr.opcode not in (
                    Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.CMPEQ,
                    Opcode.CMPULT, Opcode.CMPLT, Opcode.CMPLE,
                    Opcode.CMOVEQ, Opcode.CMOVNE, Opcode.LDA, Opcode.LDAH,
                    Opcode.LDQ, Opcode.LDL, Opcode.STQ, Opcode.STL,
                    Opcode.OUT, Opcode.NOP):
                return False
        elif bkind == _B_CTRL:
            if binstr.opcode in _JUMPS:
                continue
            is_copy = belem[5]
            if _resolve_body_direct(image, idx, pc, binstr, is_copy) is None:
                return False
        elif bkind != _B_HALT:
            return False

    g.need_pt = True
    g.exps += 1
    oc = g.const("O", opcode)
    g.emit("if ptf:")
    g.emit("pt.accesses += 1", 1)
    if g.record:
        g.emit("pm = False", 1)
        g.emit("else:")
        g.emit(f"pm = pt.access({oc})", 1)
        g.emit("if pm:", 1)
        g.emit("m.pt_misses += 1", 2)
    else:
        g.emit(f"elif pt.access({oc}):")
        g.emit("m.pt_misses += 1", 1)
    g.need_rt = True
    g.emit("if rtp:")
    g.emit("rt.accesses += 1", 1)
    if g.record:
        g.emit("rm = False", 1)
        g.emit("else:")
        g.emit(f"rm = rt.access_sequence({seq_id}, {spec_len})", 1)
        g.emit("if rm:", 1)
        g.emit("m.rt_misses += 1", 2)
    else:
        g.emit(f"elif rt.access_sequence({seq_id}, {spec_len}):")
        g.emit("m.rt_misses += 1", 1)

    xn = g.const("X", exp)
    has_copy_ctrl = any(b[0] == _B_CTRL and b[5] for b in body)
    if has_copy_ctrl:
        g.emit("pnd = None")
    pending_expr = "pnd" if has_copy_ctrl else "None"
    event = (f"({seq_id}, {len(body)}, pm, rm, {exp.composed})"
             if g.record else None)

    def mid_exit(depth: int, disepc: int):
        """Fault/halt mid-sequence: expansion state stays live."""
        g.emit(f"m._exp = {xn}", depth)
        g.emit(f"m._disepc = {disepc}", depth)
        g.emit(f"m._pending = {pending_expr}", depth)
        g.emit(f"m.idx = {idx}", depth)
        g.emit_exit(depth)

    for j, belem in enumerate(body):
        bkind, binstr, bhandler, bmeta, bsrcs, is_copy = belem
        ev = event if j == 0 else None
        xmeta = bmeta | META_EXP if (g.record and j == 0) else bmeta
        bn = g.const("B", binstr) if g.observed else None
        g.retired += 1

        if bkind == _B_SIMPLE or bkind == _B_MEM:
            _, addr = g.emit_alu(0, binstr, need_addr=(bkind == _B_MEM
                                                       and g.record))
            g.emit_record(0, pc, xmeta, mem=(addr or "0") if bkind == _B_MEM
                          else "0", srcs=bsrcs, event=ev)
            g.emit_observe(0, bn, pc, j, is_copy)
            continue

        if bkind == _B_HALT:
            g.emit_halt(0, binstr)
            g.emit_record(0, pc, xmeta, srcs=bsrcs, event=ev)
            g.emit_observe(0, bn, pc, j, is_copy)
            mid_exit(0, j)
            return True     # everything after the halt is unreachable

        # _B_CTRL
        bop = binstr.opcode
        reta = (image.addresses[idx] + image.sizes[idx]) & MASK64
        if bop in _JUMPS:
            g.need_ioa = True
            g.emit(f"tv = {_rv(binstr.rb)}")
            if binstr.ra != ZERO:
                g.emit(f"r[{binstr.ra}] = {reta}")
            g.emit("ti = ioa.get(tv)")
            g.emit("if ti is None:")
            g.emit("m.halted = True", 1)
            g.emit(f"m.fault_code = {FAULT_BAD_JUMP}", 1)
            g.emit_record(0, pc, xmeta | META_TAKEN | META_TARGET,
                          tgt="tv", srcs=bsrcs, event=ev)
            g.emit_observe(0, bn, pc, j, is_copy)
            g.emit("if ti is None:")
            mid_exit(1, j)
            if is_copy:
                g.emit("pnd = ti")
            else:
                g.emit("m.idx = ti")    # squash: expansion state cleared
                g.emit_exit(0)
                return True
            continue

        ti, tpc = _resolve_body_direct(image, idx, pc, binstr, is_copy)
        if bop in _DIRECT:
            if binstr.ra != ZERO:
                g.emit(f"r[{binstr.ra}] = {reta}")
            g.emit_record(0, pc, xmeta | META_TAKEN | META_TARGET,
                          tgt=tpc, srcs=bsrcs, event=ev)
            g.emit_observe(0, bn, pc, j, is_copy)
            if is_copy:
                g.emit(f"pnd = {ti}")
            else:
                g.emit(f"m.idx = {ti}")
                g.emit_exit(0)
                return True
            continue

        # conditional branch in the body
        cond = _cond(binstr)
        if cond is True or cond is False:
            if cond:
                g.emit_record(0, pc, xmeta | META_TAKEN | META_TARGET,
                              tgt=tpc, srcs=bsrcs, event=ev)
                g.emit_observe(0, bn, pc, j, is_copy)
                if is_copy:
                    g.emit(f"pnd = {ti}")
                else:
                    g.emit(f"m.idx = {ti}")
                    g.emit_exit(0)
                    return True
            else:
                g.emit_record(0, pc, xmeta, srcs=bsrcs, event=ev)
                g.emit_observe(0, bn, pc, j, is_copy)
            continue
        g.emit(f"t = r[{binstr.ra}]")
        g.emit(f"if {cond}:")
        g.emit_record(1, pc, xmeta | META_TAKEN | META_TARGET, tgt=tpc,
                      srcs=bsrcs, event=ev)
        g.emit_observe(1, bn, pc, j, is_copy)
        if is_copy:
            g.emit(f"pnd = {ti}", 1)
            g.emit("else:")
            g.emit_record(1, pc, xmeta, srcs=bsrcs, event=ev)
            g.emit_observe(1, bn, pc, j, is_copy)
            if not g.record and not g.observed:
                g.emit("pass", 1)
        else:
            g.emit(f"m.idx = {ti}", 1)
            g.emit_exit(1)
            g.emit_record(0, pc, xmeta, srcs=bsrcs, event=ev)
            g.emit_observe(0, bn, pc, j, is_copy)

    # Fell through the whole body: apply any deferred trigger-branch
    # outcome; expansion state is cleared (never materialised).
    if has_copy_ctrl:
        g.emit(f"if pnd is not None and pnd != {idx + 1}:")
        g.emit("m.idx = pnd", 1)
        g.emit_exit(1)
    return True


# ----------------------------------------------------------------------
# Compiled-function store (image-wide, like the translation store)
# ----------------------------------------------------------------------
def _batch_store(image) -> Optional[dict]:
    store = getattr(image, "_batch_store", None)
    if store is None:
        try:
            store = image._batch_store = {}
        except AttributeError:
            return None
    return store


def _compiled_map(machine) -> Optional[Tuple[Dict[int, object],
                                             Dict[int, int]]]:
    """(entry idx -> compiled fn (or None), entry idx -> request count)
    for this machine's variant."""
    store = _batch_store(machine.image)
    if store is None:
        return None
    engine = machine.engine
    key = (engine.production_signature if engine is not None else None,
           machine.record_trace, machine._observer is not None)
    entry = store.get(key)
    if entry is None:
        entry = store[key] = ({}, {})
    return entry


# ----------------------------------------------------------------------
# Cohort scheduler
# ----------------------------------------------------------------------
class _Lane:
    __slots__ = ("machine", "max_steps", "start", "stop_at", "watch",
                 "fired", "visits", "status", "error", "mode", "fn",
                 "fns")

    def __init__(self, machine, max_steps, watch, stop_at):
        self.machine = machine
        self.max_steps = max_steps
        self.start = machine.instructions
        self.stop_at = stop_at
        self.watch = watch
        self.fired = watch is None
        self.visits = 0
        self.status: Optional[str] = None
        self.error: Optional[ExecutionError] = None
        self.mode: Optional[str] = None
        self.fn = None
        self.fns = _compiled_map(machine)

    def done(self) -> int:
        return self.machine.instructions - self.start


@dataclass
class LaneOutcome:
    """Terminal state of one lane after :meth:`BatchMachine.run`."""

    machine: object
    #: "halted" | "timeout" | "stopped" | "error" | "running"
    status: str
    #: Retirements executed under this BatchMachine.
    steps: int
    error: Optional[ExecutionError] = None

    def raise_or_result(self, max_steps: int):
        """Mirror ``Machine.run``: raise the scalar tiers' exceptions."""
        if self.status == "error":
            raise self.error
        if self.status == "timeout":
            raise ExecutionTimeout(
                f"program did not halt within {max_steps} dynamic "
                "instructions",
                steps=max_steps, index=self.machine.idx,
            )
        return self.machine.result()


class BatchMachine:
    """Steps a cohort of machines one compiled superblock at a time.

    Per-lane scheduler state lives in parallel ``array('Q')`` columns
    (mirroring the trace pipeline's SoA layout); architectural state
    stays in the lanes' ``Machine`` objects so mask/drain/re-admit is a
    zero-copy handoff to the scalar tiers.
    """

    def __init__(self):
        self.lanes: List[_Lane] = []
        # SoA scheduler columns: current index, retirements, flag bits
        # (1 = done, 2 = batch mode).
        self.col_idx = array("Q")
        self.col_retired = array("Q")
        self.col_flags = array("Q")
        self.stats = {
            "rounds": 0, "blocks": 0, "compiled_calls": 0,
            "compiled_retired": 0, "readmitted": 0, "drains": {},
        }
        self._tm = _telemetry.enabled()
        # Batch-lane hot-path profile: compiled-call retirements attributed
        # to the compiled block's entry PC (tier "batch").
        self._profile = (_profile_mod.new_profile("batch")
                         if _profile_mod.enabled() else None)

    def add_lane(self, machine, max_steps: int = 5_000_000,
                 watch: Optional[tuple] = None,
                 stop_at: Optional[int] = None) -> int:
        """Add one machine; returns its lane number.

        ``watch`` is ``(site_index, visit, mutator, reg)`` — the fault
        campaign's injection point: the mutator fires before the
        ``visit``-th app-level arrival at ``site_index``, counted
        exactly like the scalar driver.  ``stop_at`` pauses the lane at
        that retirement count ("stopped"; resumable by a later run).
        """
        lane = _Lane(machine, max_steps, watch, stop_at)
        self.lanes.append(lane)
        self.col_idx.append(machine.idx)
        self.col_retired.append(0)
        self.col_flags.append(0)
        return len(self.lanes) - 1

    # -- eligibility ----------------------------------------------------
    def _try_fn(self, lane: _Lane):
        """A compiled function runnable *now*, or (None, drain cause)."""
        m = lane.machine
        if m.halted:
            return None, "fault"
        if not m._translated:
            return None, "cold"
        if m._opcode_counts is not None:
            # Telemetry wants the per-instruction opcode and per-expansion
            # engine attribution that compiled superblocks don't record;
            # the scalar translated tier counts exactly.
            return None, "observer"
        if m._exp is not None:
            return None, "branch"
        engine = m.engine
        if engine is not None and engine.generation != m._blocks_gen:
            m._attach_translations()
            lane.fns = _compiled_map(m)
        idx = m.idx
        if not 0 <= idx < len(m._decode):
            return None, "branch"   # scalar step raises the precise error
        block = m._blocks.get(idx)
        if block is None:
            count = m._heat.get(idx, 0)
            if count < _HOT_THRESHOLD and not m._warm:
                return None, "cold"
            block = m._translate(idx)
            m._blocks[idx] = block
        if not block[0]:
            return None, "branch"
        if lane.fns is None:
            return None, "branch"
        fns, fheat = lane.fns
        fn = fns.get(idx, _UNSET)
        if fn is _UNSET:
            count = fheat.get(idx, 0) + 1
            if count < _COMPILE_THRESHOLD:
                fheat[idx] = count
                return None, "cold"
            fheat.pop(idx, None)
            fn = compile_block(m, block, m.record_trace,
                               m._observer is not None)
            fns[idx] = fn
            if fn is not None:
                self.stats["blocks"] += 1
        if fn is None:
            return None, "branch"
        if fn.max_retire > lane.max_steps - lane.done():
            return None, "timeout"
        if lane.stop_at is not None \
                and fn.max_retire > lane.stop_at - lane.done():
            return None, "checkpoint"
        if not lane.fired and lane.watch[0] in fn.indices:
            return None, "observer"
        return fn, None

    # -- lane completion ------------------------------------------------
    def _finished(self, lane: _Lane) -> bool:
        m = lane.machine
        if m.halted:
            lane.status = "halted"
            return True
        done = lane.done()
        if done >= lane.max_steps:
            lane.status = "timeout"
            return True
        if lane.stop_at is not None and done >= lane.stop_at:
            lane.status = "stopped"
            return True
        return False

    # -- execution ------------------------------------------------------
    def _run_compiled(self, lane: _Lane):
        m = lane.machine
        fn = lane.fn
        lane.fn = None
        n = 0
        calls = 0
        profile = self._profile
        pblocks = profile["block"] if profile is not None else None
        while True:
            r = fn(m)
            n += r
            calls += 1
            if pblocks is not None and r:
                entry = fn.entry_pc
                pblocks[entry] = pblocks.get(entry, 0) + r
            if n >= _CHAIN_QUANTUM or m.halted or m._exp is not None:
                break
            fn, _ = self._try_fn(lane)
            if fn is None:
                break
        self.stats["compiled_calls"] += calls
        self.stats["compiled_retired"] += n

    def _drain(self, lane: _Lane, quantum: int):
        """Bounded scalar stepping for a masked-out lane.

        Replicates the scalar drivers exactly: completion checks before
        the watchpoint check, the watchpoint check immediately before
        the step (once per retirement), and the translated tier's
        warmup-heat bump so cold entries become compilable the same way
        they become translatable serially.
        """
        m = lane.machine
        watch = lane.watch
        engine = m.engine
        fns = lane.fns[0] if lane.fns is not None else None
        for _ in range(quantum):
            if self._finished(lane):
                return
            if m._exp is None and fns is not None and m._translated \
                    and (engine is None
                         or engine.generation == m._blocks_gen):
                # Cheap re-admission probe: an already-compiled entry the
                # lane can afford.  Translation/compilation of *new*
                # entries happens at round granularity (_try_fn), not
                # per scalar step — here we only tally arrival heat.
                fn = fns.get(m.idx, _UNSET)
                if fn is _UNSET:
                    block = m._blocks.get(m.idx)
                    if block is None:
                        if 0 <= m.idx < len(m._decode):
                            count = m._heat.get(m.idx, 0)
                            if count < _HOT_THRESHOLD and not m._warm:
                                m._heat[m.idx] = count + 1
                    elif block[0]:
                        fheat = lane.fns[1]
                        fheat[m.idx] = fheat.get(m.idx, 0) + 1
                elif fn is not None \
                        and fn.max_retire <= lane.max_steps - lane.done() \
                        and (lane.stop_at is None
                             or fn.max_retire <= lane.stop_at - lane.done()) \
                        and (lane.fired or watch[0] not in fn.indices):
                    lane.fn = fn
                    return          # PC re-converged: re-admit
            if not lane.fired and m._exp is None and m.idx == watch[0]:
                lane.visits += 1
                if lane.visits == watch[1]:
                    watch[2](m, watch[3])
                    lane.fired = True
            try:
                m.step()
            except ExecutionError as exc:
                lane.status = "error"
                lane.error = exc
                return

    def run(self) -> "BatchMachine":
        """Drive every lane to halted/timeout/stopped/error."""
        tm = self._tm
        hist = _telemetry.histogram("sim.batch.lanes_active") if tm else None
        active = [lane for lane in self.lanes if lane.status is None]
        while active:
            self.stats["rounds"] += 1
            groups: Dict[tuple, List[_Lane]] = {}
            drains = []
            for lane in active:
                if self._finished(lane):
                    continue
                fn, cause = self._try_fn(lane)
                if fn is not None:
                    lane.fn = fn
                    key = (id(lane.machine.image), lane.machine.idx)
                    groups.setdefault(key, []).append(lane)
                else:
                    drains.append((lane, cause))
            for group in groups.values():
                if tm:
                    hist.observe(len(group))
                for lane in group:
                    if lane.mode == "scalar":
                        self.stats["readmitted"] += 1
                        if tm:
                            _telemetry.counter("sim.batch.readmitted").inc()
                    lane.mode = "batch"
                    self._run_compiled(lane)
            for lane, cause in drains:
                if lane.mode != "scalar":
                    lane.mode = "scalar"
                    d = self.stats["drains"]
                    d[cause] = d.get(cause, 0) + 1
                    if tm:
                        _telemetry.counter(f"sim.batch.drain.{cause}").inc()
                        _events.event("batch_drain", cause=cause,
                                      round=self.stats["rounds"])
                self._drain(lane, _DRAIN_QUANTUM)
            active = [lane for lane in active if lane.status is None]
            self._sync_columns()
        if self._profile is not None:
            _profile_mod.publish(self._profile)
        return self

    def _sync_columns(self):
        """Refresh the SoA scheduler columns from the lanes."""
        col_idx, col_ret, col_flags = (self.col_idx, self.col_retired,
                                       self.col_flags)
        for i, lane in enumerate(self.lanes):
            col_idx[i] = lane.machine.idx & MASK64
            col_ret[i] = lane.done()
            col_flags[i] = ((1 if lane.status is not None else 0)
                            | (2 if lane.mode == "batch" else 0))

    def occupancy(self) -> dict:
        """Cohort summary from the SoA columns (NumPy when available)."""
        if _np is not None:
            flags = _np.frombuffer(self.col_flags, dtype=_np.uint64)
            retired = _np.frombuffer(self.col_retired, dtype=_np.uint64)
            done = int((flags & 1).sum())
            total = int(retired.sum())
        else:
            done = sum(1 for f in self.col_flags if f & 1)
            total = sum(self.col_retired)
        return {"lanes": len(self.lanes), "done": done,
                "retired": total, "rounds": self.stats["rounds"]}

    def outcomes(self) -> List[LaneOutcome]:
        return [
            LaneOutcome(machine=lane.machine,
                        status=lane.status or "running",
                        steps=lane.done(), error=lane.error)
            for lane in self.lanes
        ]


def run_cohort(machines, max_steps: int = 5_000_000) -> List[LaneOutcome]:
    """Run a cohort of fresh machines to completion; one outcome each."""
    bm = BatchMachine()
    for machine in machines:
        bm.add_lane(machine, max_steps=max_steps)
    bm.run()
    return bm.outcomes()
