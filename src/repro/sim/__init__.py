"""Simulators: functional (architectural) and cycle-level (timing)."""

from repro.sim.branch import BranchPredictor, BranchPredictorConfig
from repro.sim.cache import Cache, CacheConfig, PerfectCache
from repro.sim.config import (
    KB,
    MB,
    MachineConfig,
    dl1_config,
    il1_config,
    l2_config,
)
from repro.sim.cycle import (
    CycleResult,
    CycleSimulator,
    resolve_cycle_engine,
    simulate_trace,
)
from repro.sim.functional import (
    ExecutionError,
    FAULT_BAD_JUMP,
    Machine,
    run_program,
)
from repro.sim.memory import MASK64, Memory
from repro.sim.multiproc import Process, Scheduler
from repro.sim.trace import Op, TraceResult

__all__ = [
    "BranchPredictor",
    "BranchPredictorConfig",
    "Cache",
    "CacheConfig",
    "PerfectCache",
    "KB",
    "MB",
    "MachineConfig",
    "dl1_config",
    "il1_config",
    "l2_config",
    "CycleResult",
    "CycleSimulator",
    "resolve_cycle_engine",
    "simulate_trace",
    "ExecutionError",
    "FAULT_BAD_JUMP",
    "Machine",
    "run_program",
    "MASK64",
    "Memory",
    "Process",
    "Scheduler",
    "Op",
    "TraceResult",
]
