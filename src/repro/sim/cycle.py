"""Calibrated superscalar timing model.

Replays a dynamic trace (from :mod:`repro.sim.functional`) under a
:class:`~repro.sim.config.MachineConfig`.  The model is a single in-order
pass with out-of-order issue semantics:

* **Fetch**: up to ``width`` instructions per cycle.  Application-level
  instructions access the I-cache (replacement instructions come from the
  RT and do not); misses stall fetch through the L2/memory hierarchy.
  Taken application branches end the fetch group.
* **DISE engine**: per the placement option (Section 4.1) — ``free`` adds
  nothing; ``stall`` adds one fetch bubble per expansion; ``pipe`` adds one
  cycle to every pipeline refill (the elongated decode pipe).  PT/RT misses
  flush the pipeline and stall for the controller's miss latency (30 cycles
  simple, 150 when the miss handler composes sequences).
* **Dispatch**: bounded by the reorder buffer (an instruction cannot
  dispatch until the instruction ``rob_entries`` older has retired) and by
  reservation-station occupancy.
* **Issue/execute**: an instruction starts when its source registers are
  ready; loads incur the D-cache/L2/memory latency of their access.
* **Control**: conditional branches use a gshare predictor; indirect jumps
  a BTB + return stack.  Mispredictions redirect fetch after the branch
  resolves plus the front-end refill.  Non-trigger replacement branches are
  never predicted (Section 2.2): if taken they pay a refill, and DISE
  internal branches behave the same way.
* **Retire**: in order, ``width`` per cycle; total cycles = last retire.

Absolute cycle counts are not calibrated against the authors' testbed; the
model's purpose is faithful *relative* behaviour across ACF implementations,
cache sizes, widths, and RT configurations.

Two replay engines implement the model, selected by ``REPRO_CYCLE`` (or
the ``engine=`` argument; same resolution order as ``REPRO_DISPATCH``):

* ``reference`` — the original scalar loop: every cache, predictor and RT
  access is a live method call per op.
* ``outcome`` (default) — a decoupled outcome-replay cycle: **Phase A**
  runs per-component passes (:func:`repro.sim.cache.replay_hierarchy`,
  :func:`repro.sim.branch.replay_control`,
  :func:`repro.core.tables.replay_rt`) that emit packed per-op outcome
  columns, each memoized on the trace keyed by *that component's*
  geometry — a Figure-7 RT sweep recomputes only the RT column, a
  placement/width sweep recomputes nothing; **Phase B** is a specialized
  timing kernel consuming only trace columns plus the outcome columns —
  no method calls, no dict membership tests — chunked over event-free
  spans, with NumPy column merges when available.  ``warm_start`` is
  subsumed by two-pass component replays (second-pass outcomes kept).

Every :class:`CycleResult` field, retire-observer callback and telemetry
counter is bit-identical between the engines (pinned by
``tests/test_cycle_engine.py`` and the ``functional_vs_cycle`` oracle,
which runs both).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import (
    PLACEMENT_PIPE,
    PLACEMENT_STALL,
)
from repro.core.tables import ReplacementTable, replay_rt
from repro.isa.opcodes import OPCODE_BY_CODE
from repro.sim.branch import ACT_END_GROUP, BranchPredictor, replay_control
from repro.sim.cache import Cache, PerfectCache, replay_hierarchy
from repro.sim.config import MachineConfig
from repro.telemetry import registry as _telemetry

try:  # NumPy accelerates the outcome engine's column merges when present.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None
from repro.sim.trace import (
    CC_CALL,
    CC_COND,
    CC_DISE,
    CC_INDIRECT,
    CC_RET,
    CTRL_SHIFT,
    DEST_SHIFT,
    DISEPC_SHIFT,
    META_FETCH,
    META_MEM,
    META_STORE,
    META_TAKEN,
    META_TARGET,
    META_TRIGGER,
    TraceResult,
)

NUM_REGS = 40

_CC_INDIRECT = (CC_INDIRECT, CC_RET, CC_CALL)

#: Opcode code -> execute latency, for the hot loop's packed-metadata path.
_LAT_BY_CODE = [0] * 256
for _code, _op in OPCODE_BY_CODE.items():
    _LAT_BY_CODE[_code] = _op.latency
del _code, _op


@dataclass
class CycleResult:
    """Timing-model outputs for one trace replay."""

    cycles: int
    instructions: int
    app_instructions: int
    il1_accesses: int
    il1_misses: int
    dl1_accesses: int
    dl1_misses: int
    l2_misses: int
    cond_branches: int
    mispredicts: int
    expansions: int
    expansion_stalls: int
    rt_miss_stalls: int
    pt_miss_stalls: int
    dise_redirects: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def il1_miss_rate(self) -> float:
        if not self.il1_accesses:
            return 0.0
        return self.il1_misses / self.il1_accesses


#: Warm-state snapshots kept per trace.  Each figure sweeps a handful of
#: cache/RT geometries per trace, so a small bound keeps memory flat while
#: covering every sweep in the harness.
_WARM_MEMO_LIMIT = 8


def _snap_cache(cache):
    if isinstance(cache, PerfectCache):
        return None
    return [entry_set.copy() for entry_set in cache._sets]


def _restore_cache(snap, cache):
    if snap is not None:
        cache._sets = [entry_set.copy() for entry_set in snap]


def _snapshot_warm(il1, dl1, l2, predictor, rt):
    return (
        _snap_cache(il1), _snap_cache(dl1), _snap_cache(l2),
        bytes(predictor._counters), predictor._history,
        dict(predictor._btb), tuple(predictor._ras),
        {index: entry_set.copy() for index, entry_set in rt._sets.items()},
    )


def _restore_warm(snap, il1, dl1, l2, predictor, rt):
    il1_snap, dl1_snap, l2_snap, counters, history, btb, ras, rt_sets = snap
    _restore_cache(il1_snap, il1)
    _restore_cache(dl1_snap, dl1)
    _restore_cache(l2_snap, l2)
    predictor._counters = bytearray(counters)
    predictor._history = history
    predictor._btb = dict(btb)
    predictor._ras = list(ras)
    rt._sets = {index: entry_set.copy() for index, entry_set in rt_sets.items()}


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------
_ENGINES = ("outcome", "reference")


def resolve_cycle_engine(engine: Optional[str] = None) -> str:
    """Resolve the replay engine: explicit argument > ``REPRO_CYCLE`` >
    the default (``outcome``) — the same resolution order as
    ``REPRO_DISPATCH`` and ``REPRO_BATCH``."""
    if engine is None:
        engine = os.environ.get("REPRO_CYCLE") or "outcome"
    if engine not in _ENGINES:
        raise ValueError(
            f"unknown cycle engine {engine!r}: expected 'outcome' or "
            "'reference'"
        )
    return engine


# ----------------------------------------------------------------------
# Outcome engine: component memos and static columns
# ----------------------------------------------------------------------
#: Outcome columns kept per trace (true LRU, hits refresh recency).  One
#: figure sweeps a handful of geometries per component; the bound covers
#: every component x geometry x warm combination a sweep interleaves.
_OUTCOME_MEMO_LIMIT = 24

#: Opcode-code -> latency lookup as a NumPy array (outcome engine merges).
_LAT_NP = _np.array(_LAT_BY_CODE, dtype=_np.int64) if _np is not None else None


def _note_memo(component: str, hit: bool):
    if _telemetry.enabled():
        kind = "hits" if hit else "misses"
        _telemetry.counter(f"cycle.outcome.{component}.{kind}").inc()


def _outcome_memo(trace, key, n_ops, component, build):
    """Bounded per-trace LRU over component outcome columns.

    Entries are keyed by (component, geometry, warm) and carry the column
    length they were computed over, so a live trace whose columns grew
    since the memo was taken recomputes instead of replaying stale
    outcomes.  Memos are transient accelerator state: they live only on
    the in-memory :class:`TraceResult` and never survive serialization.
    """
    memos = trace._outcome_memos
    if memos is None:
        memos = {}
        trace._outcome_memos = memos
    entry = memos.get(key)
    if entry is not None and entry[0] == n_ops:
        memos[key] = memos.pop(key)  # LRU: a hit refreshes recency
        _note_memo(component, True)
        return entry[1]
    _note_memo(component, False)
    value = build()
    if len(memos) >= _OUTCOME_MEMO_LIMIT:
        memos.pop(next(iter(memos)))
    memos[key] = (n_ops, value)
    return value


def _cache_geometry(cache_config):
    """Outcome-determining identity of one cache level (None = perfect).
    Latencies are deliberately excluded: they shift timing, not hits."""
    if cache_config is None:
        return None
    return (cache_config.size_bytes, cache_config.assoc,
            cache_config.line_bytes)


#: Ready-array layout for the timing kernel: indices 0..NUM_REGS-1 are the
#: architectural registers, NUM_REGS is a write-only discard slot for
#: destination-less ops, and _SRC_NONE is a read-only always-zero slot for
#: absent source operands — both make the kernel's register traffic
#: unconditional.
_DEST_NONE = NUM_REGS
_SRC_NONE = NUM_REGS + 1


class _StaticCols:
    """Config-independent per-op columns derived from the trace once."""

    __slots__ = ("lat", "lat_list", "dest", "src1", "src2", "src3",
                 "exp_list", "rt_events", "pt_miss_count")

    def __init__(self, lat, lat_list, dest, src1, src2, src3, exp_list,
                 rt_events, pt_miss_count):
        #: Base execute latency per op — NumPy int64 array when NumPy is
        #: available (merge path), else the plain list.
        self.lat = lat
        self.lat_list = lat_list
        #: Destination ready-slot index per op (_DEST_NONE when none).
        self.dest = dest
        #: Source ready-slot indices per op (_SRC_NONE when absent).
        self.src1 = src1
        self.src2 = src2
        self.src3 = src3
        #: Expansion events in program order:
        #: (op_index, seq_id, length, pt_miss, composed).
        self.exp_list = exp_list
        #: (seq_id, length) stream for :func:`repro.core.tables.replay_rt`.
        self.rt_events = rt_events
        self.pt_miss_count = pt_miss_count


def _static_columns(trace, n_ops) -> _StaticCols:
    """Materialise (and cache on the trace) the derived static columns."""
    cached = trace._static_cols
    if cached is not None and cached[0] == n_ops:
        return cached[1]
    cols = trace.columns
    meta_col = cols.meta
    if _np is not None and n_ops:
        meta_np = _np.frombuffer(meta_col, dtype=_np.uint64)
        lat = _LAT_NP[(meta_np & 0xFF).astype(_np.intp)]
        lat_list = lat.tolist()
        dest_np = ((meta_np >> DEST_SHIFT) & 0xFF).astype(_np.int64)
        dest = _np.where(dest_np == 0, _DEST_NONE, dest_np - 1).tolist()
        srcs_np = _np.frombuffer(cols.srcs, dtype=_np.uint64)
        src_cols = []
        for shift in (0, 6, 12):
            field = ((srcs_np >> shift) & 63).astype(_np.int64)
            src_cols.append(
                _np.where(field == 0, _SRC_NONE, field - 1).tolist()
            )
        src1, src2, src3 = src_cols
    else:
        lat_by_code = _LAT_BY_CODE
        lat_list = [lat_by_code[meta & 0xFF] for meta in meta_col]
        lat = lat_list
        dest = [0] * len(meta_col)
        for i, meta in enumerate(meta_col):
            d = (meta >> DEST_SHIFT) & 0xFF
            dest[i] = d - 1 if d else _DEST_NONE
        src1 = [_SRC_NONE] * n_ops
        src2 = [_SRC_NONE] * n_ops
        src3 = [_SRC_NONE] * n_ops
        for i, packed in enumerate(cols.srcs):
            f = packed & 63
            if f:
                src1[i] = f - 1
            f = (packed >> 6) & 63
            if f:
                src2[i] = f - 1
            f = (packed >> 12) & 63
            if f:
                src3[i] = f - 1
    exp_list = tuple(
        (i, event[0], event[1], event[2], event[4])
        for i, event in sorted(cols.exp.items())
    )
    rt_events = tuple((seq_id, length) for _, seq_id, length, _, _ in exp_list)
    pt_miss_count = sum(1 for item in exp_list if item[3])
    static = _StaticCols(lat, lat_list, dest, src1, src2, src3, exp_list,
                         rt_events, pt_miss_count)
    trace._static_cols = (n_ops, static)
    return static


class _MergedCols:
    """One configuration's merged replay inputs (memoized per trace).

    Penalties, expansion stalls and control actions folded into three
    flat per-op columns plus the sorted event-index list — everything the
    Phase-B kernel reads.  ``counters`` carries the component statistic
    totals the :class:`CycleResult` reports, so a merged-memo hit skips
    Phase A entirely.
    """

    __slots__ = ("bubbles", "lat", "actions", "events", "counters")

    def __init__(self, bubbles, lat, actions, events, counters):
        self.bubbles = bubbles
        self.lat = lat
        self.actions = actions
        self.events = events
        self.counters = counters


def _publish_cycle_telemetry(result: "CycleResult"):
    """Publish replay counters (both engines, after the replay finishes,
    so the hot loops themselves are untouched)."""
    if not _telemetry.enabled():
        return
    _telemetry.counter("cycle.replays").inc()
    for name, value in (
        ("cycle.cycles", result.cycles),
        ("cycle.instructions", result.instructions),
        ("cycle.il1.accesses", result.il1_accesses),
        ("cycle.il1.misses", result.il1_misses),
        ("cycle.dl1.accesses", result.dl1_accesses),
        ("cycle.dl1.misses", result.dl1_misses),
        ("cycle.l2.misses", result.l2_misses),
        ("cycle.cond_branches", result.cond_branches),
        ("cycle.mispredicts", result.mispredicts),
        ("cycle.expansions", result.expansions),
        ("cycle.stall.expansion", result.expansion_stalls),
        ("cycle.stall.rt_miss", result.rt_miss_stalls),
        ("cycle.stall.pt_miss", result.pt_miss_stalls),
        ("cycle.stall.dise_redirect", result.dise_redirects),
    ):
        if value:
            _telemetry.counter(name).inc(value)


class CycleSimulator:
    """Replays a trace; see the module docstring for the model."""

    def __init__(self, config: Optional[MachineConfig] = None,
                 engine: Optional[str] = None):
        self.config = config or MachineConfig()
        self.engine = resolve_cycle_engine(engine)

    def _warm_signature(self):
        """Everything the warm pass can observe.  Configs differing only in
        placement, width, or window sizes share warmed state."""
        config = self.config
        dise = config.dise
        return (
            repr(config.il1), repr(config.dl1), repr(config.l2),
            repr(config.predictor),
            dise.rt_entries, dise.rt_assoc, dise.rt_perfect,
            dise.rt_block_size,
            config.predict_replacement_branches,
        )

    def _warm(self, trace, il1, dl1, l2, predictor, rt):
        """Replay the trace through the caches, predictor and RT without
        timing.  The warmed state is memoized on the trace per geometry
        signature, so config sweeps (placements, widths, windows) restore
        it by copy instead of re-running the whole pass."""
        signature = self._warm_signature()
        states = trace._warm_states
        if states is None:
            states = trace._warm_states = {}
        snap = states.get(signature)
        if snap is not None:
            # True LRU: a hit refreshes recency, so interleaved sweeps that
            # revisit geometries keep their hot entries instead of evicting
            # them in insertion (FIFO) order.
            states[signature] = states.pop(signature)
            _restore_warm(snap, il1, dl1, l2, predictor, rt)
            return

        il1_access = il1.access
        dl1_access = dl1.access
        l2_access = l2.access
        rt_access = rt.access_sequence
        predict_cond = predictor.predict_and_update
        predict_target = predictor.predict_indirect
        predict_replacement = self.config.predict_replacement_branches
        cols = trace.columns
        pc_col = cols.pc
        meta_col = cols.meta
        mem_col = cols.mem
        tgt_col = cols.target
        exp_map = cols.exp
        for i in range(len(pc_col)):
            meta = meta_col[i]
            pc = pc_col[i]
            if meta & META_FETCH and not il1_access(pc):
                l2_access(pc)
            if i in exp_map:
                event = exp_map[i]
                rt_access(event[0], event[1])
            if meta & META_MEM:
                mem_addr = mem_col[i]
                if meta & META_STORE:
                    dl1_access(mem_addr)
                elif not dl1_access(mem_addr):
                    l2_access(mem_addr)
            cc = (meta >> CTRL_SHIFT) & 0xF
            if not cc:
                continue
            taken = bool(meta & META_TAKEN)
            is_trigger = meta & META_TRIGGER
            if cc == CC_COND:
                if is_trigger:
                    predict_cond(pc, taken)
                elif predict_replacement:
                    predict_cond(
                        pc ^ ((meta >> DISEPC_SHIFT) << 4), taken
                    )
            elif cc in _CC_INDIRECT and is_trigger and meta & META_TARGET:
                predict_target(
                    pc, tgt_col[i],
                    is_return=cc == CC_RET, is_call=cc == CC_CALL,
                    return_addr=pc + 4,
                )
            elif not is_trigger and predict_replacement and taken and \
                    cc != CC_DISE:
                predict_target(
                    pc ^ ((meta >> DISEPC_SHIFT) << 4), tgt_col[i]
                )
        # Reset statistics so the measured pass reports its own counts.
        il1.accesses = il1.misses = 0
        dl1.accesses = dl1.misses = 0
        l2.accesses = l2.misses = 0
        rt.accesses = rt.misses = rt.fills = 0
        predictor.cond_lookups = predictor.cond_mispredicts = 0
        predictor.target_lookups = predictor.target_mispredicts = 0

        if len(states) >= _WARM_MEMO_LIMIT:
            states.pop(next(iter(states)))
        states[signature] = _snapshot_warm(il1, dl1, l2, predictor, rt)

    def simulate(self, trace: TraceResult, warm_start=False,
                 retire_observer=None) -> CycleResult:
        """Replay ``trace``.

        ``warm_start=True`` first replays the trace through the caches,
        predictor and RT without timing, then measures the second pass —
        steady-state behaviour, as in the paper's complete-run numbers
        (our synthetic runs are short enough that cold misses would
        otherwise dominate).  The outcome engine subsumes this with
        two-pass component replays that keep second-pass outcomes.

        ``retire_observer``, when given, is called as ``observer(op,
        retire_time)`` for every op in retirement order *after* the replay
        loop finishes — the ``functional_vs_cycle`` conformance oracle
        hangs off this, and like the telemetry block it costs the hot loop
        nothing.

        Both engines return bit-identical :class:`CycleResult` values,
        observer callbacks and telemetry counters.
        """
        if self.engine == "reference":
            return self._simulate_reference(trace, warm_start,
                                            retire_observer)
        return self._simulate_outcome(trace, warm_start, retire_observer)

    def _simulate_reference(self, trace: TraceResult, warm_start=False,
                            retire_observer=None) -> CycleResult:
        """The original scalar loop: live cache/predictor/RT method calls
        per op.  Kept as the semantics-defining engine the outcome engine
        is pinned against."""
        config = self.config
        cols = trace.columns
        pc_col = cols.pc
        meta_col = cols.meta
        mem_col = cols.mem
        tgt_col = cols.target
        srcs_col = cols.srcs
        exp_map = cols.exp
        n_ops = len(pc_col)
        lat_by_code = _LAT_BY_CODE

        il1 = Cache(config.il1) if config.il1 is not None else PerfectCache()
        dl1 = Cache(config.dl1) if config.dl1 is not None else PerfectCache()
        l2 = Cache(config.l2) if config.l2 is not None else PerfectCache()
        predictor = BranchPredictor(config.predictor)
        # The RT is modelled here, not in the functional pass, so one trace
        # can be replayed under many RT configurations (Figure 7 bottom,
        # Figure 8 bottom).
        rt = ReplacementTable(
            entries=config.dise.rt_entries,
            assoc=config.dise.rt_assoc,
            perfect=config.dise.rt_perfect,
            block_size=config.dise.rt_block_size,
        )

        # Bound-method locals: the replay loops below touch these millions
        # of times, and LOAD_FAST beats the attribute chain.
        il1_access = il1.access
        dl1_access = dl1.access
        l2_access = l2.access
        rt_access = rt.access_sequence
        predict_cond = predictor.predict_and_update
        predict_target = predictor.predict_indirect

        if warm_start:
            self._warm(trace, il1, dl1, l2, predictor, rt)

        width = config.width
        rob_entries = config.rob_entries
        rs_entries = config.rs_entries
        mem_latency = config.mem_latency
        l2_latency = config.l2.hit_latency if config.l2 is not None else 0

        placement = config.dise.placement
        stall_per_expansion = 1 if placement == PLACEMENT_STALL else 0
        refill = config.mispredict_penalty + (
            1 if placement == PLACEMENT_PIPE else 0
        )
        simple_miss = config.dise.simple_miss_cycles
        compose_miss = config.dise.compose_miss_cycles
        predict_replacement = config.predict_replacement_branches

        ready = [0] * NUM_REGS
        retire_times: List[int] = []
        start_times: List[int] = []
        retire_append = retire_times.append
        start_append = start_times.append
        last_retire = 0
        fetch_cycle = 1
        slots_used = 0

        expansions = 0
        expansion_stalls = 0
        rt_miss_stalls = 0
        pt_miss_stalls = 0
        dise_redirects = 0
        mispredicts = 0
        cond_branches = 0
        l2_misses = 0

        for i in range(n_ops):
            meta = meta_col[i]
            pc = pc_col[i]
            # ----------------------------------------------------- fetch
            if meta & META_FETCH:
                if not il1_access(pc):
                    if l2_access(pc):
                        fetch_cycle += l2_latency
                    else:
                        l2_misses += 1
                        fetch_cycle += l2_latency + mem_latency
                    slots_used = 0

            if i in exp_map:
                expansions += 1
                seq_id, length, pt_miss, _, composed = exp_map[i]
                if stall_per_expansion:
                    fetch_cycle += stall_per_expansion
                    expansion_stalls += 1
                    slots_used = 0
                if pt_miss:
                    fetch_cycle += simple_miss + refill
                    pt_miss_stalls += 1
                    slots_used = 0
                if rt_access(seq_id, length):
                    fetch_cycle += (compose_miss if composed else simple_miss)
                    fetch_cycle += refill
                    rt_miss_stalls += 1
                    slots_used = 0

            if slots_used >= width:
                fetch_cycle += 1
                slots_used = 0
            slots_used += 1

            # -------------------------------------------------- dispatch
            dispatch = fetch_cycle
            if i >= rob_entries:
                blocked = retire_times[i - rob_entries]
                if blocked > dispatch:
                    dispatch = blocked
            if i >= rs_entries:
                blocked = start_times[i - rs_entries]
                if blocked > dispatch:
                    dispatch = blocked

            # ---------------------------------------------- issue/execute
            start = dispatch + 1
            packed_srcs = srcs_col[i]
            while packed_srcs:
                t = ready[(packed_srcs & 63) - 1]
                if t > start:
                    start = t
                packed_srcs >>= 6

            latency = lat_by_code[meta & 0xFF]
            if meta & META_MEM:
                mem_addr = mem_col[i]
                if meta & META_STORE:
                    dl1_access(mem_addr)  # stores retire via the store buffer
                else:
                    if not dl1_access(mem_addr):
                        if l2_access(mem_addr):
                            latency += l2_latency
                        else:
                            l2_misses += 1
                            latency += l2_latency + mem_latency
            complete = start + latency

            dest_field = (meta >> DEST_SHIFT) & 0xFF
            if dest_field:
                ready[dest_field - 1] = complete

            # ----------------------------------------------------- control
            cc = (meta >> CTRL_SHIFT) & 0xF
            if cc:
                taken = bool(meta & META_TAKEN)
                if cc == CC_DISE:
                    # Never predicted; a taken DISE branch redirects fetch.
                    if taken:
                        dise_redirects += 1
                        redirect = complete + refill
                        if redirect > fetch_cycle:
                            fetch_cycle = redirect
                            slots_used = 0
                elif not meta & META_TRIGGER:
                    if predict_replacement and cc == CC_COND:
                        # Enhanced design: the predictor learns replacement
                        # branches, indexed by the PC:DISEPC pair.
                        cond_branches += 1
                        if predict_cond(
                            pc ^ ((meta >> DISEPC_SHIFT) << 4), taken
                        ):
                            mispredicts += 1
                            redirect = complete + refill
                            if redirect > fetch_cycle:
                                fetch_cycle = redirect
                                slots_used = 0
                        elif taken:
                            slots_used = width
                    elif predict_replacement and taken:
                        # Unconditional/indirect replacement transfer: the
                        # BTB learns the codeword's PC:DISEPC.
                        if predict_target(
                            pc ^ ((meta >> DISEPC_SHIFT) << 4), tgt_col[i]
                        ):
                            mispredicts += 1
                            redirect = complete + refill
                            if redirect > fetch_cycle:
                                fetch_cycle = redirect
                                slots_used = 0
                        else:
                            slots_used = width
                    elif taken:
                        # Paper's design: prediction suppressed, effectively
                        # predicted not-taken.
                        mispredicts += 1
                        redirect = complete + refill
                        if redirect > fetch_cycle:
                            fetch_cycle = redirect
                            slots_used = 0
                elif cc == CC_COND:
                    cond_branches += 1
                    if predict_cond(pc, taken):
                        mispredicts += 1
                        redirect = complete + refill
                        if redirect > fetch_cycle:
                            fetch_cycle = redirect
                            slots_used = 0
                    elif taken:
                        slots_used = width  # taken branch ends the group
                elif cc in _CC_INDIRECT:
                    if meta & META_TARGET:
                        if predict_target(
                            pc, tgt_col[i],
                            is_return=cc == CC_RET, is_call=cc == CC_CALL,
                            return_addr=pc + 4,
                        ):
                            mispredicts += 1
                            redirect = complete + refill
                            if redirect > fetch_cycle:
                                fetch_cycle = redirect
                                slots_used = 0
                        else:
                            slots_used = width
                    else:
                        slots_used = width

            # ------------------------------------------------------ retire
            retire = complete + 1
            if retire < last_retire:
                retire = last_retire
            if i >= width:
                floor = retire_times[i - width] + 1
                if retire < floor:
                    retire = floor
            retire_append(retire)
            start_append(start)
            last_retire = retire

        cycles = last_retire if n_ops else 0
        result = CycleResult(
            cycles=cycles,
            instructions=n_ops,
            app_instructions=trace.app_instructions,
            il1_accesses=il1.accesses,
            il1_misses=il1.misses,
            dl1_accesses=dl1.accesses,
            dl1_misses=dl1.misses,
            l2_misses=l2_misses,
            cond_branches=cond_branches,
            mispredicts=mispredicts,
            expansions=expansions,
            expansion_stalls=expansion_stalls,
            rt_miss_stalls=rt_miss_stalls,
            pt_miss_stalls=pt_miss_stalls,
            dise_redirects=dise_redirects,
        )
        # Published after the replay loop, so the hot loop itself is
        # untouched (the ≤2% disabled-overhead budget covers setup only).
        _publish_cycle_telemetry(result)
        if retire_observer is not None:
            # Post-loop, like telemetry: the conformance oracle sees the
            # retired-op sequence with its timestamps, zero hot-loop cost.
            # Ops are materialised here only — the replay loop above never
            # builds per-op objects.
            for op, when in zip(trace.ops, retire_times):
                retire_observer(op, when)
        return result

    # ------------------------------------------------------------------
    # Outcome engine
    # ------------------------------------------------------------------
    def _merge_columns(self, trace, static, n_ops, mem_key, ctrl_key, rt_key,
                       pen, stall_per_expansion, refill, simple_miss,
                       compose_miss, warm_start) -> _MergedCols:
        """Phase A + merge: recall (or compute) the per-component outcome
        columns, then fold config penalties into the kernel's flat inputs.

        The result is itself memoized (the ``merged`` component): configs
        differing only in width/window re-enter the kernel directly."""
        config = self.config
        cols = trace.columns
        passes = 2 if warm_start else 1
        dise = config.dise
        hier = _outcome_memo(
            trace, mem_key, n_ops, "mem",
            lambda: replay_hierarchy(cols, config.il1, config.dl1, config.l2,
                                     passes=passes),
        )
        ctrl = _outcome_memo(
            trace, ctrl_key, n_ops, "ctrl",
            lambda: replay_control(cols, config.predictor,
                                   config.predict_replacement_branches,
                                   passes=passes),
        )
        rt_flags = _outcome_memo(
            trace, rt_key, n_ops, "rt",
            lambda: replay_rt(static.rt_events, entries=dise.rt_entries,
                              assoc=dise.rt_assoc, perfect=dise.rt_perfect,
                              block_size=dise.rt_block_size, passes=passes),
        )

        actions = ctrl.actions
        if _np is not None and n_ops:
            codes_np = _np.frombuffer(hier.codes, dtype=_np.uint8)
            actions_np = _np.frombuffer(actions, dtype=_np.uint8)
            pen_np = _np.array(pen, dtype=_np.int64)
            fetch_codes = codes_np & 3
            lat_list = (static.lat + pen_np[(codes_np >> 2) & 3]).tolist()
            bubbles = _np.where(
                fetch_codes != 0, (pen_np[fetch_codes] << 1) | 1, 0
            ).tolist()
            event_idx = _np.flatnonzero(
                (fetch_codes != 0) | (actions_np != 0)
            ).tolist()
        else:
            codes = hier.codes
            base_lat = static.lat_list
            lat_list = [0] * n_ops
            bubbles = [0] * n_ops
            event_idx = []
            event_append = event_idx.append
            for i in range(n_ops):
                code = codes[i]
                lat_list[i] = base_lat[i] + pen[(code >> 2) & 3]
                fc = code & 3
                if fc:
                    bubbles[i] = (pen[fc] << 1) | 1
                    event_append(i)
                elif actions[i]:
                    event_append(i)

        # Expansion stalls fold into the bubble column.  ``fired`` (not
        # ``add``) decides the fetch-group reset: the reference engine
        # zeroes the slot counter whenever a stall source fires, even if
        # its configured penalty is zero.
        expansion_stalls = 0
        rt_miss_stalls = 0
        exp_events = []
        for j, (i, _seq_id, _length, pt_miss, composed) in enumerate(
                static.exp_list):
            add = 0
            fired = False
            if stall_per_expansion:
                add += stall_per_expansion
                expansion_stalls += 1
                fired = True
            if pt_miss:
                add += simple_miss + refill
                fired = True
            if rt_flags[j]:
                add += (compose_miss if composed else simple_miss) + refill
                rt_miss_stalls += 1
                fired = True
            if fired:
                bubbles[i] = (((bubbles[i] >> 1) + add) << 1) | 1
                exp_events.append(i)
        if exp_events:
            event_idx = sorted(set(event_idx).union(exp_events))
        return _MergedCols(
            bubbles, lat_list, actions, tuple(event_idx),
            (hier.il1_accesses, hier.il1_misses, hier.dl1_accesses,
             hier.dl1_misses, hier.l2_misses, ctrl.cond_branches,
             ctrl.mispredicts, ctrl.dise_redirects, expansion_stalls,
             rt_miss_stalls),
        )

    def _simulate_outcome(self, trace: TraceResult, warm_start=False,
                          retire_observer=None) -> CycleResult:
        """Decoupled outcome-replay cycle.

        **Phase A** runs (or recalls from the per-trace memo) one outcome
        pass per component — {IL1, DL1, L2} hierarchy, branch predictor,
        physical RT — each keyed by *that component's* geometry alone.
        The columns hold outcome *codes*, not penalties, so they are also
        shared across latency changes; penalties are applied at merge time
        from the active config.  ``warm_start`` runs each component pass
        twice, keeping second-pass outcomes.

        **Phase B** merges the outcome columns into per-op ``bubbles``
        (front-end stall cycles, low bit = "reset the fetch group") and
        effective latencies — NumPy-vectorised when available — then runs
        a specialized timing kernel chunked over event-free spans: the
        span body touches only plain lists and ints (no method calls, no
        dict membership tests); bubble/action handling is confined to the
        event indices.
        """
        config = self.config
        cols = trace.columns
        n_ops = len(cols.pc)
        static = _static_columns(trace, n_ops)
        dise = config.dise

        width = config.width
        rob_entries = config.rob_entries
        rs_entries = config.rs_entries
        l2_latency = config.l2.hit_latency if config.l2 is not None else 0
        pen = (0, l2_latency, l2_latency + config.mem_latency, 0)
        placement = dise.placement
        stall_per_expansion = 1 if placement == PLACEMENT_STALL else 0
        refill = config.mispredict_penalty + (
            1 if placement == PLACEMENT_PIPE else 0
        )
        simple_miss = dise.simple_miss_cycles
        compose_miss = dise.compose_miss_cycles

        pred = config.predictor
        predict_replacement = config.predict_replacement_branches
        mem_key = ("mem", _cache_geometry(config.il1),
                   _cache_geometry(config.dl1), _cache_geometry(config.l2),
                   warm_start)
        ctrl_key = ("ctrl", pred.gshare_bits, pred.btb_entries,
                    pred.ras_entries, predict_replacement, warm_start)
        rt_key = ("rt", dise.rt_entries, dise.rt_assoc, dise.rt_perfect,
                  dise.rt_block_size, warm_start)

        merged = _outcome_memo(
            trace,
            ("merged", mem_key, ctrl_key, rt_key, pen, stall_per_expansion,
             refill, simple_miss, compose_miss),
            n_ops, "merged",
            lambda: self._merge_columns(
                trace, static, n_ops, mem_key, ctrl_key, rt_key, pen,
                stall_per_expansion, refill, simple_miss, compose_miss,
                warm_start,
            ),
        )
        bubbles = merged.bubbles
        lat_list = merged.lat
        actions = merged.actions
        expansions = len(static.exp_list)
        (il1_accesses, il1_misses, dl1_accesses, dl1_misses, l2_misses,
         cond_branches, mispredicts, dise_redirects, expansion_stalls,
         rt_miss_stalls) = merged.counters

        # ------------------------------------------------- timing kernel
        # Time arrays are prepadded with zeros so the ROB/RS window reads
        # and the retire-width floor never need an ``i >= window`` bounds
        # branch: below the window the padding zero is read, and a zero
        # lower bound never binds (dispatch >= 1, retire >= 3).
        src1 = static.src1
        src2 = static.src2
        src3 = static.src3
        dest = static.dest
        # _DEST_NONE discards destination-less writes; _SRC_NONE stays zero
        # so absent-operand reads never bind.
        ready = [0] * (NUM_REGS + 2)
        pad = rob_entries if rob_entries > width else width
        if rs_entries > pad:
            pad = rs_entries
        times = [0] * (pad + n_ops)       # retire times, written at i + pad
        starts = [0] * (pad + n_ops)      # start times, written at i + pad
        rob_base = pad - rob_entries      # window read: times[i + rob_base]
        rs_base = pad - rs_entries        # window read: starts[i + rs_base]
        floor_base = pad - width          # floor read: times[i + floor_base]
        last_retire = 0
        fetch_cycle = 1
        slots_used = 0

        pos = 0
        event_idx = list(merged.events)
        event_idx.append(n_ops)  # sentinel: final event-free span
        for ev in event_idx:
            # Event-free span [pos, ev): no front-end bubbles, no control
            # actions — just slots, windows, operands, and retire order.
            for i in range(pos, ev):
                if slots_used >= width:
                    fetch_cycle += 1
                    slots_used = 0
                slots_used += 1

                dispatch = fetch_cycle
                blocked = times[i + rob_base]
                if blocked > dispatch:
                    dispatch = blocked
                blocked = starts[i + rs_base]
                if blocked > dispatch:
                    dispatch = blocked

                start = dispatch + 1
                t = ready[src1[i]]
                if t > start:
                    start = t
                t = ready[src2[i]]
                if t > start:
                    start = t
                t = ready[src3[i]]
                if t > start:
                    start = t
                complete = start + lat_list[i]
                ready[dest[i]] = complete

                retire = complete + 1
                if retire < last_retire:
                    retire = last_retire
                floor = times[i + floor_base] + 1
                if retire < floor:
                    retire = floor
                times[i + pad] = retire
                starts[i + pad] = start
                last_retire = retire
            if ev == n_ops:
                break

            # Event op: front-end bubble and/or control action.
            i = ev
            bubble = bubbles[i]
            if bubble:
                fetch_cycle += bubble >> 1
                slots_used = 0
            if slots_used >= width:
                fetch_cycle += 1
                slots_used = 0
            slots_used += 1

            dispatch = fetch_cycle
            blocked = times[i + rob_base]
            if blocked > dispatch:
                dispatch = blocked
            blocked = starts[i + rs_base]
            if blocked > dispatch:
                dispatch = blocked

            start = dispatch + 1
            t = ready[src1[i]]
            if t > start:
                start = t
            t = ready[src2[i]]
            if t > start:
                start = t
            t = ready[src3[i]]
            if t > start:
                start = t
            complete = start + lat_list[i]
            ready[dest[i]] = complete

            act = actions[i]
            if act:
                if act == ACT_END_GROUP:
                    slots_used = width  # taken transfer ends the group
                else:  # mispredict or DISE redirect
                    redirect = complete + refill
                    if redirect > fetch_cycle:
                        fetch_cycle = redirect
                        slots_used = 0

            retire = complete + 1
            if retire < last_retire:
                retire = last_retire
            floor = times[i + floor_base] + 1
            if retire < floor:
                retire = floor
            times[i + pad] = retire
            starts[i + pad] = start
            last_retire = retire
            pos = ev + 1

        result = CycleResult(
            cycles=last_retire if n_ops else 0,
            instructions=n_ops,
            app_instructions=trace.app_instructions,
            il1_accesses=il1_accesses,
            il1_misses=il1_misses,
            dl1_accesses=dl1_accesses,
            dl1_misses=dl1_misses,
            l2_misses=l2_misses,
            cond_branches=cond_branches,
            mispredicts=mispredicts,
            expansions=expansions,
            expansion_stalls=expansion_stalls,
            rt_miss_stalls=rt_miss_stalls,
            pt_miss_stalls=static.pt_miss_count,
            dise_redirects=dise_redirects,
        )
        _publish_cycle_telemetry(result)
        if retire_observer is not None:
            for op, when in zip(trace.ops, times[pad:]):
                retire_observer(op, when)
        return result


def simulate_trace(trace: TraceResult,
                   config: Optional[MachineConfig] = None,
                   warm_start=False, retire_observer=None,
                   engine: Optional[str] = None) -> CycleResult:
    """Convenience wrapper around :class:`CycleSimulator`."""
    return CycleSimulator(config, engine=engine).simulate(
        trace, warm_start=warm_start, retire_observer=retire_observer)
