"""Calibrated superscalar timing model.

Replays a dynamic trace (from :mod:`repro.sim.functional`) under a
:class:`~repro.sim.config.MachineConfig`.  The model is a single in-order
pass with out-of-order issue semantics:

* **Fetch**: up to ``width`` instructions per cycle.  Application-level
  instructions access the I-cache (replacement instructions come from the
  RT and do not); misses stall fetch through the L2/memory hierarchy.
  Taken application branches end the fetch group.
* **DISE engine**: per the placement option (Section 4.1) — ``free`` adds
  nothing; ``stall`` adds one fetch bubble per expansion; ``pipe`` adds one
  cycle to every pipeline refill (the elongated decode pipe).  PT/RT misses
  flush the pipeline and stall for the controller's miss latency (30 cycles
  simple, 150 when the miss handler composes sequences).
* **Dispatch**: bounded by the reorder buffer (an instruction cannot
  dispatch until the instruction ``rob_entries`` older has retired) and by
  reservation-station occupancy.
* **Issue/execute**: an instruction starts when its source registers are
  ready; loads incur the D-cache/L2/memory latency of their access.
* **Control**: conditional branches use a gshare predictor; indirect jumps
  a BTB + return stack.  Mispredictions redirect fetch after the branch
  resolves plus the front-end refill.  Non-trigger replacement branches are
  never predicted (Section 2.2): if taken they pay a refill, and DISE
  internal branches behave the same way.
* **Retire**: in order, ``width`` per cycle; total cycles = last retire.

Absolute cycle counts are not calibrated against the authors' testbed; the
model's purpose is faithful *relative* behaviour across ACF implementations,
cache sizes, widths, and RT configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import (
    PLACEMENT_PIPE,
    PLACEMENT_STALL,
)
from repro.core.tables import ReplacementTable
from repro.isa.opcodes import OPCODE_BY_CODE
from repro.sim.branch import BranchPredictor
from repro.sim.cache import Cache, PerfectCache
from repro.sim.config import MachineConfig
from repro.telemetry import registry as _telemetry
from repro.sim.trace import (
    CC_CALL,
    CC_COND,
    CC_DISE,
    CC_INDIRECT,
    CC_RET,
    CTRL_SHIFT,
    DEST_SHIFT,
    DISEPC_SHIFT,
    META_FETCH,
    META_MEM,
    META_STORE,
    META_TAKEN,
    META_TARGET,
    META_TRIGGER,
    TraceResult,
)

NUM_REGS = 40

_CC_INDIRECT = (CC_INDIRECT, CC_RET, CC_CALL)

#: Opcode code -> execute latency, for the hot loop's packed-metadata path.
_LAT_BY_CODE = [0] * 256
for _code, _op in OPCODE_BY_CODE.items():
    _LAT_BY_CODE[_code] = _op.latency
del _code, _op


@dataclass
class CycleResult:
    """Timing-model outputs for one trace replay."""

    cycles: int
    instructions: int
    app_instructions: int
    il1_accesses: int
    il1_misses: int
    dl1_accesses: int
    dl1_misses: int
    l2_misses: int
    cond_branches: int
    mispredicts: int
    expansions: int
    expansion_stalls: int
    rt_miss_stalls: int
    pt_miss_stalls: int
    dise_redirects: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def il1_miss_rate(self) -> float:
        if not self.il1_accesses:
            return 0.0
        return self.il1_misses / self.il1_accesses


#: Warm-state snapshots kept per trace.  Each figure sweeps a handful of
#: cache/RT geometries per trace, so a small bound keeps memory flat while
#: covering every sweep in the harness.
_WARM_MEMO_LIMIT = 8


def _snap_cache(cache):
    if isinstance(cache, PerfectCache):
        return None
    return [entry_set.copy() for entry_set in cache._sets]


def _restore_cache(snap, cache):
    if snap is not None:
        cache._sets = [entry_set.copy() for entry_set in snap]


def _snapshot_warm(il1, dl1, l2, predictor, rt):
    return (
        _snap_cache(il1), _snap_cache(dl1), _snap_cache(l2),
        bytes(predictor._counters), predictor._history,
        dict(predictor._btb), tuple(predictor._ras),
        {index: entry_set.copy() for index, entry_set in rt._sets.items()},
    )


def _restore_warm(snap, il1, dl1, l2, predictor, rt):
    il1_snap, dl1_snap, l2_snap, counters, history, btb, ras, rt_sets = snap
    _restore_cache(il1_snap, il1)
    _restore_cache(dl1_snap, dl1)
    _restore_cache(l2_snap, l2)
    predictor._counters = bytearray(counters)
    predictor._history = history
    predictor._btb = dict(btb)
    predictor._ras = list(ras)
    rt._sets = {index: entry_set.copy() for index, entry_set in rt_sets.items()}


class CycleSimulator:
    """Replays a trace; see the module docstring for the model."""

    def __init__(self, config: Optional[MachineConfig] = None):
        self.config = config or MachineConfig()

    def _warm_signature(self):
        """Everything the warm pass can observe.  Configs differing only in
        placement, width, or window sizes share warmed state."""
        config = self.config
        dise = config.dise
        return (
            repr(config.il1), repr(config.dl1), repr(config.l2),
            repr(config.predictor),
            dise.rt_entries, dise.rt_assoc, dise.rt_perfect,
            dise.rt_block_size,
            config.predict_replacement_branches,
        )

    def _warm(self, trace, il1, dl1, l2, predictor, rt):
        """Replay the trace through the caches, predictor and RT without
        timing.  The warmed state is memoized on the trace per geometry
        signature, so config sweeps (placements, widths, windows) restore
        it by copy instead of re-running the whole pass."""
        signature = self._warm_signature()
        states = trace._warm_states
        if states is None:
            states = trace._warm_states = {}
        snap = states.get(signature)
        if snap is not None:
            _restore_warm(snap, il1, dl1, l2, predictor, rt)
            return

        il1_access = il1.access
        dl1_access = dl1.access
        l2_access = l2.access
        rt_access = rt.access_sequence
        predict_cond = predictor.predict_and_update
        predict_target = predictor.predict_indirect
        predict_replacement = self.config.predict_replacement_branches
        cols = trace.columns
        pc_col = cols.pc
        meta_col = cols.meta
        mem_col = cols.mem
        tgt_col = cols.target
        exp_map = cols.exp
        for i in range(len(pc_col)):
            meta = meta_col[i]
            pc = pc_col[i]
            if meta & META_FETCH and not il1_access(pc):
                l2_access(pc)
            if i in exp_map:
                event = exp_map[i]
                rt_access(event[0], event[1])
            if meta & META_MEM:
                mem_addr = mem_col[i]
                if meta & META_STORE:
                    dl1_access(mem_addr)
                elif not dl1_access(mem_addr):
                    l2_access(mem_addr)
            cc = (meta >> CTRL_SHIFT) & 0xF
            if not cc:
                continue
            taken = bool(meta & META_TAKEN)
            is_trigger = meta & META_TRIGGER
            if cc == CC_COND:
                if is_trigger:
                    predict_cond(pc, taken)
                elif predict_replacement:
                    predict_cond(
                        pc ^ ((meta >> DISEPC_SHIFT) << 4), taken
                    )
            elif cc in _CC_INDIRECT and is_trigger and meta & META_TARGET:
                predict_target(
                    pc, tgt_col[i],
                    is_return=cc == CC_RET, is_call=cc == CC_CALL,
                    return_addr=pc + 4,
                )
            elif not is_trigger and predict_replacement and taken and \
                    cc != CC_DISE:
                predict_target(
                    pc ^ ((meta >> DISEPC_SHIFT) << 4), tgt_col[i]
                )
        # Reset statistics so the measured pass reports its own counts.
        il1.accesses = il1.misses = 0
        dl1.accesses = dl1.misses = 0
        l2.accesses = l2.misses = 0
        rt.accesses = rt.misses = rt.fills = 0
        predictor.cond_lookups = predictor.cond_mispredicts = 0
        predictor.target_lookups = predictor.target_mispredicts = 0

        if len(states) >= _WARM_MEMO_LIMIT:
            states.pop(next(iter(states)))
        states[signature] = _snapshot_warm(il1, dl1, l2, predictor, rt)

    def simulate(self, trace: TraceResult, warm_start=False,
                 retire_observer=None) -> CycleResult:
        """Replay ``trace``.

        ``warm_start=True`` first replays the trace through the caches,
        predictor and RT without timing, then measures the second pass —
        steady-state behaviour, as in the paper's complete-run numbers
        (our synthetic runs are short enough that cold misses would
        otherwise dominate).

        ``retire_observer``, when given, is called as ``observer(op,
        retire_time)`` for every op in retirement order *after* the replay
        loop finishes — the ``functional_vs_cycle`` conformance oracle
        hangs off this, and like the telemetry block it costs the hot loop
        nothing.
        """
        config = self.config
        cols = trace.columns
        pc_col = cols.pc
        meta_col = cols.meta
        mem_col = cols.mem
        tgt_col = cols.target
        srcs_col = cols.srcs
        exp_map = cols.exp
        n_ops = len(pc_col)
        lat_by_code = _LAT_BY_CODE

        il1 = Cache(config.il1) if config.il1 is not None else PerfectCache()
        dl1 = Cache(config.dl1) if config.dl1 is not None else PerfectCache()
        l2 = Cache(config.l2) if config.l2 is not None else PerfectCache()
        predictor = BranchPredictor(config.predictor)
        # The RT is modelled here, not in the functional pass, so one trace
        # can be replayed under many RT configurations (Figure 7 bottom,
        # Figure 8 bottom).
        rt = ReplacementTable(
            entries=config.dise.rt_entries,
            assoc=config.dise.rt_assoc,
            perfect=config.dise.rt_perfect,
            block_size=config.dise.rt_block_size,
        )

        # Bound-method locals: the replay loops below touch these millions
        # of times, and LOAD_FAST beats the attribute chain.
        il1_access = il1.access
        dl1_access = dl1.access
        l2_access = l2.access
        rt_access = rt.access_sequence
        predict_cond = predictor.predict_and_update
        predict_target = predictor.predict_indirect

        if warm_start:
            self._warm(trace, il1, dl1, l2, predictor, rt)

        width = config.width
        rob_entries = config.rob_entries
        rs_entries = config.rs_entries
        mem_latency = config.mem_latency
        l2_latency = config.l2.hit_latency if config.l2 is not None else 0

        placement = config.dise.placement
        stall_per_expansion = 1 if placement == PLACEMENT_STALL else 0
        refill = config.mispredict_penalty + (
            1 if placement == PLACEMENT_PIPE else 0
        )
        simple_miss = config.dise.simple_miss_cycles
        compose_miss = config.dise.compose_miss_cycles
        predict_replacement = config.predict_replacement_branches

        ready = [0] * NUM_REGS
        retire_times: List[int] = []
        start_times: List[int] = []
        retire_append = retire_times.append
        start_append = start_times.append
        last_retire = 0
        fetch_cycle = 1
        slots_used = 0

        expansions = 0
        expansion_stalls = 0
        rt_miss_stalls = 0
        pt_miss_stalls = 0
        dise_redirects = 0
        mispredicts = 0
        cond_branches = 0
        l2_misses = 0

        for i in range(n_ops):
            meta = meta_col[i]
            pc = pc_col[i]
            # ----------------------------------------------------- fetch
            if meta & META_FETCH:
                if not il1_access(pc):
                    if l2_access(pc):
                        fetch_cycle += l2_latency
                    else:
                        l2_misses += 1
                        fetch_cycle += l2_latency + mem_latency
                    slots_used = 0

            if i in exp_map:
                expansions += 1
                seq_id, length, pt_miss, _, composed = exp_map[i]
                if stall_per_expansion:
                    fetch_cycle += stall_per_expansion
                    expansion_stalls += 1
                    slots_used = 0
                if pt_miss:
                    fetch_cycle += simple_miss + refill
                    pt_miss_stalls += 1
                    slots_used = 0
                if rt_access(seq_id, length):
                    fetch_cycle += (compose_miss if composed else simple_miss)
                    fetch_cycle += refill
                    rt_miss_stalls += 1
                    slots_used = 0

            if slots_used >= width:
                fetch_cycle += 1
                slots_used = 0
            slots_used += 1

            # -------------------------------------------------- dispatch
            dispatch = fetch_cycle
            if i >= rob_entries:
                blocked = retire_times[i - rob_entries]
                if blocked > dispatch:
                    dispatch = blocked
            if i >= rs_entries:
                blocked = start_times[i - rs_entries]
                if blocked > dispatch:
                    dispatch = blocked

            # ---------------------------------------------- issue/execute
            start = dispatch + 1
            packed_srcs = srcs_col[i]
            while packed_srcs:
                t = ready[(packed_srcs & 63) - 1]
                if t > start:
                    start = t
                packed_srcs >>= 6

            latency = lat_by_code[meta & 0xFF]
            if meta & META_MEM:
                mem_addr = mem_col[i]
                if meta & META_STORE:
                    dl1_access(mem_addr)  # stores retire via the store buffer
                else:
                    if not dl1_access(mem_addr):
                        if l2_access(mem_addr):
                            latency += l2_latency
                        else:
                            l2_misses += 1
                            latency += l2_latency + mem_latency
            complete = start + latency

            dest_field = (meta >> DEST_SHIFT) & 0xFF
            if dest_field:
                ready[dest_field - 1] = complete

            # ----------------------------------------------------- control
            cc = (meta >> CTRL_SHIFT) & 0xF
            if cc:
                taken = bool(meta & META_TAKEN)
                if cc == CC_DISE:
                    # Never predicted; a taken DISE branch redirects fetch.
                    if taken:
                        dise_redirects += 1
                        redirect = complete + refill
                        if redirect > fetch_cycle:
                            fetch_cycle = redirect
                            slots_used = 0
                elif not meta & META_TRIGGER:
                    if predict_replacement and cc == CC_COND:
                        # Enhanced design: the predictor learns replacement
                        # branches, indexed by the PC:DISEPC pair.
                        cond_branches += 1
                        if predict_cond(
                            pc ^ ((meta >> DISEPC_SHIFT) << 4), taken
                        ):
                            mispredicts += 1
                            redirect = complete + refill
                            if redirect > fetch_cycle:
                                fetch_cycle = redirect
                                slots_used = 0
                        elif taken:
                            slots_used = width
                    elif predict_replacement and taken:
                        # Unconditional/indirect replacement transfer: the
                        # BTB learns the codeword's PC:DISEPC.
                        if predict_target(
                            pc ^ ((meta >> DISEPC_SHIFT) << 4), tgt_col[i]
                        ):
                            mispredicts += 1
                            redirect = complete + refill
                            if redirect > fetch_cycle:
                                fetch_cycle = redirect
                                slots_used = 0
                        else:
                            slots_used = width
                    elif taken:
                        # Paper's design: prediction suppressed, effectively
                        # predicted not-taken.
                        mispredicts += 1
                        redirect = complete + refill
                        if redirect > fetch_cycle:
                            fetch_cycle = redirect
                            slots_used = 0
                elif cc == CC_COND:
                    cond_branches += 1
                    if predict_cond(pc, taken):
                        mispredicts += 1
                        redirect = complete + refill
                        if redirect > fetch_cycle:
                            fetch_cycle = redirect
                            slots_used = 0
                    elif taken:
                        slots_used = width  # taken branch ends the group
                elif cc in _CC_INDIRECT:
                    if meta & META_TARGET:
                        if predict_target(
                            pc, tgt_col[i],
                            is_return=cc == CC_RET, is_call=cc == CC_CALL,
                            return_addr=pc + 4,
                        ):
                            mispredicts += 1
                            redirect = complete + refill
                            if redirect > fetch_cycle:
                                fetch_cycle = redirect
                                slots_used = 0
                        else:
                            slots_used = width
                    else:
                        slots_used = width

            # ------------------------------------------------------ retire
            retire = complete + 1
            if retire < last_retire:
                retire = last_retire
            if i >= width:
                floor = retire_times[i - width] + 1
                if retire < floor:
                    retire = floor
            retire_append(retire)
            start_append(start)
            last_retire = retire

        cycles = last_retire if n_ops else 0
        if _telemetry.enabled():
            # Published after the replay loop, so the hot loop itself is
            # untouched (the ≤2% disabled-overhead budget covers setup only).
            _telemetry.counter("cycle.replays").inc()
            for name, value in (
                ("cycle.cycles", cycles),
                ("cycle.instructions", n_ops),
                ("cycle.il1.accesses", il1.accesses),
                ("cycle.il1.misses", il1.misses),
                ("cycle.dl1.accesses", dl1.accesses),
                ("cycle.dl1.misses", dl1.misses),
                ("cycle.l2.misses", l2_misses),
                ("cycle.cond_branches", cond_branches),
                ("cycle.mispredicts", mispredicts),
                ("cycle.expansions", expansions),
                ("cycle.stall.expansion", expansion_stalls),
                ("cycle.stall.rt_miss", rt_miss_stalls),
                ("cycle.stall.pt_miss", pt_miss_stalls),
                ("cycle.stall.dise_redirect", dise_redirects),
            ):
                if value:
                    _telemetry.counter(name).inc(value)
        if retire_observer is not None:
            # Post-loop, like telemetry: the conformance oracle sees the
            # retired-op sequence with its timestamps, zero hot-loop cost.
            # Ops are materialised here only — the replay loop above never
            # builds per-op objects.
            for op, when in zip(trace.ops, retire_times):
                retire_observer(op, when)
        return CycleResult(
            cycles=cycles,
            instructions=n_ops,
            app_instructions=trace.app_instructions,
            il1_accesses=il1.accesses,
            il1_misses=il1.misses,
            dl1_accesses=dl1.accesses,
            dl1_misses=dl1.misses,
            l2_misses=l2_misses,
            cond_branches=cond_branches,
            mispredicts=mispredicts,
            expansions=expansions,
            expansion_stalls=expansion_stalls,
            rt_miss_stalls=rt_miss_stalls,
            pt_miss_stalls=pt_miss_stalls,
            dise_redirects=dise_redirects,
        )


def simulate_trace(trace: TraceResult,
                   config: Optional[MachineConfig] = None,
                   warm_start=False, retire_observer=None) -> CycleResult:
    """Convenience wrapper around :class:`CycleSimulator`."""
    return CycleSimulator(config).simulate(trace, warm_start=warm_start,
                                           retire_observer=retire_observer)
