"""Multiprogramming over one DISE-enabled core — the Section 2.3 OS story.

The OS kernel virtualizes the resident production set: user-scope
production sets act only on their owning process and are deactivated when
it is switched out; kernel-approved sets persist across switches.  Per-
process DISE state — the dedicated registers and the interrupted PC:DISEPC
pair — is saved and restored by the kernel; the PT/RT contents themselves
are demand-loaded and need no saving.

:class:`Scheduler` round-robins several :class:`~repro.sim.functional.Machine`
processes over one shared :class:`~repro.core.controller.DiseController`
(one core), performing exactly those steps at each quantum boundary.
Because machines carry their own architectural registers, the model copies
each process's dedicated-register window through the controller's
save/restore API — the same data movement a real context switch performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ExecutionTimeout
from repro.core.controller import DiseController, DiseSavedState
from repro.core.production import ProductionSet
from repro.core.registers import DiseRegisterFile
from repro.isa.registers import DISE_REG_BASE, NUM_DISE_REGS
from repro.program.image import ProgramImage
from repro.sim.functional import Machine


@dataclass
class Process:
    """One schedulable program with its private DISE state."""

    pid: int
    machine: Machine
    saved_state: Optional[DiseSavedState] = None
    steps: int = 0

    @property
    def halted(self) -> bool:
        return self.machine.halted


class Scheduler:
    """Round-robin scheduler over a shared DISE controller."""

    def __init__(self, controller: Optional[DiseController] = None):
        self.controller = controller or DiseController()
        self.processes: List[Process] = []
        self._next_pid = 1
        self.switches = 0

    # ------------------------------------------------------------------
    def spawn(self, image: ProgramImage,
              production_sets: Optional[List[ProductionSet]] = None,
              init: Optional[Callable[[Machine], None]] = None) -> Process:
        """Create a process; its production sets install with its pid."""
        pid = self._next_pid
        self._next_pid += 1
        machine = Machine(image, controller=self.controller)
        process = Process(pid=pid, machine=machine)
        for pset in production_sets or []:
            self.controller.install(pset, owner_pid=pid)
        if init is not None:
            # Initialisation runs in the process's context.
            self.controller.context_switch(pid)
            init(machine)
            process.saved_state = self._save(process)
        else:
            self.controller.context_switch(pid)
            process.saved_state = self._save(process)
        self.processes.append(process)
        return process

    def install_kernel_acf(self, production_set: ProductionSet):
        """Install a kernel-approved (cross-process) production set."""
        if production_set.scope != "kernel":
            raise ValueError("kernel ACFs must have kernel scope")
        self.controller.install(production_set)

    # ------------------------------------------------------------------
    def _dise_view(self, machine: Machine) -> DiseRegisterFile:
        view = DiseRegisterFile()
        for index in range(NUM_DISE_REGS):
            view.write(DISE_REG_BASE + index,
                       machine.regs[DISE_REG_BASE + index])
        return view

    def _save(self, process: Process) -> DiseSavedState:
        machine = process.machine
        disepc = machine._disepc if machine._exp is not None else 0
        return self.controller.save_state(
            self._dise_view(machine),
            pc=machine.image.addresses[machine.idx]
            if machine.idx < len(machine.image.addresses) else 0,
            disepc=disepc,
        )

    def _restore(self, process: Process):
        view = DiseRegisterFile()
        self.controller.restore_state(process.saved_state, view)
        for index in range(NUM_DISE_REGS):
            process.machine.regs[DISE_REG_BASE + index] = view.read(
                DISE_REG_BASE + index
            )

    # ------------------------------------------------------------------
    def run(self, quantum: int = 200, max_total_steps: int = 2_000_000):
        """Round-robin until every process halts (or the budget runs out)."""
        total = 0
        while total < max_total_steps:
            live = [p for p in self.processes if not p.halted]
            if not live:
                return
            for process in live:
                self.switch_to(process)
                for _ in range(quantum):
                    if process.halted:
                        break
                    process.machine.step()
                    process.steps += 1
                    total += 1
                process.saved_state = self._save(process)
        raise ExecutionTimeout(
            f"processes did not all halt within {max_total_steps} steps",
            steps=max_total_steps,
        )

    def switch_to(self, process: Process):
        """Perform one context switch: visibility + DISE state restore."""
        self.controller.context_switch(process.pid)
        if process.saved_state is not None:
            self._restore(process)
        self.switches += 1
