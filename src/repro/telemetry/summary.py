"""Render telemetry runs: ``summary``, ``top``, and two-run ``diff``.

Works purely from the emitted JSONL (see :mod:`repro.telemetry.events`):
the final ``metrics`` snapshot supplies counter/histogram values, the
``task`` events supply per-task harness timings, and the spans supply
phase timings.  Nothing here re-runs any simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.telemetry.events import final_metrics, read_events


class RunView:
    """Parsed view of one run log: events, metrics, tasks, spans."""

    def __init__(self, path):
        self.path = str(path)
        self.events = read_events(path)
        if not self.events:
            raise ValueError(f"{path}: empty event log")
        self.run_id = self.events[0].get("run", "?")
        self.schema = self.events[0].get("schema")
        self.metrics = final_metrics(self.events)
        self.tasks = [e for e in self.events if e.get("kind") == "task"]
        self.spans = [e for e in self.events if e.get("kind") == "span_end"]

    # -- metric accessors ---------------------------------------------
    def value(self, name: str, default=0):
        entry = self.metrics.get(name)
        if entry is None:
            return default
        if "value" in entry:
            return entry["value"]
        return entry.get("total", default)

    def counters_with_prefix(self, prefix: str) -> List[Tuple[str, int]]:
        out = []
        for name, entry in self.metrics.items():
            if name.startswith(prefix) and "value" in entry:
                out.append((name[len(prefix):], entry["value"]))
        out.sort(key=lambda pair: (-pair[1], pair[0]))
        return out

    def histogram(self, name: str) -> Optional[dict]:
        entry = self.metrics.get(name)
        return entry if entry and "count" in entry else None


def _ratio(numerator, denominator) -> Optional[float]:
    return numerator / denominator if denominator else None


def _pct(value: Optional[float]) -> str:
    return f"{value * 100:.2f}%" if value is not None else "—"


def _rate_line(label: str, hits, misses) -> Optional[str]:
    accesses = hits + misses
    if not accesses:
        return None
    return (f"  {label:<22s} {_pct(_ratio(hits, accesses)):>8s} hit "
            f"({hits}/{accesses})")


def render_summary(run: RunView) -> str:
    """Expansion frequency, cache hit rates, and harness task timings."""
    lines = [f"# Telemetry summary — {run.run_id}", ""]

    # -- engine / functional sim --------------------------------------
    app = run.value("sim.app_instructions")
    expansions = run.value("sim.expansions")
    dynamic = run.value("sim.instructions")
    lines.append("## Engine")
    if app or expansions:
        freq = _ratio(expansions, app)
        lines.append(f"  app instructions       {app}")
        lines.append(f"  dynamic instructions   {dynamic}")
        lines.append(f"  expansions             {expansions} "
                     f"(frequency {_pct(freq)})")
        length = run.histogram("engine.replacement_length")
        if length:
            mean = length["total"] / length["count"] if length["count"] else 0
            lines.append(
                f"  replacement length     mean {mean:.2f} "
                f"(min {length['min']}, max {length['max']}, "
                f"n={length['count']})"
            )
        pt_miss = run.value("sim.pt_misses")
        rt_miss = run.value("sim.rt_misses")
        lines.append(f"  PT misses              {pt_miss}")
        lines.append(f"  RT misses              {rt_miss}")
        for gauge_name, label in (("engine.pt_occupancy", "PT occupancy"),
                                  ("engine.rt_occupancy", "RT occupancy")):
            if gauge_name in run.metrics:
                lines.append(f"  {label:<22s} {run.value(gauge_name)}")
    else:
        lines.append("  (no functional-sim metrics in this run)")
    lines.append("")

    # -- cache hit rates ----------------------------------------------
    lines.append("## Cache hit rates")
    cache_lines = []
    for label, hit_name, miss_name in (
        ("trace cache (traces)", "trace_cache.trace.hits",
         "trace_cache.trace.misses"),
        ("trace cache (cycles)", "trace_cache.cycles.hits",
         "trace_cache.cycles.misses"),
    ):
        line = _rate_line(label, run.value(hit_name), run.value(miss_name))
        if line:
            cache_lines.append(line)
    for label, acc_name, miss_name in (
        ("I-cache (L1)", "cycle.il1.accesses", "cycle.il1.misses"),
        ("D-cache (L1)", "cycle.dl1.accesses", "cycle.dl1.misses"),
    ):
        accesses = run.value(acc_name)
        misses = run.value(miss_name)
        if accesses:
            cache_lines.append(
                f"  {label:<22s} {_pct(_ratio(accesses - misses, accesses)):>8s}"
                f" hit ({accesses - misses}/{accesses})"
            )
    quarantined = run.value("trace_cache.quarantined")
    if quarantined:
        cache_lines.append(f"  quarantined entries    {quarantined}")
    lines.extend(cache_lines or ["  (no cache metrics in this run)"])
    lines.append("")

    # -- execution fabric ---------------------------------------------
    fabric_names = [name for name in run.metrics
                    if name.startswith("fabric.")]
    if fabric_names:
        lines.append("## Execution fabric")
        dedupe = _rate_line("cross-campaign dedupe",
                            run.value("fabric.dedupe.hits"),
                            run.value("fabric.dedupe.misses"))
        if dedupe:
            lines.append(dedupe)
        store = _rate_line("artifact store",
                           run.value("fabric.store.hits"),
                           run.value("fabric.store.misses"))
        if store:
            lines.append(store)
        for name, label in (
            ("fabric.store.stores", "artifacts written"),
            ("fabric.store.quarantined", "artifacts quarantined"),
            ("fabric.checkpoint.quarantined", "checkpoints quarantined"),
            ("fabric.duplicates", "duplicates coalesced"),
            ("fabric.retries", "retries"),
            ("fabric.timeouts", "watchdog timeouts"),
            ("fabric.circuit_open", "circuit opens"),
            ("fabric.degradations", "serial degradations"),
        ):
            value = run.value(name)
            if value:
                lines.append(f"  {label:<22s} {value}")
        utilization = run.metrics.get("fabric.worker_utilization")
        if utilization is not None:
            lines.append(
                f"  worker utilization     {_pct(utilization.get('value'))}"
            )
        lines.append("")

    # -- timing model --------------------------------------------------
    replays = run.value("cycle.replays")
    if replays:
        lines.append("## Timing model")
        lines.append(f"  replays                {replays}")
        lines.append(f"  cycles                 {run.value('cycle.cycles')}")
        for name, label in (
            ("cycle.stall.expansion", "expansion stalls"),
            ("cycle.stall.pt_miss", "PT-miss stalls"),
            ("cycle.stall.rt_miss", "RT-miss stalls"),
            ("cycle.stall.dise_redirect", "DISE redirects"),
            ("cycle.mispredicts", "mispredicts"),
        ):
            lines.append(f"  {label:<22s} {run.value(name)}")
        lines.append("")

    # -- batch cohorts -------------------------------------------------
    lanes = run.histogram("sim.batch.lanes_active")
    drains = run.counters_with_prefix("sim.batch.drain.")
    readmitted = run.value("sim.batch.readmitted")
    if lanes or drains or readmitted:
        lines.append("## Batch cohorts")
        if lanes and lanes["count"]:
            mean = lanes["total"] / lanes["count"]
            lines.append(
                f"  lanes active           mean {mean:.2f} "
                f"(min {lanes['min']}, max {lanes['max']}, "
                f"n={lanes['count']})"
            )
        for cause, count in drains:
            label = f"drains ({cause})"
            lines.append(f"  {label:<22s} {count}")
        lines.append(f"  re-admissions          {readmitted}")
        lines.append("")

    # -- serve sessions ------------------------------------------------
    serve_names = [name for name in run.metrics if name.startswith("serve.")]
    if serve_names:
        lines.append("## Serve sessions")
        lines.append(f"  requests               {run.value('serve.requests')}"
                     f" ({run.value('serve.errors')} errors)")
        ops = run.counters_with_prefix("serve.requests.")
        for op, count in ops:
            label = f"op {op}"
            lines.append(f"  {label:<22s} {count}")
        lines.append(f"  sessions opened        "
                     f"{run.value('serve.sessions.opened')} "
                     f"({run.value('serve.sessions.forked')} forked, "
                     f"{run.value('serve.sessions.closed')} closed, "
                     f"{run.value('serve.sessions.resumed')} resumed)")
        warm_builds = run.value("serve.pool.warm_builds")
        builds = warm_builds + run.value("serve.pool.cold_builds")
        if builds:
            lines.append(f"  machine builds         {builds} "
                         f"({_pct(_ratio(warm_builds, builds))} warm)")
        for name, label in (
            ("serve.pool.evictions", "pool evictions"),
            ("serve.retired", "retirements served"),
            ("serve.errors.BudgetExceededError", "budget rejections"),
            ("serve.campaigns.started", "campaigns started"),
            ("serve.shutdowns", "graceful shutdowns"),
        ):
            value = run.value(name)
            if value:
                lines.append(f"  {label:<22s} {value}")
        lines.append("")

    # -- harness tasks -------------------------------------------------
    lines.append("## Harness tasks")
    if run.tasks:
        total = sum(t.get("seconds", 0) for t in run.tasks)
        retries = run.value("harness.retries")
        timeouts = run.value("harness.timeouts")
        lines.append(f"  tasks                  {len(run.tasks)} "
                     f"({total:.2f}s busy)")
        lines.append(f"  retries                {retries}")
        lines.append(f"  watchdog timeouts      {timeouts}")
        utilization = run.metrics.get("harness.worker_utilization")
        if utilization is not None:
            lines.append(
                f"  worker utilization     {_pct(utilization.get('value'))}"
            )
        slowest = sorted(run.tasks, key=lambda t: -t.get("seconds", 0))[:5]
        lines.append("  slowest tasks:")
        for task in slowest:
            lines.append(
                f"    {task.get('seconds', 0):8.3f}s  "
                f"x{task.get('attempts', 1)}  {task.get('status', '?'):<8s} "
                f"{task.get('label', '?')}"
            )
    else:
        lines.append("  (no task events in this run)")
    lines.append("")

    # -- phases --------------------------------------------------------
    if run.spans:
        lines.append("## Phases")
        for span_event in run.spans:
            lines.append(f"  {span_event.get('seconds', 0):8.3f}s  "
                         f"{span_event.get('name', '?')}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_top(run: RunView, n: int = 10) -> str:
    """Hottest opcodes and productions from the metric snapshot."""
    lines = [f"# Telemetry top — {run.run_id}", ""]
    opcodes = run.counters_with_prefix("sim.opcode.")
    lines.append(f"## Hottest opcodes (top {n})")
    if opcodes:
        total = sum(count for _, count in opcodes)
        for name, count in opcodes[:n]:
            lines.append(f"  {name:<10s} {count:>12d}  "
                         f"{_pct(_ratio(count, total))}")
        loads = sum(c for name, c in opcodes if name in ("LDQ", "LDL"))
        stores = sum(c for name, c in opcodes if name in ("STQ", "STL"))
        lines.append("")
        lines.append(f"  memory-op mix: {loads} loads / {stores} stores "
                     f"({_pct(_ratio(loads + stores, total))} of retired)")
    else:
        lines.append("  (no opcode metrics in this run)")
    lines.append("")
    productions = run.counters_with_prefix("engine.production.")
    lines.append(f"## Hottest productions (top {n})")
    if productions:
        for name, count in productions[:n]:
            lines.append(f"  {name:<24s} {count:>12d}")
    else:
        lines.append("  (no production-match metrics in this run)")
    blocks = run.counters_with_prefix("profile.block.")
    if blocks:
        lines.append("")
        lines.append(f"## Hottest superblocks (top {n})")
        for name, count in blocks[:n]:
            tier, _, pc = name.partition(".")
            lines.append(f"  {tier:<12s} {pc:<16s} {count:>12d}")
    return "\n".join(lines).rstrip() + "\n"


def render_diff(a: RunView, b: RunView, threshold: float = 0.0) -> str:
    """Two-run regression diff over counters, gauges and histogram totals.

    Timer/histogram *totals* are compared for timing metrics; raw event
    timestamps never participate, so seeded runs diff clean.
    """
    lines = [f"# Telemetry diff — {a.run_id} -> {b.run_id}", ""]
    names = sorted(set(a.metrics) | set(b.metrics))
    rows: List[Tuple[str, float, str]] = []
    for name in names:
        va = a.value(name, 0) or 0
        vb = b.value(name, 0) or 0
        if va == vb:
            continue
        if va:
            change = (vb - va) / abs(va)
            change_str = f"{change * 100:+.1f}%"
        else:
            change = float("inf")
            change_str = "new"
        magnitude = abs(change) if change != float("inf") else float("inf")
        if magnitude >= threshold:
            rows.append((name, magnitude,
                         f"  {name:<36s} {va!s:>14s} -> {vb!s:<14s} "
                         f"{change_str}"))
    if not rows:
        lines.append("  (no metric differences)")
        return "\n".join(lines) + "\n"
    rows.sort(key=lambda row: (-row[1] if row[1] != float("inf") else
                               float("-inf"), row[0]))
    lines.append(f"  {'metric':<36s} {'before':>14s}    {'after':<14s} change")
    lines.extend(row[2] for row in rows)
    return "\n".join(lines) + "\n"
