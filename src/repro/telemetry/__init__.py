"""Opt-in observability for every layer of the reproduction.

Set ``REPRO_TELEMETRY=1`` to collect metrics and (from the CLI/harness)
write a structured JSONL event log; leave it unset and every
instrumentation site degrades to shared no-op singletons.  See
``docs/observability.md`` for the metric catalog and event schema.
"""

from repro.telemetry.registry import (
    NULL_METRIC,
    Counter,
    Gauge,
    Histogram,
    Registry,
    Timer,
    configure,
    counter,
    enabled,
    enabled_scope,
    gauge,
    get_registry,
    histogram,
    snapshot,
    snapshot_delta,
    timer,
)
from repro.telemetry.events import (
    ACCEPTED_SCHEMAS,
    EVENT_SCHEMA,
    EventLog,
    RunTelemetry,
    TelemetryError,
    current_run,
    default_log_dir,
    emit_remote_spans,
    emit_task,
    emit_truncated_span,
    event,
    final_metrics,
    finish_run,
    make_run_id,
    read_events,
    span,
    start_run,
    validate_log,
)
from repro.telemetry.log import get_logger
from repro.telemetry import export, profile, tracing
from repro.telemetry.tracing import trace_scope
from repro.telemetry.profile import profile_scope

__all__ = [
    "NULL_METRIC", "Counter", "Gauge", "Histogram", "Registry", "Timer",
    "configure", "counter", "enabled", "enabled_scope", "gauge",
    "get_registry", "histogram", "snapshot", "snapshot_delta", "timer",
    "ACCEPTED_SCHEMAS", "EVENT_SCHEMA", "EventLog", "RunTelemetry",
    "TelemetryError", "current_run", "default_log_dir", "emit_remote_spans",
    "emit_task", "emit_truncated_span", "event", "final_metrics",
    "finish_run", "make_run_id", "read_events", "span", "start_run",
    "validate_log", "get_logger", "export", "profile", "tracing",
    "trace_scope", "profile_scope",
]
