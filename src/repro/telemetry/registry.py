"""Process-wide metric registry: counters, gauges, histograms, timers.

Design goals, in priority order:

1. **Zero cost when disabled.**  Telemetry is opt-in via the
   ``REPRO_TELEMETRY`` environment variable.  When it is off, the
   module-level accessors (:func:`counter`, :func:`gauge`,
   :func:`histogram`, :func:`timer`) return shared no-op singletons: no
   metric objects are allocated, no dict entries are created, and every
   recording method is a constant ``pass``.  Hot loops additionally gate
   their instrumentation at *setup* time (the functional simulator only
   installs its counting wrapper when telemetry is on), so the disabled
   dispatch path is byte-identical to the uninstrumented code.
2. **Lock-cheap when enabled.**  Metric objects are plain ``__slots__``
   records mutated with CPython-atomic operations; the registry takes a
   lock only on first creation of a name.  Counts may be off by a few
   events under free-threaded mutation — telemetry is diagnostic, not an
   accounting system — but single-threaded runs (ours) are exact.
3. **Deterministic values.**  Nothing here reads clocks except timers;
   counter and histogram values for a seeded run are a pure function of
   the work performed, which is what ``tests/test_telemetry.py`` pins.

Snapshots are plain JSON-compatible dicts (``name -> {"type": ..., ...}``)
so they can be embedded in event logs, ``BENCH_*.json`` and harness
reports, merged across worker processes, and diffed between runs.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional

_ENV_VAR = "REPRO_TELEMETRY"
_TRUTHY = ("1", "on", "true", "yes", "enabled")


def _env_enabled() -> bool:
    value = os.environ.get(_ENV_VAR, "")
    return value.strip().lower() in _TRUTHY


class _State:
    __slots__ = ("enabled",)

    def __init__(self):
        self.enabled = _env_enabled()


_STATE = _State()


def enabled() -> bool:
    """True when telemetry collection is on for this process."""
    return _STATE.enabled


def configure(enabled: Optional[bool] = None) -> bool:
    """Override (or re-resolve) the enabled flag; returns the previous value.

    ``configure(None)`` re-reads ``REPRO_TELEMETRY`` from the environment.
    Call sites cache the flag at setup time (machine construction,
    production-set installation), so flip it *before* building the objects
    you want instrumented.
    """
    previous = _STATE.enabled
    _STATE.enabled = _env_enabled() if enabled is None else bool(enabled)
    return previous


class enabled_scope:
    """Context manager: force telemetry on/off within a block (tests)."""

    def __init__(self, value: bool):
        self.value = value
        self._previous = None

    def __enter__(self):
        self._previous = configure(self.value)
        return self

    def __exit__(self, *exc):
        configure(self._previous)
        return False


# ----------------------------------------------------------------------
# Metric types
# ----------------------------------------------------------------------
class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1):
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value


class Histogram:
    """Streaming count/total/min/max over observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0


class _TimerContext:
    __slots__ = ("_timer", "_t0")

    def __init__(self, timer: "Timer"):
        self._timer = timer
        self._t0 = None

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._timer.observe(time.perf_counter() - self._t0)
        return False


class Timer(Histogram):
    """A histogram of elapsed seconds with a ``with timer.time():`` helper."""

    __slots__ = ()

    def time(self) -> _TimerContext:
        return _TimerContext(self)


# ----------------------------------------------------------------------
# No-op singletons (disabled mode)
# ----------------------------------------------------------------------
class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class NullMetric:
    """Absorbs every metric operation; shared singletons, zero allocation."""

    __slots__ = ()
    name = "<disabled>"
    value = 0
    count = 0
    total = 0
    min = None
    max = None
    mean = 0.0

    def inc(self, n: int = 1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    def time(self):
        return _NULL_CONTEXT


NULL_METRIC = NullMetric()

_TYPE_NAMES = {Counter: "counter", Gauge: "gauge",
               Histogram: "histogram", Timer: "timer"}
_TYPE_BY_NAME = {name: cls for cls, name in _TYPE_NAMES.items()}


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
class Registry:
    """Name-keyed store of metric objects with snapshot/merge/diff."""

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name)
                    self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{_TYPE_NAMES[type(metric)]}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def __len__(self):
        return len(self._metrics)

    def __contains__(self, name):
        return name in self._metrics

    def reset(self):
        with self._lock:
            self._metrics.clear()

    # -- snapshots -----------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """JSON-compatible dump of every metric's current state."""
        out = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            kind = _TYPE_NAMES[type(metric)]
            if kind in ("counter", "gauge"):
                out[name] = {"type": kind, "value": metric.value}
            else:
                out[name] = {
                    "type": kind, "count": metric.count,
                    "total": metric.total, "min": metric.min,
                    "max": metric.max,
                }
        return out

    def merge(self, snapshot: Dict[str, dict]):
        """Fold another process's snapshot into this registry.

        Counters and histogram count/total add; gauges take the incoming
        value; histogram min/max widen.  Used to absorb worker-process
        metrics into the parent's registry after a parallel fan-out.
        """
        for name, entry in snapshot.items():
            kind = entry.get("type")
            if kind == "counter":
                self.counter(name).inc(entry.get("value", 0))
            elif kind == "gauge":
                self.gauge(name).set(entry.get("value", 0))
            elif kind in ("histogram", "timer"):
                metric = (self.timer(name) if kind == "timer"
                          else self.histogram(name))
                metric.count += entry.get("count", 0)
                metric.total += entry.get("total", 0)
                for bound, better in (("min", min), ("max", max)):
                    incoming = entry.get(bound)
                    if incoming is None:
                        continue
                    current = getattr(metric, bound)
                    setattr(metric, bound,
                            incoming if current is None
                            else better(current, incoming))


def snapshot_delta(before: Dict[str, dict],
                   after: Dict[str, dict]) -> Dict[str, dict]:
    """The work done between two snapshots of one registry.

    Counters and histogram count/total subtract; gauges and histogram
    min/max carry the ``after`` value (point-in-time semantics).  Entries
    that did not change are dropped.  This is what a worker sends back to
    the parent, so long-lived pool workers never double-report.
    """
    out = {}
    for name, entry in after.items():
        previous = before.get(name)
        kind = entry.get("type")
        if kind == "counter":
            delta = entry["value"] - (previous or {"value": 0})["value"]
            if delta:
                out[name] = {"type": "counter", "value": delta}
        elif kind == "gauge":
            if previous is None or previous.get("value") != entry["value"]:
                out[name] = dict(entry)
        else:
            prev_count = (previous or {}).get("count", 0)
            if entry.get("count", 0) != prev_count:
                out[name] = {
                    "type": kind,
                    "count": entry.get("count", 0) - prev_count,
                    "total": entry.get("total", 0)
                    - (previous or {}).get("total", 0),
                    "min": entry.get("min"), "max": entry.get("max"),
                }
    return out


_REGISTRY = Registry()


def get_registry() -> Registry:
    """The process-wide registry (real metrics, even when disabled)."""
    return _REGISTRY


# ----------------------------------------------------------------------
# Module-level accessors — the API instrumentation sites use
# ----------------------------------------------------------------------
def counter(name: str):
    """A :class:`Counter`, or the shared no-op when telemetry is off."""
    if not _STATE.enabled:
        return NULL_METRIC
    return _REGISTRY.counter(name)


def gauge(name: str):
    if not _STATE.enabled:
        return NULL_METRIC
    return _REGISTRY.gauge(name)


def histogram(name: str):
    if not _STATE.enabled:
        return NULL_METRIC
    return _REGISTRY.histogram(name)


def timer(name: str):
    if not _STATE.enabled:
        return NULL_METRIC
    return _REGISTRY.timer(name)


def snapshot() -> Dict[str, dict]:
    return _REGISTRY.snapshot()
