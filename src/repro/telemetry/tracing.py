"""Hierarchical trace contexts that cross process boundaries.

PR 3's spans are flat begin/end pairs with no identity; this module gives
every span a ``(trace_id, span_id, parent_id)`` triple so one campaign —
parent driver plus fabric worker processes — yields one coherent trace
tree instead of per-process fragments.

The design mirrors :mod:`repro.telemetry.registry`:

* collection is opt-in (``REPRO_TRACE``) and gated at *setup* time — with
  tracing off, span emission is byte-identical to PR 3 and the simulator
  dispatch path stays structurally unwrapped (``bench_telemetry.py`` pins
  this);
* the **trace id is the run id** — one run, one trace, no coordination;
* span ids are ``<pid>.<counter>`` strings: unique within a run without
  any cross-process allocation, and never compared for ordering;
* worker processes have no event log, so their spans land in a
  :class:`RemoteSession` buffer that rides back to the parent inside the
  task's return envelope (:func:`wrap_result`), together with a registry
  ``snapshot_delta`` — the same merge machinery the harness already uses
  for metrics.  The parent unwraps the envelope *before* the result
  reaches any store or checkpoint, so persisted bytes are unchanged.

A worker that dies mid-span simply never returns its buffer; the parent
synthesizes a ``span_begin`` with no ``span_end`` (a *truncated* span,
accepted by ``validate_log`` and reported as such by the critical-path
analysis) so crashes are visible in the tree rather than corrupting it.
"""

import os
import time
from contextlib import contextmanager
from typing import Dict, List, Optional

_ENV_VAR = "REPRO_TRACE"
_TRUTHY = ("1", "on", "true", "yes", "enabled")

#: Marker key of the worker->parent trace envelope.
TRACE_ENVELOPE_KEY = "__repro_trace__"


class _State(object):
    __slots__ = ("enabled",)

    def __init__(self):
        self.enabled = (
            os.environ.get(_ENV_VAR, "").strip().lower() in _TRUTHY
        )


_STATE = _State()


def enabled() -> bool:
    """True when trace-context propagation is on (``REPRO_TRACE``)."""
    return _STATE.enabled


def configure(value: Optional[bool] = None) -> bool:
    """Set tracing on/off explicitly, or re-read ``REPRO_TRACE`` (None)."""
    if value is None:
        _STATE.enabled = (
            os.environ.get(_ENV_VAR, "").strip().lower() in _TRUTHY
        )
    else:
        _STATE.enabled = bool(value)
    return _STATE.enabled


@contextmanager
def trace_scope(value: bool):
    """Temporarily force tracing on/off (tests, benchmarks)."""
    previous = _STATE.enabled
    _STATE.enabled = bool(value)
    try:
        yield
    finally:
        _STATE.enabled = previous


# ----------------------------------------------------------------------
# Span-id allocation and the in-process context stack
# ----------------------------------------------------------------------
_COUNTER = 0

#: Innermost-active-span stack of the *parent* process (the one holding
#: the event log).  Each entry is {"trace_id": ..., "span_id": ...}.
_STACK: List[Dict[str, str]] = []


def _next_span_id() -> str:
    # The pid component is read per call, not at import: forked pool
    # workers share this module's state but must not share an id space.
    global _COUNTER
    _COUNTER += 1
    return f"{os.getpid()}.{_COUNTER}"


def push_span(trace_id: str) -> Dict[str, str]:
    """Open a span in the local context stack; returns its id fields.

    ``trace_id`` seeds the trace when the stack is empty (the event log
    passes its run id); nested spans inherit the parent's trace id and
    gain a ``parent_id`` link.
    """
    parent = _STACK[-1] if _STACK else None
    ids = {
        "trace_id": parent["trace_id"] if parent else trace_id,
        "span_id": _next_span_id(),
    }
    if parent is not None:
        ids["parent_id"] = parent["span_id"]
    _STACK.append({"trace_id": ids["trace_id"], "span_id": ids["span_id"]})
    return ids


def pop_span():
    if _STACK:
        _STACK.pop()


def current_context() -> Optional[Dict[str, str]]:
    """Propagation context for a worker task, or None.

    The returned dict is picklable and complete: a worker activates it
    with :func:`remote_session` and every span it records becomes a child
    of the span that was innermost here when the task was submitted.
    """
    if not _STATE.enabled:
        return None
    if _REMOTE is not None:
        if _REMOTE.stack:
            return dict(_REMOTE.stack[-1])
        if _REMOTE.parent_id is not None:
            return {"trace_id": _REMOTE.trace_id,
                    "span_id": _REMOTE.parent_id}
        return None
    if _STACK:
        return dict(_STACK[-1])
    return None


def reset_for_tests():
    """Drop all context state (test isolation only)."""
    global _REMOTE
    del _STACK[:]
    _REMOTE = None


# ----------------------------------------------------------------------
# Worker-side span capture
# ----------------------------------------------------------------------
class RemoteSession(object):
    """Span buffer for a process with no event log (a fabric worker).

    Spans are recorded as plain dicts with *worker-relative* ``start``
    offsets plus wall ``seconds``; the parent re-emits them into its own
    log at merge time (`repro.telemetry.events.emit_remote_spans`).
    """

    __slots__ = ("trace_id", "parent_id", "stack", "records", "t0", "pid")

    def __init__(self, context: Dict[str, str]):
        self.trace_id = context.get("trace_id")
        self.parent_id = context.get("span_id")
        self.stack: List[Dict[str, str]] = []
        self.records: List[dict] = []
        self.t0 = time.monotonic()
        self.pid = os.getpid()


_REMOTE: Optional[RemoteSession] = None


@contextmanager
def remote_session(context: Dict[str, str]):
    """Activate a propagated trace context in a worker process."""
    global _REMOTE
    previous = _REMOTE
    session = RemoteSession(context)
    _REMOTE = session
    try:
        yield session
    finally:
        _REMOTE = previous


def remote_active() -> bool:
    return _REMOTE is not None


@contextmanager
def remote_span(name: str, **fields):
    """Record one span into the active remote session (no-op without one).

    The record survives only if the worker returns normally; a crash
    mid-span loses the buffer, which is exactly the signal the parent
    turns into a truncated span.
    """
    session = _REMOTE
    if session is None:
        yield
        return
    parent = (session.stack[-1]["span_id"] if session.stack
              else session.parent_id)
    span_id = _next_span_id()
    session.stack.append({"trace_id": session.trace_id, "span_id": span_id})
    start = time.monotonic() - session.t0
    ok = True
    try:
        yield
    except BaseException:
        ok = False
        raise
    finally:
        session.stack.pop()
        record = {
            "name": name,
            "trace_id": session.trace_id,
            "span_id": span_id,
            "start": round(start, 6),
            "seconds": round(time.monotonic() - session.t0 - start, 6),
            "ok": ok,
            "pid": session.pid,
        }
        if parent is not None:
            record["parent_id"] = parent
        record.update(fields)
        session.records.append(record)


# ----------------------------------------------------------------------
# The worker->parent result envelope
# ----------------------------------------------------------------------
def wrap_result(result, session: RemoteSession, metrics=None) -> dict:
    """Bundle a task result with its span records and metrics delta."""
    return {
        TRACE_ENVELOPE_KEY: 1,
        "result": result,
        "spans": list(session.records),
        "metrics": metrics or {},
    }


def is_envelope(obj) -> bool:
    return isinstance(obj, dict) and obj.get(TRACE_ENVELOPE_KEY) == 1


def unwrap(obj):
    """Split an envelope into ``(result, spans, metrics)``.

    The caller stores/checkpoints the bare result — envelope framing must
    never reach persisted bytes.
    """
    return obj["result"], obj.get("spans") or [], obj.get("metrics") or {}
