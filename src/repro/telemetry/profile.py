"""Hot-path profiler: retirement attribution per superblock/trigger/production.

The translated and batch tiers (PRs 5–6) retire almost everything inside
pre-bound superblocks, so per-opcode telemetry cannot say *which code* is
hot.  This profiler attributes retirement counts to:

* **superblocks** — the entry PC of each translated superblock (translated
  tier), compiled block (batch lanes), or dynamic basic-block leader (the
  interpretive fast/generic tiers, where no superblocks exist: a leader is
  any PC reached non-sequentially);
* **trigger PCs** — expansions taken per trigger site;
* **productions** — DISE-injected instructions per production (``seq<N>``).

Attribution is block-granular on the fast tiers (one dict bump per
superblock execution, not per instruction), so the enabled-mode overhead
on a warm translated run stays under the 10% budget pinned in
``benchmarks/bench_telemetry.py``.  Like everything in
:mod:`repro.telemetry`, it is opt-in (``REPRO_TRACE_PROFILE``) and gated
at machine construction: with the profiler off, no hook exists on the
dispatch path and the structural disabled-mode contract of PR 3 holds.

Counts are process-local dicts while running; :func:`publish` folds their
growth into the telemetry registry as ``profile.*`` counters (when
``REPRO_TELEMETRY`` is on), so worker-process profiles merge back to the
parent through the existing ``snapshot_delta`` machinery and land in the
run log's final metrics snapshot.  :func:`collapsed_from_metrics` renders
those counters as collapsed-stack lines (``frame;frame count``) that
flamegraph.pl and speedscope ingest directly.
"""

import os
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.telemetry import registry as _registry

_ENV_VAR = "REPRO_TRACE_PROFILE"
_TRUTHY = ("1", "on", "true", "yes", "enabled")


class _State(object):
    __slots__ = ("enabled",)

    def __init__(self):
        self.enabled = (
            os.environ.get(_ENV_VAR, "").strip().lower() in _TRUTHY
        )


_STATE = _State()


def enabled() -> bool:
    """True when hot-path profiling is on (``REPRO_TRACE_PROFILE``)."""
    return _STATE.enabled


def configure(value: Optional[bool] = None) -> bool:
    """Set profiling on/off explicitly, or re-read the environment."""
    if value is None:
        _STATE.enabled = (
            os.environ.get(_ENV_VAR, "").strip().lower() in _TRUTHY
        )
    else:
        _STATE.enabled = bool(value)
    return _STATE.enabled


@contextmanager
def profile_scope(value: bool):
    """Temporarily force profiling on/off (tests, benchmarks)."""
    previous = _STATE.enabled
    _STATE.enabled = bool(value)
    try:
        yield
    finally:
        _STATE.enabled = previous


# ----------------------------------------------------------------------
# Per-machine profile state
# ----------------------------------------------------------------------
def new_profile(tier: str) -> dict:
    """Fresh attribution dicts for one machine (or batch cohort).

    ``block`` maps entry PC -> retired instructions, ``trigger`` maps
    trigger PC -> expansions, ``production`` maps seq id -> injected
    instructions.  ``_prev`` mirrors published totals so :func:`publish`
    is delta-safe under repeated ``result()`` calls.
    """
    return {
        "tier": tier,
        "block": {},
        "trigger": {},
        "production": {},
        "_prev": {"block": {}, "trigger": {}, "production": {}},
    }


def publish(profile: dict):
    """Fold a profile's growth into the registry as ``profile.*`` counters.

    No-op when telemetry is disabled (the dicts stay readable on the
    machine for in-process consumers like the benchmark).
    """
    if not _registry.enabled():
        return
    tier = profile["tier"]
    prev = profile["_prev"]
    for pc, count in profile["block"].items():
        delta = count - prev["block"].get(pc, 0)
        if delta:
            _registry.counter(f"profile.block.{tier}.0x{pc:x}").inc(delta)
            prev["block"][pc] = count
    for pc, count in profile["trigger"].items():
        delta = count - prev["trigger"].get(pc, 0)
        if delta:
            _registry.counter(f"profile.trigger.0x{pc:x}").inc(delta)
            prev["trigger"][pc] = count
    for seq_id, count in profile["production"].items():
        delta = count - prev["production"].get(seq_id, 0)
        if delta:
            _registry.counter(f"profile.production.seq{seq_id}").inc(delta)
            prev["production"][seq_id] = count


# ----------------------------------------------------------------------
# Collapsed-stack rendering (flamegraph.pl / speedscope input)
# ----------------------------------------------------------------------
def collapsed_from_metrics(metrics: Dict[str, dict]) -> List[str]:
    """Render ``profile.*`` counters from a metrics snapshot as collapsed
    stacks.

    One line per frame stack: ``sim;<tier>;sb_0x<pc> <retired>`` for
    superblock retirement, ``dise;trigger;0x<pc> <expansions>`` and
    ``dise;production;seq<N> <injected>`` for the DISE dimensions.  Lines
    are sorted by descending count then name, so the ranking is
    deterministic for seeded runs.
    """
    lines: List[tuple] = []
    for name, entry in metrics.items():
        value = entry.get("value")
        if not value:
            continue
        if name.startswith("profile.block."):
            tier, _, pc = name[len("profile.block."):].partition(".")
            lines.append((value, f"sim;{tier};sb_{pc}"))
        elif name.startswith("profile.trigger."):
            pc = name[len("profile.trigger."):]
            lines.append((value, f"dise;trigger;{pc}"))
        elif name.startswith("profile.production."):
            prod = name[len("profile.production."):]
            lines.append((value, f"dise;production;{prod}"))
    lines.sort(key=lambda pair: (-pair[0], pair[1]))
    return [f"{stack} {count}" for count, stack in lines]


def collapsed_from_machine(machine) -> List[str]:
    """Collapsed stacks straight from a machine's profile dicts.

    Works with telemetry off (no registry round-trip) — the in-process
    path the profiler benchmark uses.
    """
    profile = getattr(machine, "_profile", None)
    if not profile:
        return []
    metrics: Dict[str, dict] = {}
    tier = profile["tier"]
    for pc, count in profile["block"].items():
        metrics[f"profile.block.{tier}.0x{pc:x}"] = {"value": count}
    for pc, count in profile["trigger"].items():
        metrics[f"profile.trigger.0x{pc:x}"] = {"value": count}
    for seq_id, count in profile["production"].items():
        metrics[f"profile.production.seq{seq_id}"] = {"value": count}
    return collapsed_from_metrics(metrics)


def top_blocks(metrics: Dict[str, dict], n: int = 10) -> List[tuple]:
    """The ``n`` hottest superblocks: ``(tier, pc-label, retired)``."""
    rows = []
    for name, entry in metrics.items():
        if name.startswith("profile.block.") and entry.get("value"):
            tier, _, pc = name[len("profile.block."):].partition(".")
            rows.append((entry["value"], tier, pc))
    rows.sort(key=lambda row: (-row[0], row[1], row[2]))
    return [(tier, pc, count) for count, tier, pc in rows[:n]]
