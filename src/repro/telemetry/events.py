"""Structured JSONL run events: spans, task records, metric snapshots.

Every harness invocation that opts in (``REPRO_TELEMETRY`` truthy) can open
a *run*: an append-only JSONL file of events, written next to checkpoints
(or wherever ``REPRO_TELEMETRY_DIR`` points).  Each line is one JSON object
with a fixed envelope::

    {"schema": 1, "run": "<run id>", "seq": N, "t": <seconds>, "kind": ...}

``seq`` increments per event; ``t`` is monotonic seconds since the run
began (wall-clock timestamps never enter the log, which keeps seeded runs
diffable — only ``t`` varies between identical runs, and the comparison
tools ignore it).  Event kinds:

``run_begin`` / ``run_end``
    Brackets of the run.  ``run_end`` carries the exit status;
    a ``metrics`` event with the final registry snapshot precedes it.
``span_begin`` / ``span_end``
    Harness phases (experiments, benchmark preparation, campaign chunks).
    ``span_end`` repeats the name and carries ``seconds``.
``task``
    One parallel-harness task: label, wall seconds, attempts, status.
``event``
    Anything else (retries, quarantines, watchdog expiries).
``metrics``
    A full registry snapshot (``{"metrics": {name: {...}}}``).

Schema 2 (tracing) extends schema 1 without breaking it: when
``REPRO_TRACE`` is on, span events additionally carry ``trace_id`` /
``span_id`` / ``parent_id`` (see :mod:`repro.telemetry.tracing`), and
spans recorded in worker processes are re-emitted here at merge time with
a ``remote`` marker, worker ``pid``, and worker-relative ``start``.
Id-carrying spans are matched by id instead of stack position — so a
worker crash mid-span leaves a well-formed ``span_end``-less record that
validation accepts as *truncated* rather than rejecting as corrupt.

:func:`validate_log` is the schema check CI runs against emitted logs —
hand-rolled (no jsonschema dependency), strict about the envelope, the
known kinds, per-kind required fields, seq/t monotonicity, and span
balance.  It accepts both schema versions.
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.telemetry import registry as _registry
from repro.telemetry import tracing as _tracing

#: Bump when the envelope or per-kind required fields change.
EVENT_SCHEMA = 2

#: Schema versions :func:`validate_log` accepts (older logs stay valid).
ACCEPTED_SCHEMAS = (1, 2)

_DIR_ENV_VAR = "REPRO_TELEMETRY_DIR"
_DEFAULT_DIR = ".repro-telemetry"

ENVELOPE_KEYS = ("schema", "run", "seq", "t", "kind")

#: kind -> extra required fields.
EVENT_KINDS = {
    "run_begin": ("argv",),
    "run_end": ("status",),
    "span_begin": ("name",),
    "span_end": ("name", "seconds"),
    "task": ("label", "seconds", "attempts", "status"),
    "event": ("name",),
    "metrics": ("metrics",),
}


class TelemetryError(RuntimeError):
    """Raised for malformed event logs (validation failures)."""


def default_log_dir() -> Path:
    """Where run logs land unless the caller picks a directory."""
    return Path(os.environ.get(_DIR_ENV_VAR) or _DEFAULT_DIR)


def make_run_id() -> str:
    """A collision-resistant, filename-safe run identifier."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"run-{stamp}-{os.getpid():05d}-{os.urandom(2).hex()}"


class EventLog:
    """Append-only JSONL writer with the envelope stamped on every event."""

    def __init__(self, path, run_id: str):
        self.path = Path(path)
        self.run_id = run_id
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[io.TextIOWrapper] = open(self.path, "a")
        self._seq = 0
        self._t0 = time.monotonic()

    def emit(self, kind: str, **fields):
        if self._handle is None:
            return
        record = {
            "schema": EVENT_SCHEMA,
            "run": self.run_id,
            "seq": self._seq,
            "t": round(time.monotonic() - self._t0, 6),
            "kind": kind,
        }
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._seq += 1

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class _Span:
    __slots__ = ("_run", "name", "fields", "_t0", "_ids")

    def __init__(self, run: "RunTelemetry", name: str, fields: dict):
        self._run = run
        self.name = name
        self.fields = fields
        self._t0 = None
        self._ids = None

    def __enter__(self):
        self._t0 = time.monotonic()
        fields = self.fields
        if _tracing.enabled():
            # Trace id == run id: one run, one trace, zero coordination.
            self._ids = _tracing.push_span(self._run.log.run_id)
            fields = dict(fields, **self._ids)
        self._run.emit("span_begin", name=self.name, **fields)
        return self

    def __exit__(self, exc_type, exc, tb):
        fields = self.fields
        if self._ids is not None:
            fields = dict(fields, **self._ids)
            _tracing.pop_span()
        self._run.emit(
            "span_end", name=self.name,
            seconds=round(time.monotonic() - self._t0, 6),
            ok=exc_type is None, **fields,
        )
        return False


class RunTelemetry:
    """One observed run: an event log plus the process registry.

    Constructed through :func:`start_run`; when telemetry is disabled the
    run is inert (``log`` is ``None`` and every method no-ops), so call
    sites never need to guard.
    """

    def __init__(self, log: Optional[EventLog]):
        self.log = log

    @property
    def active(self) -> bool:
        return self.log is not None

    @property
    def path(self) -> Optional[Path]:
        return self.log.path if self.log is not None else None

    def emit(self, kind: str, **fields):
        if self.log is not None:
            self.log.emit(kind, **fields)

    def span(self, name: str, **fields) -> _Span:
        if self.log is None:
            return _registry._NULL_CONTEXT
        return _Span(self, name, fields)

    def finish(self, status: str = "ok") -> Optional[Path]:
        """Emit the final metrics snapshot and close the log."""
        if self.log is None:
            return None
        self.emit("metrics", metrics=_registry.snapshot())
        self.emit("run_end", status=status)
        path = self.log.path
        self.log.close()
        self.log = None
        return path


_INERT_RUN = RunTelemetry(None)
_CURRENT: RunTelemetry = _INERT_RUN


def start_run(log_dir=None, run_id: Optional[str] = None,
              argv: Optional[List[str]] = None) -> RunTelemetry:
    """Open a run event log (no-op when telemetry is disabled).

    The log lands in ``log_dir`` (default: ``REPRO_TELEMETRY_DIR`` or
    ``.repro-telemetry/``) as ``<run id>.jsonl``.  The new run becomes the
    process-current run targeted by :func:`event` / :func:`span`.
    """
    global _CURRENT
    if not _registry.enabled():
        return _INERT_RUN
    run_id = run_id or make_run_id()
    directory = Path(log_dir) if log_dir is not None else default_log_dir()
    log = EventLog(directory / f"{run_id}.jsonl", run_id)
    run = RunTelemetry(log)
    run.emit("run_begin", argv=list(argv or []))
    _CURRENT = run
    return run


def current_run() -> RunTelemetry:
    return _CURRENT


def finish_run(status: str = "ok") -> Optional[Path]:
    """Finish the process-current run; returns the log path (or None)."""
    global _CURRENT
    path = _CURRENT.finish(status)
    _CURRENT = _INERT_RUN
    return path


def event(name: str, **fields):
    """Emit a free-form event on the current run (no-op without one)."""
    _CURRENT.emit("event", name=name, **fields)


def emit_task(label: str, seconds: float, attempts: int, status: str,
              **fields):
    """Emit a parallel-harness task record on the current run."""
    _CURRENT.emit("task", label=label, seconds=round(seconds, 6),
                  attempts=attempts, status=status, **fields)


def span(name: str, **fields):
    """A span on the current run (an inert context without one).

    In a worker process activated via ``tracing.remote_session`` there is
    no event log; the span is recorded into the session buffer instead,
    preserving existing call sites (campaign prep, fabric phases) across
    the process boundary.
    """
    if _CURRENT.active:
        return _CURRENT.span(name, **fields)
    if _tracing.enabled() and _tracing.remote_active():
        return _tracing.remote_span(name, **fields)
    return _registry._NULL_CONTEXT


def emit_remote_spans(records: List[dict]):
    """Re-emit worker-recorded span buffers into the current run log.

    Each record becomes an adjacent ``span_begin``/``span_end`` pair
    carrying the worker's trace ids, pid, worker-relative ``start``, and
    measured ``seconds``; the envelope ``t`` is stamped at merge time
    (parent clock), so timeline tools place remote spans by
    ``span_end.t - seconds``.  Id-based span matching makes the adjacent
    emission order valid regardless of the original nesting.
    """
    if not _CURRENT.active or not records:
        return
    for record in sorted(records,
                         key=lambda r: (r.get("start", 0.0),
                                        str(r.get("span_id", "")))):
        fields = {k: v for k, v in record.items()
                  if k not in ("name", "seconds", "ok")}
        _CURRENT.emit("span_begin", name=record.get("name", "?"),
                      remote=True, **fields)
        ids = {k: record[k] for k in ("trace_id", "span_id", "parent_id")
               if k in record}
        _CURRENT.emit("span_end", name=record.get("name", "?"),
                      seconds=record.get("seconds", 0.0),
                      ok=record.get("ok", True), remote=True, **ids)


def emit_truncated_span(name: str, context: Optional[dict] = None, **fields):
    """Synthesize a ``span_begin`` with no ``span_end`` (a crashed span).

    Used by the parent when a worker died, hung, or gave up before
    returning its span buffer: the failure becomes a *truncated* node in
    the trace tree (``validate_log`` accepts it; the critical-path
    analysis flags it) instead of disappearing.  Returns the synthesized
    span id, or None when no run log is active.
    """
    if not _CURRENT.active or not _tracing.enabled():
        return None
    parent = context or _tracing.current_context()
    ids = {"span_id": _tracing._next_span_id()}
    if parent is not None:
        ids["trace_id"] = parent["trace_id"]
        ids["parent_id"] = parent["span_id"]
    else:
        ids["trace_id"] = _CURRENT.log.run_id
    _CURRENT.emit("span_begin", name=name, truncated=True, **ids, **fields)
    return ids["span_id"]


# ----------------------------------------------------------------------
# Validation (the CI schema check)
# ----------------------------------------------------------------------
def validate_event(obj: dict, line_no: int = 0):
    """Check one event object against the envelope and per-kind schema."""
    if not isinstance(obj, dict):
        raise TelemetryError(f"line {line_no}: event is not an object")
    for key in ENVELOPE_KEYS:
        if key not in obj:
            raise TelemetryError(f"line {line_no}: missing envelope key "
                                 f"{key!r}")
    if obj["schema"] not in ACCEPTED_SCHEMAS:
        raise TelemetryError(
            f"line {line_no}: schema {obj['schema']!r} not in "
            f"{ACCEPTED_SCHEMAS}"
        )
    kind = obj["kind"]
    if kind not in EVENT_KINDS:
        raise TelemetryError(f"line {line_no}: unknown event kind {kind!r}")
    if not isinstance(obj["seq"], int) or obj["seq"] < 0:
        raise TelemetryError(f"line {line_no}: bad seq {obj['seq']!r}")
    if not isinstance(obj["t"], (int, float)) or obj["t"] < 0:
        raise TelemetryError(f"line {line_no}: bad timestamp {obj['t']!r}")
    for field in EVENT_KINDS[kind]:
        if field not in obj:
            raise TelemetryError(
                f"line {line_no}: {kind} event missing field {field!r}"
            )
    if kind == "metrics" and not isinstance(obj["metrics"], dict):
        raise TelemetryError(f"line {line_no}: metrics payload is not a dict")


def validate_log(path) -> int:
    """Validate a JSONL event log end-to-end; returns the event count.

    Checks every line parses, envelopes and per-kind fields are present,
    ``seq`` counts from 0 without gaps, ``t`` never goes backwards, the
    first event is ``run_begin``, all events share one run id, and spans
    balance.  Span balance has two disciplines:

    * **id-less spans** (schema 1, or schema 2 with tracing off) must
      nest strictly — every ``span_end`` closes the innermost open
      ``span_begin``, and none may remain open at the end;
    * **id-carrying spans** (schema 2 with tracing on) match by
      ``span_id`` in any order — a ``span_end`` without a matching begin
      is an error, but a begin with no end is an accepted *truncated*
      span (a worker crashed mid-span; the record is still well-formed).
    """
    events = list(read_events(path))
    if not events:
        raise TelemetryError(f"{path}: empty event log")
    run_id = events[0]["run"]
    if events[0]["kind"] != "run_begin":
        raise TelemetryError(f"{path}: first event is not run_begin")
    last_t = 0.0
    open_spans: List[str] = []
    open_ids: Dict[str, str] = {}
    for i, obj in enumerate(events):
        validate_event(obj, line_no=i + 1)
        if obj["run"] != run_id:
            raise TelemetryError(f"{path}: line {i + 1}: run id changed")
        if obj["seq"] != i:
            raise TelemetryError(
                f"{path}: line {i + 1}: seq {obj['seq']} != {i}"
            )
        if obj["t"] < last_t:
            raise TelemetryError(
                f"{path}: line {i + 1}: timestamp went backwards"
            )
        last_t = obj["t"]
        if obj["kind"] == "span_begin":
            span_id = obj.get("span_id")
            if span_id is not None:
                if span_id in open_ids:
                    raise TelemetryError(
                        f"{path}: line {i + 1}: duplicate span_id "
                        f"{span_id!r}"
                    )
                open_ids[span_id] = obj["name"]
            else:
                open_spans.append(obj["name"])
        elif obj["kind"] == "span_end":
            span_id = obj.get("span_id")
            if span_id is not None:
                if span_id not in open_ids:
                    raise TelemetryError(
                        f"{path}: line {i + 1}: span_end {obj['name']!r} "
                        f"has no matching span_begin for span_id "
                        f"{span_id!r}"
                    )
                open_ids.pop(span_id)
            else:
                if not open_spans or open_spans[-1] != obj["name"]:
                    raise TelemetryError(
                        f"{path}: line {i + 1}: span_end {obj['name']!r} "
                        "does not close the innermost open span"
                    )
                open_spans.pop()
    if open_spans:
        raise TelemetryError(f"{path}: unclosed spans: {open_spans}")
    # Id-carrying spans left open are *truncated* (worker crashes), not
    # errors: the log stays valid and analysis tools flag them.
    return len(events)


def read_events(path) -> List[dict]:
    """Parse a JSONL event log into a list of dicts (no validation)."""
    events = []
    with open(path) as handle:
        for i, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"{path}: line {i + 1}: not JSON: {exc}"
                ) from exc
    return events


def final_metrics(events: List[dict]) -> Dict[str, dict]:
    """The last ``metrics`` snapshot in a run's events (or ``{}``)."""
    for obj in reversed(events):
        if obj.get("kind") == "metrics":
            return obj.get("metrics", {})
    return {}
