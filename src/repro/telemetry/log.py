"""One logging setup for the whole library, honoring ``REPRO_LOG_LEVEL``.

Library modules must never call ``logging.basicConfig`` (it hijacks the
root logger of every embedding application).  Instead they ask this module
for a namespaced logger::

    from repro.telemetry import get_logger
    logger = get_logger(__name__)

All ``repro.*`` loggers hang off one ``repro`` parent that gets a single
stderr handler — attached lazily, only if the embedding application has not
configured logging itself — at the level named by ``REPRO_LOG_LEVEL``
(default ``WARNING``).  Applications that do configure logging see our
records propagate normally and our handler stays out of the way.
"""

from __future__ import annotations

import logging
import os
from typing import Optional

_LEVEL_ENV_VAR = "REPRO_LOG_LEVEL"
_ROOT_NAME = "repro"
_configured = False


def _resolve_level(value: Optional[str] = None) -> int:
    name = (value if value is not None
            else os.environ.get(_LEVEL_ENV_VAR, "")).strip().upper()
    if not name:
        return logging.WARNING
    if name.isdigit():
        return int(name)
    resolved = logging.getLevelName(name)
    return resolved if isinstance(resolved, int) else logging.WARNING


def _ensure_configured():
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(_resolve_level())
    # Leave handler wiring to the application when it has any; otherwise
    # give the repro tree one stderr handler so warnings are visible from
    # the CLI without touching the root logger.
    if not root.handlers and not logging.getLogger().handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(handler)
    _configured = True


def get_logger(name: str = _ROOT_NAME) -> logging.Logger:
    """A logger under the ``repro`` namespace with the shared setup."""
    _ensure_configured()
    if name != _ROOT_NAME and not name.startswith(_ROOT_NAME + "."):
        name = f"{_ROOT_NAME}.{name}"
    return logging.getLogger(name)


def reset_for_tests():
    """Forget the lazy setup so tests can exercise it repeatedly."""
    global _configured
    _configured = False
    root = logging.getLogger(_ROOT_NAME)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    root.setLevel(logging.NOTSET)
