"""Timeline export and critical-path analysis over run event logs.

Two consumers of the same span model:

* :func:`chrome_trace` converts any run log (schema 1 or 2) to Chrome
  trace-event JSON — loadable in Perfetto / ``chrome://tracing`` — with
  spans and harness/fabric tasks as duration events, retries, drains,
  quarantines and checkpoint writes as instant events, and one track per
  worker process (remote spans carry their worker pid).
* :func:`critical_path` walks the trace tree and reports the chain of
  spans gating wall-clock: a tiling of the run interval where each
  segment is owned by the deepest span on the gating path, so segment
  durations sum to the run's wall-clock *exactly*, with per-edge slack
  (how much earlier a child finished than its parent).

Both work purely from the JSONL — nothing here re-runs any simulation.

Span placement: local spans start at their ``span_begin`` timestamp and
extend for ``seconds``.  Remote (worker) spans are re-emitted at merge
time, so their envelope ``t`` reflects the merge, not the work; they are
placed ending at the ``span_end`` timestamp and starting ``seconds``
earlier.  Truncated spans (a ``span_begin`` whose worker died before
``span_end``) extend to the end of the run and are flagged.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.telemetry.events import TelemetryError

_EPS = 1e-9


class Span(object):
    """One placed span interval in the trace tree."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end",
                 "truncated", "remote", "pid", "fields")

    def __init__(self, span_id, parent_id, name, start, end,
                 truncated=False, remote=False, pid=None, fields=None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = end
        self.truncated = truncated
        self.remote = remote
        self.pid = pid
        self.fields = fields or {}

    @property
    def seconds(self) -> float:
        return max(0.0, self.end - self.start)


def _log_end(events: List[dict]) -> float:
    return max((e.get("t", 0.0) for e in events), default=0.0)


def collect_spans(events: List[dict]) -> List[Span]:
    """Pair span events (by id when present, by stack otherwise) into
    placed :class:`Span` intervals; unended spans become truncated ones.
    """
    end_t = _log_end(events)
    spans: List[Span] = []
    open_ids: Dict[str, dict] = {}
    open_stack: List[dict] = []
    for obj in events:
        kind = obj.get("kind")
        if kind == "span_begin":
            span_id = obj.get("span_id")
            if span_id is not None:
                open_ids[span_id] = obj
            else:
                open_stack.append(obj)
        elif kind == "span_end":
            span_id = obj.get("span_id")
            if span_id is not None:
                begin = open_ids.pop(span_id, None)
            else:
                begin = open_stack.pop() if open_stack else None
            if begin is None:
                continue
            seconds = obj.get("seconds", 0.0)
            remote = bool(begin.get("remote"))
            if remote:
                end = obj.get("t", 0.0)
                start = max(0.0, end - seconds)
            else:
                start = begin.get("t", 0.0)
                end = start + seconds
            spans.append(Span(
                span_id, begin.get("parent_id"), begin.get("name", "?"),
                start, end, remote=remote, pid=begin.get("pid"),
                fields={k: v for k, v in begin.items()
                        if k not in ("schema", "run", "seq", "t", "kind",
                                     "name", "trace_id", "span_id",
                                     "parent_id", "remote", "pid")},
            ))
    for begin in list(open_ids.values()) + open_stack:
        start = begin.get("t", 0.0)
        spans.append(Span(
            begin.get("span_id"), begin.get("parent_id"),
            begin.get("name", "?"), start, max(start, end_t),
            truncated=True, remote=bool(begin.get("remote")),
            pid=begin.get("pid"),
        ))
    spans.sort(key=lambda s: (s.start, s.end, str(s.span_id)))
    return spans


def trace_ids(events: List[dict]) -> List[str]:
    """Distinct trace ids carried by span events (sorted)."""
    return sorted({e["trace_id"] for e in events if "trace_id" in e})


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace(events: List[dict]) -> dict:
    """Convert run events to the Chrome trace-event JSON object format.

    Tracks: ``pid`` is constant (one run); ``tid`` 0 is the driver
    process, and each worker pid seen on remote spans gets its own tid.
    Timestamps are microseconds of run-relative monotonic time.
    """
    if not events:
        raise TelemetryError("no events to export")
    run_id = events[0].get("run", "?")
    trace_events: List[dict] = []
    tids = {None: 0}

    def tid_for(pid) -> int:
        if pid not in tids:
            tids[pid] = pid
        return tids[pid]

    def us(t: float) -> int:
        return int(round(t * 1e6))

    for span in collect_spans(events):
        args = {k: v for k, v in span.fields.items()}
        if span.truncated:
            args["truncated"] = True
        trace_events.append({
            "name": span.name, "ph": "X", "cat": "span",
            "ts": us(span.start), "dur": us(span.seconds),
            "pid": 1, "tid": tid_for(span.pid), "args": args,
        })
    for obj in events:
        kind = obj.get("kind")
        if kind == "task":
            end = obj.get("t", 0.0)
            seconds = obj.get("seconds", 0.0)
            trace_events.append({
                "name": obj.get("label", "?"), "ph": "X", "cat": "task",
                "ts": us(max(0.0, end - seconds)), "dur": us(seconds),
                "pid": 1, "tid": 0,
                "args": {"attempts": obj.get("attempts"),
                         "status": obj.get("status")},
            })
        elif kind == "event":
            trace_events.append({
                "name": obj.get("name", "?"), "ph": "i", "cat": "event",
                "ts": us(obj.get("t", 0.0)), "pid": 1, "tid": 0, "s": "t",
                "args": {k: v for k, v in obj.items()
                         if k not in ("schema", "run", "seq", "t", "kind",
                                      "name")},
            })
        elif kind in ("run_begin", "run_end"):
            trace_events.append({
                "name": kind, "ph": "i", "cat": "run",
                "ts": us(obj.get("t", 0.0)), "pid": 1, "tid": 0, "s": "g",
                "args": {},
            })
    # Track names, so Perfetto shows "driver" / "worker <pid>".
    trace_events.append({
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": run_id},
    })
    for pid, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        label = "driver" if pid is None else f"worker {pid}"
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": label},
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms",
            "otherData": {"run": run_id}}


def validate_chrome_trace(obj) -> int:
    """Structural check of a Chrome trace-event JSON object.

    Hand-rolled (no jsonschema dependency): the CI smoke job feeds the
    exported file through this before uploading it.  Returns the event
    count.
    """
    if not isinstance(obj, dict):
        raise TelemetryError("chrome trace: top level is not an object")
    trace_events = obj.get("traceEvents")
    if not isinstance(trace_events, list) or not trace_events:
        raise TelemetryError("chrome trace: traceEvents missing or empty")
    for i, entry in enumerate(trace_events):
        if not isinstance(entry, dict):
            raise TelemetryError(f"chrome trace: event {i} is not an object")
        ph = entry.get("ph")
        if ph not in ("X", "i", "I", "M", "B", "E"):
            raise TelemetryError(f"chrome trace: event {i} bad ph {ph!r}")
        if not isinstance(entry.get("name"), str):
            raise TelemetryError(f"chrome trace: event {i} missing name")
        if "pid" not in entry:
            raise TelemetryError(f"chrome trace: event {i} missing pid")
        if ph != "M":
            ts = entry.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise TelemetryError(
                    f"chrome trace: event {i} bad ts {ts!r}"
                )
        if ph == "X":
            dur = entry.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TelemetryError(
                    f"chrome trace: event {i} bad dur {dur!r}"
                )
    json.dumps(obj)  # must be serializable as-is
    return len(trace_events)


# ----------------------------------------------------------------------
# Critical-path analysis
# ----------------------------------------------------------------------
class PathSegment(object):
    """One tile of the critical-path chain."""

    __slots__ = ("name", "span", "start", "end", "depth", "slack")

    def __init__(self, name, span, start, end, depth, slack=None):
        self.name = name
        self.span = span       # owning Span, or None for driver idle time
        self.start = start
        self.end = end
        self.depth = depth
        self.slack = slack     # parent_end - child_end at the entry edge

    @property
    def seconds(self) -> float:
        return max(0.0, self.end - self.start)


def critical_path(events: List[dict]) -> dict:
    """The chain of spans gating wall-clock, as a tiling of the run.

    Walks the trace tree backwards from the end of the run: at every
    point the *gating* child is the one that ends last; time no child
    covers is the owner's own.  Because the segments tile the interval,
    their durations sum to the run's wall-clock exactly — the reported
    ``coverage`` is 1.0 by construction and exists as a cross-check.
    """
    if not events:
        raise TelemetryError("no events to analyse")
    wall = _log_end(events)
    spans = collect_spans(events)
    by_parent: Dict[Optional[str], List[Span]] = {}
    known = {s.span_id for s in spans if s.span_id is not None}
    for s in spans:
        parent = s.parent_id if s.parent_id in known else None
        by_parent.setdefault(parent, []).append(s)

    segments: List[PathSegment] = []

    def walk(owner: Optional[Span], lo: float, hi: float, depth: int,
             slack: Optional[float]):
        """Tile [lo, hi] with the gating chain under ``owner``."""
        key = owner.span_id if owner is not None else None
        children = [c for c in by_parent.get(key, ())
                    if c.start < hi - _EPS and c.end > lo + _EPS]
        name = owner.name if owner is not None else "(driver)"
        cursor = hi
        entry_slack = slack
        while cursor > lo + _EPS:
            gating = None
            gating_end = lo
            for child in children:
                if child.start < cursor - _EPS:
                    clipped = min(child.end, cursor)
                    if clipped > gating_end + _EPS:
                        gating, gating_end = child, clipped
            if gating is None:
                segments.append(PathSegment(name, owner, lo, cursor, depth,
                                            entry_slack))
                return
            if gating_end < cursor - _EPS:
                # Nothing covered (gating_end, cursor): the owner's own
                # time gates here (serial driver work between children).
                segments.append(PathSegment(name, owner, gating_end, cursor,
                                            depth, entry_slack))
                entry_slack = None
            child_lo = max(gating.start, lo)
            walk(gating, child_lo, gating_end, depth + 1,
                 round(cursor - gating_end, 6))
            cursor = child_lo
            children = [c for c in children if c is not gating]

    walk(None, 0.0, wall, 0, None)
    segments.sort(key=lambda seg: (seg.start, seg.depth))
    total = sum(seg.seconds for seg in segments)
    truncated = [s for s in spans if s.truncated]
    return {
        "wall_seconds": round(wall, 6),
        "chain_seconds": round(total, 6),
        "coverage": round(total / wall, 6) if wall else 1.0,
        "segments": segments,
        "truncated": truncated,
        "spans": len(spans),
    }


def render_critical_path(run_id: str, analysis: dict) -> str:
    """Human-readable critical-path report (CLI output)."""
    lines = [f"# Critical path — {run_id}", ""]
    lines.append(f"  wall-clock             {analysis['wall_seconds']:.3f}s")
    lines.append(f"  chain total            {analysis['chain_seconds']:.3f}s "
                 f"({analysis['coverage'] * 100:.1f}% of wall-clock)")
    lines.append(f"  spans in tree          {analysis['spans']}")
    if analysis["truncated"]:
        names = ", ".join(sorted({s.name for s in analysis["truncated"]}))
        lines.append(f"  truncated spans        "
                     f"{len(analysis['truncated'])} ({names})")
    lines.append("")
    lines.append(f"  {'start':>9s}  {'dur':>9s}  {'slack':>8s}  span")
    for seg in analysis["segments"]:
        if seg.seconds < 1e-6:
            continue
        slack = f"{seg.slack:8.3f}" if seg.slack is not None else "       —"
        marker = " [truncated]" if seg.span is not None and \
            seg.span.truncated else ""
        indent = "  " * seg.depth
        lines.append(f"  {seg.start:9.3f}  {seg.seconds:9.3f}  {slack}  "
                     f"{indent}{seg.name}{marker}")
    return "\n".join(lines).rstrip() + "\n"
