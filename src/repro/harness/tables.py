"""Result tables: the rows/series the paper's figures report.

A :class:`ResultTable` holds one value per (benchmark, column) plus derived
geometric means, and renders as aligned ASCII — the textual equivalent of
one bar-chart group per benchmark.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


class ResultTable:
    """A named table of float cells indexed by (row, column)."""

    def __init__(self, title: str, columns: Sequence[str],
                 fmt: str = "{:.3f}"):
        self.title = title
        self.columns = list(columns)
        self.fmt = fmt
        self.rows: List[str] = []
        self._cells: Dict[str, Dict[str, Optional[float]]] = {}

    def set(self, row: str, column: str, value: Optional[float]):
        if column not in self.columns:
            raise KeyError(f"unknown column {column!r}")
        if row not in self._cells:
            self._cells[row] = {}
            self.rows.append(row)
        self._cells[row][column] = value

    def get(self, row: str, column: str) -> Optional[float]:
        return self._cells.get(row, {}).get(column)

    def column_values(self, column: str) -> List[float]:
        values = []
        for row in self.rows:
            value = self._cells[row].get(column)
            if value is not None:
                values.append(value)
        return values

    def geomean(self, column: str) -> Optional[float]:
        values = [v for v in self.column_values(column) if v > 0]
        if not values:
            return None
        return math.exp(sum(math.log(v) for v in values) / len(values))

    # ------------------------------------------------------------------
    def render(self, with_geomean=True) -> str:
        name_width = max(
            [len("benchmark")] + [len(row) for row in self.rows] + [7]
        )
        col_width = max([10] + [len(c) + 1 for c in self.columns])
        lines = [self.title, "-" * len(self.title)]
        header = "benchmark".ljust(name_width) + "".join(
            column.rjust(col_width) for column in self.columns
        )
        lines.append(header)
        for row in self.rows:
            cells = []
            for column in self.columns:
                value = self._cells[row].get(column)
                cells.append(
                    (self.fmt.format(value) if value is not None else "-")
                    .rjust(col_width)
                )
            lines.append(row.ljust(name_width) + "".join(cells))
        if with_geomean:
            cells = []
            for column in self.columns:
                value = self.geomean(column)
                cells.append(
                    (self.fmt.format(value) if value is not None else "-")
                    .rjust(col_width)
                )
            lines.append("geomean".ljust(name_width) + "".join(cells))
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Dict[str, Optional[float]]]:
        return {row: dict(cells) for row, cells in self._cells.items()}
