"""Workload/trace management for the experiment harness.

A :class:`Suite` lazily generates benchmark programs and caches the
functional traces of each (benchmark, transformation) pair.  Timing replays
(many per trace: cache sizes, widths, placements, RT geometries) then reuse
the cached traces, which is what makes regenerating all of Figures 6-8
tractable.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.acf.base import AcfInstallation, plain_installation
from repro.acf.composition import build_composition
from repro.acf.compression import (
    CompressionOptions,
    CompressionResult,
    compress_image,
)
from repro.acf.mfi import attach_mfi, rewrite_mfi
from repro.core.config import DiseConfig
from repro.program.image import ProgramImage
from repro.sim.config import MachineConfig
from repro.sim.cycle import CycleResult, simulate_trace
from repro.sim.trace import TraceResult
from repro.workloads.generator import generate_benchmark
from repro.workloads.specint import BENCHMARK_NAMES, get_profile

#: Functional runs use a perfect RT: RT behaviour is replayed inside the
#: timing model, so the functional pass should not burn time there.
_FUNCTIONAL_DISE = DiseConfig(rt_perfect=True)

#: Generous dynamic-instruction budget for transformed binaries.
_MAX_STEPS = 30_000_000


class Suite:
    """Lazily generated benchmarks + cached functional traces."""

    def __init__(self, benchmarks: Optional[Sequence[str]] = None,
                 scale: float = 1.0):
        self.benchmarks = tuple(benchmarks or BENCHMARK_NAMES)
        self.scale = scale
        self._images: Dict[str, ProgramImage] = {}
        self._traces: Dict[Tuple, TraceResult] = {}
        self._compressions: Dict[Tuple, CompressionResult] = {}
        self._cycles: Dict[Tuple, CycleResult] = {}

    # ------------------------------------------------------------------
    def image(self, bench: str) -> ProgramImage:
        if bench not in self._images:
            self._images[bench] = generate_benchmark(
                get_profile(bench), scale=self.scale
            )
        return self._images[bench]

    def _run(self, key: Tuple, installation: AcfInstallation) -> TraceResult:
        if key not in self._traces:
            self._traces[key] = installation.run(
                dise_config=_FUNCTIONAL_DISE, max_steps=_MAX_STEPS
            )
        return self._traces[key]

    # ------------------------------------------------------------------
    # Traces per transformation
    # ------------------------------------------------------------------
    def trace_plain(self, bench: str) -> TraceResult:
        return self._run((bench, "plain"),
                         plain_installation(self.image(bench)))

    def trace_mfi(self, bench: str, variant: str) -> TraceResult:
        return self._run((bench, "mfi", variant),
                         attach_mfi(self.image(bench), variant))

    def trace_rewrite(self, bench: str) -> TraceResult:
        return self._run((bench, "rewrite"), rewrite_mfi(self.image(bench)))

    def compression(self, bench: str,
                    options: CompressionOptions,
                    label: str) -> CompressionResult:
        key = (bench, "compress", label)
        if key not in self._compressions:
            self._compressions[key] = compress_image(
                self.image(bench), options
            )
        return self._compressions[key]

    def trace_compressed(self, bench: str, options: CompressionOptions,
                         label: str) -> TraceResult:
        result = self.compression(bench, options, label)
        return self._run((bench, "compressed", label),
                         result.installation())

    def composition(self, bench: str, scheme: str
                    ) -> Tuple[CompressionResult, AcfInstallation]:
        key = (bench, "composition", scheme)
        if key not in self._compressions:
            result, installation = build_composition(self.image(bench),
                                                     scheme)
            self._compressions[key] = result
            self._traces.setdefault(
                (bench, "composed", scheme),
                installation.run(dise_config=_FUNCTIONAL_DISE,
                                 max_steps=_MAX_STEPS),
            )
        return self._compressions[key], None

    def trace_composition(self, bench: str, scheme: str) -> TraceResult:
        self.composition(bench, scheme)
        return self._traces[(bench, "composed", scheme)]

    # ------------------------------------------------------------------
    def cycles(self, trace: TraceResult,
               config: Optional[MachineConfig] = None) -> CycleResult:
        # Steady-state measurement: our runs are shorter than the paper's
        # complete-input runs, so cold misses are warmed away.  Results are
        # memoised — figures share many (trace, config) replays.
        key = (id(trace), repr(config))
        if key not in self._cycles:
            self._cycles[key] = simulate_trace(trace, config,
                                               warm_start=True)
        return self._cycles[key]
