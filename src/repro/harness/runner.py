"""Workload/trace management for the experiment harness.

A :class:`Suite` lazily generates benchmark programs and caches the
functional traces of each (benchmark, transformation) pair.  Timing replays
(many per trace: cache sizes, widths, placements, RT geometries) then reuse
the cached traces, which is what makes regenerating all of Figures 6-8
tractable.

Two accelerators sit underneath (see :mod:`repro.harness.parallel` and
:mod:`repro.harness.trace_cache`):

* :meth:`Suite.prefetch` runs a figure's functional simulations — and the
  timing replays the figure is known to need — across worker processes;
* a persistent content-addressed cache makes repeat runs warm-start, for
  serial and parallel execution alike.  ``REPRO_TRACE_CACHE`` points it at
  a directory (or disables it with ``0``/``off``); ``REPRO_JOBS`` sets the
  default worker count.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.acf.base import AcfInstallation, plain_installation
from repro.acf.composition import build_composition
from repro.acf.compression import (
    CompressionOptions,
    CompressionResult,
    compress_image,
)
from repro.acf.mfi import attach_mfi, rewrite_mfi
from repro.harness.parallel import (
    FUNCTIONAL_DISE,
    MAX_STEPS,
    TraceTask,
    resolve_jobs,
    run_tasks,
)
from repro.harness.trace_cache import (
    LazyTrace,
    cycle_key,
    machine_trace_key,
    open_cache,
    trace_fingerprint,
)
from repro.program.image import ProgramImage
from repro.sim.config import MachineConfig
from repro.sim.cycle import CycleResult, resolve_cycle_engine, simulate_trace
from repro.sim.trace import TraceResult
from repro.telemetry import events as _events
from repro.workloads.generator import generate_benchmark
from repro.workloads.specint import BENCHMARK_NAMES, get_profile

# Backwards-compatible aliases (pre-parallel names).
_FUNCTIONAL_DISE = FUNCTIONAL_DISE
_MAX_STEPS = MAX_STEPS


class Suite:
    """Lazily generated benchmarks + cached functional traces.

    ``jobs`` sets the default parallel worker count (``None`` defers to the
    ``REPRO_JOBS`` environment variable); ``cache`` configures the
    persistent trace cache: ``"auto"`` (the default) honours
    ``REPRO_TRACE_CACHE``, ``None`` disables, and a path or
    :class:`~repro.harness.trace_cache.TraceCache` selects a directory.
    """

    def __init__(self, benchmarks: Optional[Sequence[str]] = None,
                 scale: float = 1.0, jobs: Optional[int] = None,
                 cache="auto", cycle_engine: Optional[str] = None):
        self.benchmarks = tuple(benchmarks or BENCHMARK_NAMES)
        self.scale = scale
        self.jobs = jobs
        #: Timing-replay engine (None honours ``REPRO_CYCLE``).  Both
        #: engines are bit-identical, so the persistent cycle cache and the
        #: in-memory memo are engine-agnostic.
        self.cycle_engine = resolve_cycle_engine(cycle_engine)
        self.cache = open_cache(cache)
        self._images: Dict[str, ProgramImage] = {}
        self._traces: Dict[Tuple, TraceResult] = {}
        self._compressions: Dict[Tuple, CompressionResult] = {}
        self._cycles: Dict[Tuple, CycleResult] = {}

    # ------------------------------------------------------------------
    def image(self, bench: str) -> ProgramImage:
        if bench not in self._images:
            self._images[bench] = generate_benchmark(
                get_profile(bench), scale=self.scale
            )
        return self._images[bench]

    def _execute_installation(self, installation: AcfInstallation
                              ) -> TraceResult:
        """One functional run, through the persistent cache when possible."""
        machine = installation.make_machine(FUNCTIONAL_DISE)
        digest = None
        if self.cache is not None:
            digest = machine_trace_key(installation, machine,
                                       repr(FUNCTIONAL_DISE), MAX_STEPS)
            if digest is not None and self.cache.has_trace(digest):
                # Deserialization is deferred: a warm figure run that finds
                # all its cycle replays cached never touches the ops.
                return LazyTrace(
                    self.cache, digest,
                    recompute=lambda: machine.run(max_steps=MAX_STEPS),
                )
        trace = machine.run(max_steps=MAX_STEPS)
        trace.cache_key = digest
        if digest is not None:
            self.cache.store_trace(digest, trace)
        return trace

    def _run(self, key: Tuple, installation: AcfInstallation) -> TraceResult:
        if key not in self._traces:
            self._traces[key] = self._execute_installation(installation)
        return self._traces[key]

    # ------------------------------------------------------------------
    # Traces per transformation
    # ------------------------------------------------------------------
    def trace_plain(self, bench: str) -> TraceResult:
        key = (bench, "plain")
        if key not in self._traces:
            self._run(key, plain_installation(self.image(bench)))
        return self._traces[key]

    def trace_mfi(self, bench: str, variant: str) -> TraceResult:
        key = (bench, "mfi", variant)
        if key not in self._traces:
            self._run(key, attach_mfi(self.image(bench), variant))
        return self._traces[key]

    def trace_rewrite(self, bench: str) -> TraceResult:
        key = (bench, "rewrite")
        if key not in self._traces:
            self._run(key, rewrite_mfi(self.image(bench)))
        return self._traces[key]

    def compression(self, bench: str,
                    options: CompressionOptions,
                    label: str) -> CompressionResult:
        key = (bench, "compress", label)
        if key not in self._compressions:
            self._compressions[key] = compress_image(
                self.image(bench), options
            )
        return self._compressions[key]

    def trace_compressed(self, bench: str, options: CompressionOptions,
                         label: str) -> TraceResult:
        key = (bench, "compressed", label)
        if key not in self._traces:
            result = self.compression(bench, options, label)
            self._run(key, result.installation())
        return self._traces[key]

    def composition(self, bench: str, scheme: str
                    ) -> Tuple[CompressionResult, AcfInstallation]:
        ckey = (bench, "composition", scheme)
        tkey = (bench, "composed", scheme)
        if ckey not in self._compressions or tkey not in self._traces:
            result, installation = build_composition(self.image(bench),
                                                     scheme)
            self._compressions.setdefault(ckey, result)
            if tkey not in self._traces:
                self._traces[tkey] = self._execute_installation(installation)
        return self._compressions[ckey], None

    def trace_composition(self, bench: str, scheme: str) -> TraceResult:
        self.composition(bench, scheme)
        return self._traces[(bench, "composed", scheme)]

    # ------------------------------------------------------------------
    def cycles(self, trace: TraceResult,
               config: Optional[MachineConfig] = None) -> CycleResult:
        # Steady-state measurement: our runs are shorter than the paper's
        # complete-input runs, so cold misses are warmed away.  Results are
        # memoised — figures share many (trace, config) replays.  The key is
        # a content fingerprint: id(trace) could be recycled by the
        # allocator after a trace is garbage-collected, silently returning
        # another trace's results.
        fingerprint = trace_fingerprint(trace)
        key = (fingerprint, repr(config))
        if key not in self._cycles:
            result = None
            persistent_key = None
            if self.cache is not None and trace.cache_key is not None:
                persistent_key = cycle_key(trace.cache_key, repr(config),
                                           True)
                result = self.cache.load_cycles(persistent_key)
            if result is None:
                result = simulate_trace(trace, config, warm_start=True,
                                        engine=self.cycle_engine)
                if persistent_key is not None:
                    self.cache.store_cycles(persistent_key, result)
            self._cycles[key] = result
        return self._cycles[key]

    # ------------------------------------------------------------------
    # Parallel execution
    # ------------------------------------------------------------------
    def task(self, kind: str, bench: str, **fields) -> TraceTask:
        """Build a :class:`TraceTask` for this suite's scale."""
        return TraceTask(bench=bench, scale=self.scale, kind=kind, **fields)

    def prefetch(self, plan: Iterable, jobs: Optional[int] = None) -> int:
        """Fan a figure's functional simulations (and known timing replays)
        out across worker processes, populating the in-memory memos.

        ``plan`` entries are ``TraceTask`` or ``(TraceTask, configs)``.
        Tasks whose traces are already in memory are skipped.  With an
        effective worker count of 1 this is a no-op (the serial path will
        compute everything on demand, through the persistent cache).
        Returns the number of tasks executed.
        """
        jobs = resolve_jobs(self.jobs if jobs is None else jobs)
        if jobs <= 1:
            return 0
        normalized = []
        for entry in plan:
            task, configs = (entry if isinstance(entry, tuple)
                             else (entry, ()))
            if task.suite_key() in self._traces:
                continue
            normalized.append((task, tuple(configs)))
        if not normalized:
            return 0
        with _events.span("suite.prefetch", tasks=len(normalized),
                          jobs=jobs):
            results = run_tasks(normalized, jobs=jobs, cache=self.cache)
        for task, (digest, trace, cycle_results) in results.items():
            self._traces.setdefault(task.suite_key(), trace)
            fingerprint = trace_fingerprint(trace)
            for config_repr, result in cycle_results.items():
                self._cycles.setdefault((fingerprint, config_repr), result)
        return len(results)

    def run_parallel(self, tasks: Iterable[TraceTask],
                     jobs: Optional[int] = None) -> Dict[Tuple, TraceResult]:
        """Run trace tasks in parallel and return {suite key: trace}.

        Unlike :meth:`prefetch` this always executes (even with one job)
        and returns the traces directly.
        """
        normalized = [(task, ()) for task in tasks]
        results = run_tasks(normalized,
                            jobs=resolve_jobs(self.jobs if jobs is None
                                              else jobs),
                            cache=self.cache)
        out = {}
        for task, (digest, trace, _) in results.items():
            self._traces.setdefault(task.suite_key(), trace)
            out[task.suite_key()] = self._traces[task.suite_key()]
        return out
