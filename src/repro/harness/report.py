"""Markdown report generation for the full evaluation.

``build_report`` runs every experiment on a suite and renders one markdown
document — the machinery behind regenerating EXPERIMENTS.md's raw data.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.harness.config import render_config_table
from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.runner import Suite
from repro.harness.tables import ResultTable
from repro.telemetry import events as _events
from repro.telemetry import registry as _telemetry

#: Figure id -> the paper's one-line qualitative claim, for side-by-side
#: reading in the generated report.
PAPER_CLAIMS = {
    "fig6_top": "DISE MFI beats binary rewriting; DISE3 beats DISE4; "
                "per-expansion stalls cost more than an extra pipe stage.",
    "fig6_cache": "Rewriting's static (I-cache) cost grows as the cache "
                  "shrinks; DISE only pays the dynamic cost.",
    "fig6_width": "Wider machines absorb DISE's dynamic cost; rewriting "
                  "keeps its static cost.",
    "fig7_ratio": "Parameterization and branch compression let DISE "
                  "out-compress the dedicated decompressor (65% vs 75%).",
    "fig7_perf": "Decompression is ~free at 32KB and compensates for "
                 "small instruction caches.",
    "fig7_rt": "A 2K 2-way RT (nearly) matches perfect; 512 entries hurt "
               "large production working sets.",
    "fig8_perf": "dise+dise wins; rewriting-based compositions suffer, "
                 "especially at small caches.",
    "fig8_rt": "Composition inflates RT working sets; the 150-cycle "
               "composing miss handler costs factors more (5x the norm at "
               "2K 2-way).",
}


def table_to_markdown(table: ResultTable) -> str:
    """Render a ResultTable as a GitHub-flavoured markdown table."""
    header = "| benchmark | " + " | ".join(table.columns) + " |"
    rule = "|" + "---|" * (len(table.columns) + 1)
    lines = [header, rule]
    for row in table.rows:
        cells = []
        for column in table.columns:
            value = table.get(row, column)
            cells.append(table.fmt.format(value) if value is not None else "-")
        lines.append(f"| {row} | " + " | ".join(cells) + " |")
    geocells = []
    for column in table.columns:
        value = table.geomean(column)
        geocells.append(table.fmt.format(value) if value is not None else "-")
    lines.append("| **geomean** | " + " | ".join(geocells) + " |")
    return "\n".join(lines)


def _render_section(name: str, suite: Suite) -> str:
    table = ALL_EXPERIMENTS[name](suite)
    parts = [f"## {table.title}", ""]
    claim = PAPER_CLAIMS.get(name)
    if claim:
        parts.append(f"*Paper:* {claim}")
        parts.append("")
    parts.append(table_to_markdown(table))
    parts.append("")
    return "\n".join(parts)


def report_fingerprint(suite: Suite,
                       experiments: Optional[Sequence[str]] = None) -> dict:
    """Checkpoint identity of a report run: everything that changes its
    rendered content."""
    return {
        "benchmarks": list(suite.benchmarks),
        "scale": suite.scale,
        "experiments": list(experiments or ALL_EXPERIMENTS),
    }


def build_report(suite: Optional[Suite] = None,
                 experiments: Optional[Sequence[str]] = None,
                 title="DISE reproduction — measured results",
                 checkpoint=None) -> str:
    """Run experiments and render one markdown report.

    With a :class:`~repro.harness.checkpoint.RunCheckpoint`, each finished
    experiment section is persisted immediately and already-checkpointed
    sections are replayed instead of recomputed — an interrupted report run
    resumes where it died.
    """
    suite = suite or Suite()
    names = list(experiments or ALL_EXPERIMENTS)
    parts = [f"# {title}", "", "```", render_config_table(), "```", ""]
    for name in names:
        section = checkpoint.completed(name) if checkpoint else None
        if section is None:
            with _events.span("experiment", experiment=name):
                section = _render_section(name, suite)
            if checkpoint is not None:
                checkpoint.record(name, section)
        parts.append(section)
    if _telemetry.enabled():
        parts.append(render_telemetry_section())
    return "\n".join(parts)


def render_telemetry_section() -> str:
    """The embedded ``telemetry`` section of a harness report."""
    snapshot = _telemetry.snapshot()
    return "\n".join([
        "## Telemetry", "",
        "```json",
        json.dumps(snapshot, indent=2, sort_keys=True),
        "```", "",
    ])
