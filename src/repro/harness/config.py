"""The Section 4 configuration table, as reproducible text.

The paper's evaluation section opens with the simulated machine and DISE
configuration; ``render_config_table`` regenerates it from the defaults this
reproduction actually uses, so documentation and code cannot drift apart.
"""

from __future__ import annotations

from repro.core.config import DiseConfig
from repro.sim.config import KB, MachineConfig


def render_config_table(machine: MachineConfig = None) -> str:
    """Render the simulated-machine configuration as aligned text."""
    machine = machine or MachineConfig()
    dise: DiseConfig = machine.dise
    rows = [
        ("core", f"{machine.width}-wide superscalar, "
                 f"{machine.pipeline_stages}-stage pipeline"),
        ("window", f"{machine.rob_entries}-entry ROB, "
                   f"{machine.rs_entries} reservation stations"),
        ("branch prediction",
         f"gshare ({1 << machine.predictor.gshare_bits} counters), "
         f"{machine.predictor.btb_entries}-entry BTB, "
         f"{machine.predictor.ras_entries}-entry RAS; "
         f"{machine.mispredict_penalty}-cycle refill"),
        ("L1 I-cache", _cache_str(machine.il1)),
        ("L1 D-cache", _cache_str(machine.dl1)),
        ("L2", _cache_str(machine.l2) + f"; memory {machine.mem_latency} cycles"),
        ("DISE PT", f"{dise.pt_entries} entries x {dise.pt_entry_bytes} B "
                    f"= {dise.pt_bytes} B"),
        ("DISE RT", f"{dise.rt_entries} entries x {dise.rt_entry_bytes} B "
                    f"= {dise.rt_bytes // KB} KB, {dise.rt_assoc}-way"),
        ("DISE placement", dise.placement),
        ("PT/RT miss", f"flush + {dise.simple_miss_cycles} cycles "
                       f"({dise.compose_miss_cycles} with composition)"),
    ]
    width = max(len(name) for name, _ in rows)
    lines = ["Simulated machine (Section 4 defaults)",
             "-" * 38]
    lines += [f"{name.ljust(width)}  {value}" for name, value in rows]
    return "\n".join(lines)


def _cache_str(config) -> str:
    if config is None:
        return "perfect"
    return (f"{config.size_bytes // KB} KB, {config.assoc}-way, "
            f"{config.line_bytes} B lines, {config.hit_latency}-cycle hit")
