"""Persistent, content-addressed cache for functional traces.

Regenerating the paper's figures replays a handful of functional traces
under dozens of machine configurations; the traces themselves are pure
functions of (program image, installed productions, initial machine state,
DISE config, step budget).  This module caches them — and the per-config
:class:`~repro.sim.cycle.CycleResult` replays — on disk, keyed by a sha256
digest over exactly those inputs, so repeated figure runs, CI jobs, and
parallel workers all warm-start.

Layout (default root ``~/.cache/repro-dise``, override with the
``REPRO_TRACE_CACHE`` env var; set it to ``0``/``off`` to disable)::

    <root>/traces/<digest>.trc    zlib-compressed pickled trace payload
    <root>/cycles/<digest>.cyc    zlib-compressed pickled CycleResult

Entries are written atomically (tmp file + ``os.replace``) so concurrent
workers can share one cache directory.  Every entry is framed with a magic
tag and a truncated sha256 of its payload; an entry that fails the check —
truncated write, bit rot, a stray file — is *quarantined* (moved to
``<root>/quarantine/``) and reads as a miss, so the caller regenerates it
without user intervention.  Keys embed :data:`SCHEMA_VERSION` — bump it
whenever trace semantics or the serialized form change and every stale
entry silently misses.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import zlib
from array import array
from pathlib import Path
from typing import Iterable, Optional

from repro.core.production import ProductionSet
from repro.errors import CacheCorruptionError
from repro.program.image import ProgramImage
from repro.sim.memory import Memory
from repro.sim.trace import OpColumns, TraceResult
from repro.telemetry import get_logger
from repro.telemetry import registry as _telemetry

logger = get_logger(__name__)

#: Bump when the trace format, Op fields, or generator semantics change.
#: 2: entries gained the integrity frame (magic + content digest).
#: 3: structure-of-arrays payload — the five trace columns travel as raw
#:    ``array('Q')`` buffers (plus the recorder's byte order) instead of
#:    per-op pickled tuples.
SCHEMA_VERSION = 3

_ENV_VAR = "REPRO_TRACE_CACHE"
_DISABLED_VALUES = ("0", "off", "none", "no", "false")


class CacheError(CacheCorruptionError, RuntimeError):
    """Raised for malformed payloads (callers treat it as a miss).

    Part of the :mod:`repro.errors` taxonomy; keeps its historical
    ``RuntimeError`` base for existing ``except`` clauses.
    """


# ----------------------------------------------------------------------
# Integrity framing
# ----------------------------------------------------------------------
#: File header of a framed cache entry (version baked into the magic).
_MAGIC = b"RDTC3\n"
#: Truncated sha256 length — 64 bits of integrity is plenty for rot
#: detection (this is not an authentication boundary).
_DIGEST_BYTES = 16


def _frame_version(path: Path) -> Optional[int]:
    """Schema version baked into an entry's ``RDTC<n>`` magic.

    Returns ``None`` (never raises) for unreadable, truncated, or
    foreign files, so maintenance commands can walk a shared cache
    directory safely.
    """
    try:
        with open(path, "rb") as fh:
            head = fh.read(16)
    except OSError:
        return None
    if not head.startswith(b"RDTC"):
        return None
    end = head.find(b"\n", 4)
    if end < 0:
        return None
    try:
        return int(head[4:end])
    except ValueError:
        return None


def frame_payload(payload: bytes) -> bytes:
    """Wrap payload bytes with the magic tag and their content digest."""
    return _MAGIC + hashlib.sha256(payload).digest()[:_DIGEST_BYTES] + payload


def unframe_payload(data: bytes) -> bytes:
    """Verify and strip the integrity frame; raises :class:`CacheError`."""
    header = len(_MAGIC) + _DIGEST_BYTES
    if len(data) < header or not data.startswith(_MAGIC):
        raise CacheError("cache entry has no integrity header")
    digest = data[len(_MAGIC):header]
    payload = data[header:]
    if hashlib.sha256(payload).digest()[:_DIGEST_BYTES] != digest:
        raise CacheError("cache entry failed its content digest")
    return payload


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def image_fingerprint(image: ProgramImage) -> str:
    """Stable digest of everything execution can observe in an image.

    Memoised on the image: transformations build *new* images rather than
    mutating, so the digest of a given object never changes.
    """
    cached = getattr(image, "_cached_fingerprint", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    for instr in image.instructions:
        h.update(repr((instr.opcode.code, instr.ra, instr.rb, instr.rc,
                       instr.imm, instr.target)).encode())
    h.update(repr(tuple(image.addresses)).encode())
    h.update(repr(tuple(image.sizes)).encode())
    h.update(repr(tuple(image.target_index)).encode())
    h.update(repr((image.entry_index, image.text_base, image.data_base,
                   image.data_size)).encode())
    h.update(repr(sorted(image.data_words.items())).encode())
    digest = h.hexdigest()
    try:
        image._cached_fingerprint = digest
    except AttributeError:
        pass
    return digest


def production_set_fingerprint(pset: ProductionSet) -> str:
    """Structural digest of one production set (ProductionSet has no
    value-semantics repr of its own; its members are frozen dataclasses)."""
    h = hashlib.sha256()
    h.update(repr((pset.name, pset.scope)).encode())
    for production in pset.productions:
        h.update(repr(production).encode())
    for seq_id in sorted(pset.replacements):
        h.update(repr((seq_id, pset.replacements[seq_id])).encode())
    return h.hexdigest()


def trace_key(image: ProgramImage,
              production_sets: Iterable[ProductionSet],
              init_regs: Iterable[int],
              init_memory: dict,
              dise_config_repr: str,
              max_steps: int) -> str:
    """The cache key for one functional run.

    ``init_regs``/``init_memory`` are the post-initialisation register file
    and data memory — they capture whatever the installation's
    ``init_machine`` callback seeded, without having to fingerprint
    arbitrary Python code.  Installations whose callbacks do more than seed
    state (e.g. register ``ctrl`` handlers) must not be cached;
    :func:`machine_trace_key` checks that.
    """
    h = hashlib.sha256()
    h.update(f"schema={SCHEMA_VERSION}".encode())
    h.update(image_fingerprint(image).encode())
    for pset in production_sets:
        h.update(production_set_fingerprint(pset).encode())
    h.update(repr(tuple(init_regs)).encode())
    h.update(repr(sorted(init_memory.items())).encode())
    h.update(dise_config_repr.encode())
    h.update(f"max_steps={max_steps}".encode())
    return h.hexdigest()


def machine_trace_key(installation, machine, dise_config_repr: str,
                      max_steps: int) -> Optional[str]:
    """Key for running ``installation`` on a freshly initialised ``machine``.

    Returns ``None`` when the run is uncacheable: a registered ``ctrl``
    handler is arbitrary Python whose behaviour the key cannot capture.
    """
    if machine.control_handlers:
        return None
    return trace_key(installation.image, installation.production_sets,
                     machine.regs, machine.mem.snapshot(),
                     dise_config_repr, max_steps)


def trace_fingerprint(trace: TraceResult) -> str:
    """A stable content digest for an in-memory trace.

    Uses the cache key when the trace came from (or went into) the
    persistent cache; otherwise hashes the serialized content once and
    memoises it on the trace.  Replaces identity-based memo keys, whose
    ids can be recycled after garbage collection.
    """
    if trace.cache_key is not None:
        return trace.cache_key
    if trace._fingerprint is None:
        h = hashlib.sha256()
        h.update(b"content:")
        h.update(serialize_trace(trace))
        trace._fingerprint = h.hexdigest()
    return trace._fingerprint


def cycle_key(trace_digest: str, config_repr: str, warm_start: bool) -> str:
    """The cache key for one timing replay of a cached trace."""
    h = hashlib.sha256()
    h.update(f"schema={SCHEMA_VERSION}".encode())
    h.update(trace_digest.encode())
    h.update(config_repr.encode())
    h.update(repr(warm_start).encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Trace serialization
# ----------------------------------------------------------------------
def serialize_trace(trace: TraceResult) -> bytes:
    """Compact bytes for a trace: raw column buffers, zlib'd.

    The five structure-of-arrays columns travel as ``array('Q').tobytes()``
    blobs tagged with the recorder's byte order; the sparse expansion map
    stays a plain dict.  Output is deterministic for a given trace — the
    parallel harness compares serialized bytes across workers.
    """
    cols = trace.columns
    payload = {
        "schema": SCHEMA_VERSION,
        "byteorder": sys.byteorder,
        "cols": {
            "pc": cols.pc.tobytes(),
            "meta": cols.meta.tobytes(),
            "mem": cols.mem.tobytes(),
            "target": cols.target.tobytes(),
            "srcs": cols.srcs.tobytes(),
            "exp": dict(sorted(cols.exp.items())),
        },
        "outputs": list(trace.outputs),
        "fault_code": trace.fault_code,
        "halted": trace.halted,
        "instructions": trace.instructions,
        "app_instructions": trace.app_instructions,
        "expansions": trace.expansions,
        "final_regs": tuple(trace.final_regs),
        "final_memory": trace.final_memory.snapshot(),
    }
    return zlib.compress(pickle.dumps(payload, protocol=4), level=1)


def _column(blob: bytes, swap: bool) -> array:
    col = array("Q")
    col.frombytes(blob)
    if swap:
        col.byteswap()
    return col


def deserialize_trace(data: bytes) -> TraceResult:
    """Rebuild a :class:`TraceResult` from :func:`serialize_trace` bytes."""
    try:
        payload = pickle.loads(zlib.decompress(data))
    except Exception as exc:  # corrupt/truncated entry
        raise CacheError(f"undecodable trace payload: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
        raise CacheError("trace payload schema mismatch")
    try:
        raw = payload["cols"]
        swap = payload["byteorder"] != sys.byteorder
        cols = OpColumns()
        cols.pc = _column(raw["pc"], swap)
        cols.meta = _column(raw["meta"], swap)
        cols.mem = _column(raw["mem"], swap)
        cols.target = _column(raw["target"], swap)
        cols.srcs = _column(raw["srcs"], swap)
        cols.exp = dict(raw["exp"])
        return TraceResult(
            columns=cols,
            outputs=payload["outputs"],
            fault_code=payload["fault_code"],
            halted=payload["halted"],
            instructions=payload["instructions"],
            app_instructions=payload["app_instructions"],
            expansions=payload["expansions"],
            final_regs=payload["final_regs"],
            final_memory=Memory(payload["final_memory"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CacheError(f"malformed trace payload: {exc}") from exc


class LazyTrace:
    """A cached trace that defers deserialization until it is needed.

    Warm figure runs usually need nothing from a trace beyond its cache
    key (the per-config cycle results are cached under it), so unpickling
    millions of :class:`~repro.sim.trace.Op` records up front would
    dominate the warm path.  This proxy carries the key; the first access
    to any real trace attribute materialises the underlying
    :class:`TraceResult` from the cache (or via ``recompute`` if the entry
    vanished or rotted in the meantime) and delegates from then on —
    including attribute writes, so the timing model's warm-state memo
    lands on the shared underlying trace.
    """

    _OWN = frozenset(("cache_key", "_cache", "_recompute", "_real"))

    def __init__(self, cache: "TraceCache", digest: str, recompute=None):
        object.__setattr__(self, "cache_key", digest)
        object.__setattr__(self, "_cache", cache)
        object.__setattr__(self, "_recompute", recompute)
        object.__setattr__(self, "_real", None)

    def materialize(self) -> TraceResult:
        trace = self._real
        if trace is None:
            trace = self._cache.load_trace(self.cache_key)
            if trace is None:
                if self._recompute is None:
                    raise CacheError(
                        f"cache entry {self.cache_key} disappeared and no "
                        "recompute fallback was provided"
                    )
                trace = self._recompute()
                self._cache.store_trace(self.cache_key, trace)
            trace.cache_key = self.cache_key
            object.__setattr__(self, "_real", trace)
        return trace

    def __getattr__(self, name):
        return getattr(self.materialize(), name)

    def __setattr__(self, name, value):
        if name in self._OWN:
            object.__setattr__(self, name, value)
        else:
            setattr(self.materialize(), name, value)


# ----------------------------------------------------------------------
# The on-disk cache
# ----------------------------------------------------------------------
class TraceCache:
    """Content-addressed trace + cycle-result store under one root dir."""

    def __init__(self, root):
        self.root = Path(root)
        self._traces = self.root / "traces"
        self._cycles = self.root / "cycles"
        self._quarantine_dir = self.root / "quarantine"

    # -- plumbing ------------------------------------------------------
    def _write_atomic(self, path: Path, data: bytes):
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass

    def _read(self, path: Path) -> Optional[bytes]:
        try:
            return path.read_bytes()
        except OSError:
            return None

    def quarantine(self, path: Path, reason):
        """Move a corrupt entry aside so the next lookup regenerates it."""
        try:
            self._quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self._quarantine_dir / path.name)
            _telemetry.counter("trace_cache.quarantined").inc()
            logger.warning(
                "quarantined corrupt cache entry %s (%s); it will be "
                "regenerated", path.name, reason,
            )
        except OSError:
            # Quarantine dir unwritable / entry raced away: best effort —
            # just drop the entry so it cannot be served again.
            try:
                path.unlink()
            except OSError:
                pass

    def _load_verified(self, path: Path) -> Optional[bytes]:
        """Read a framed entry; quarantines and misses on corruption."""
        data = self._read(path)
        if data is None:
            return None
        try:
            return unframe_payload(data)
        except CacheError as exc:
            self.quarantine(path, exc)
            return None

    # -- traces --------------------------------------------------------
    def trace_path(self, digest: str) -> Path:
        return self._traces / f"{digest}.trc"

    def has_trace(self, digest: str) -> bool:
        return self.trace_path(digest).is_file()

    def load_trace_bytes(self, digest: str) -> Optional[bytes]:
        """Verified trace payload bytes, or ``None`` on miss/corruption."""
        data = self._load_verified(self.trace_path(digest))
        _telemetry.counter(
            "trace_cache.trace.hits" if data is not None
            else "trace_cache.trace.misses"
        ).inc()
        return data

    def load_trace(self, digest: str) -> Optional[TraceResult]:
        data = self.load_trace_bytes(digest)
        if data is None:
            return None
        try:
            return deserialize_trace(data)
        except CacheError as exc:
            # Frame intact but payload undecodable (e.g. written by a
            # different pickle/zlib build): self-heal the same way.
            self.quarantine(self.trace_path(digest), exc)
            return None

    def store_trace_bytes(self, digest: str, data: bytes):
        self._write_atomic(self.trace_path(digest), frame_payload(data))
        _telemetry.counter("trace_cache.trace.stores").inc()

    def store_trace(self, digest: str, trace: TraceResult) -> bytes:
        data = serialize_trace(trace)
        self.store_trace_bytes(digest, data)
        return data

    # -- cycle results -------------------------------------------------
    def cycle_path(self, digest: str) -> Path:
        return self._cycles / f"{digest}.cyc"

    def load_cycles(self, digest: str):
        data = self._load_verified(self.cycle_path(digest))
        _telemetry.counter(
            "trace_cache.cycles.hits" if data is not None
            else "trace_cache.cycles.misses"
        ).inc()
        if data is None:
            return None
        try:
            return pickle.loads(zlib.decompress(data))
        except Exception as exc:
            self.quarantine(self.cycle_path(digest), exc)
            return None

    def store_cycles(self, digest: str, result):
        data = zlib.compress(pickle.dumps(result, protocol=4), level=1)
        self._write_atomic(self.cycle_path(digest), frame_payload(data))
        _telemetry.counter("trace_cache.cycles.stores").inc()

    # -- maintenance ---------------------------------------------------
    def stats(self) -> dict:
        """Entry counts, byte totals, and per-schema-version breakdown.

        ``by_schema`` maps the version parsed from each entry's frame
        magic (as a string key, ``"unknown"`` for unframed files) to the
        number of entries carrying it — a mixed cache directory shows up
        immediately instead of as silent misses.
        """
        out = {"root": str(self.root), "schema_version": SCHEMA_VERSION}
        for kind, directory, suffix in (
            ("traces", self._traces, ".trc"),
            ("cycles", self._cycles, ".cyc"),
            ("quarantined", self._quarantine_dir, None),
        ):
            count = 0
            size = 0
            versions: dict = {}
            if directory.is_dir():
                for entry in directory.iterdir():
                    if (suffix is None or entry.suffix == suffix) \
                            and entry.is_file():
                        count += 1
                        size += entry.stat().st_size
                        version = _frame_version(entry)
                        key = "unknown" if version is None else str(version)
                        versions[key] = versions.get(key, 0) + 1
            out[kind] = {
                "entries": count,
                "bytes": size,
                "by_schema": dict(sorted(versions.items())),
            }
        return out

    def clear(self) -> int:
        """Delete current- and older-schema entries; returns the count.

        Entries whose frame magic carries a schema version *newer* than
        this build's are left in place — in a cache directory shared with
        a newer tool they are live data, not garbage.  Unreadable files
        are skipped rather than crashing the sweep.
        """
        removed = 0
        for directory in (self._traces, self._cycles, self._quarantine_dir):
            if not directory.is_dir():
                continue
            for entry in directory.iterdir():
                if not entry.is_file():
                    continue
                if directory is not self._quarantine_dir:
                    version = _frame_version(entry)
                    if version is not None and version > SCHEMA_VERSION:
                        logger.info(
                            "cache clear: keeping %s (schema %d is newer "
                            "than this build's %d)",
                            entry.name, version, SCHEMA_VERSION,
                        )
                        continue
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


def default_cache_root() -> Optional[Path]:
    """Resolve the cache root from ``REPRO_TRACE_CACHE`` / XDG defaults.

    Returns ``None`` when caching is disabled.
    """
    value = os.environ.get(_ENV_VAR)
    if value is not None:
        if value.strip().lower() in _DISABLED_VALUES or not value.strip():
            return None
        return Path(value).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-dise"


def open_cache(cache="auto") -> Optional[TraceCache]:
    """Normalise a cache argument to a :class:`TraceCache` or ``None``.

    ``"auto"`` honours the environment (see :func:`default_cache_root`);
    ``None``/``False`` disables; a path-like opens that directory; a
    :class:`TraceCache` passes through.
    """
    if cache is None or cache is False:
        return None
    if isinstance(cache, TraceCache):
        return cache
    if cache == "auto":
        root = default_cache_root()
        return TraceCache(root) if root is not None else None
    return TraceCache(cache)
