"""Experiment harness: workload suites, per-figure experiments, tables."""

from repro.harness.config import render_config_table
from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    CACHE_LABELS,
    CACHE_SIZES,
    RT_CONFIGS,
    RT_CONFIGS_COMPOSED,
    WIDTHS,
    fig6_cache,
    fig6_top,
    fig6_width,
    fig7_perf,
    fig7_ratio,
    fig7_rt,
    fig8_perf,
    fig8_rt,
    run_experiment,
)
from repro.harness.checkpoint import RunCheckpoint
from repro.harness.parallel import (
    TaskFailure,
    TaskResults,
    TraceTask,
    resolve_jobs,
    run_tasks,
)
from repro.harness.report import (
    PAPER_CLAIMS,
    build_report,
    report_fingerprint,
    table_to_markdown,
)
from repro.harness.runner import Suite
from repro.harness.tables import ResultTable
from repro.harness.trace_cache import (
    LazyTrace,
    TraceCache,
    deserialize_trace,
    open_cache,
    serialize_trace,
    trace_fingerprint,
)

__all__ = [
    "render_config_table",
    "ALL_EXPERIMENTS",
    "CACHE_LABELS",
    "CACHE_SIZES",
    "RT_CONFIGS",
    "RT_CONFIGS_COMPOSED",
    "WIDTHS",
    "fig6_cache",
    "fig6_top",
    "fig6_width",
    "fig7_perf",
    "fig7_ratio",
    "fig7_rt",
    "fig8_perf",
    "fig8_rt",
    "run_experiment",
    "PAPER_CLAIMS",
    "build_report",
    "report_fingerprint",
    "table_to_markdown",
    "RunCheckpoint",
    "Suite",
    "ResultTable",
    "TaskFailure",
    "TaskResults",
    "TraceTask",
    "resolve_jobs",
    "run_tasks",
    "LazyTrace",
    "TraceCache",
    "open_cache",
    "serialize_trace",
    "deserialize_trace",
    "trace_fingerprint",
]
