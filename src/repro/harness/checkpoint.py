"""Per-experiment checkpointing for long report runs.

A full ``repro-cli report`` at scale 1.0 regenerates eight figures, each of
which can take minutes cold.  When the run dies halfway — machine sleep, a
killed worker that poisons the process, an impatient Ctrl-C — everything
already rendered is lost.  :class:`RunCheckpoint` fixes that: the report
builder records each experiment's rendered markdown (plus a fingerprint of
the suite parameters) after it completes, and ``repro-cli report --resume``
replays the finished sections from the checkpoint and only computes the
rest.

The checkpoint is one JSON file, written atomically after every section, so
it is always either the previous or the current consistent state.  A
checkpoint made with different suite parameters (benchmarks, scale,
experiment list) refuses to resume rather than silently splicing
incompatible tables together.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional

from repro.errors import CheckpointError
from repro.fabric.checkpoint import quarantine_checkpoint

#: Bump when the checkpoint layout changes.
CHECKPOINT_SCHEMA = 1


class RunCheckpoint:
    """Completed-section store for one report run."""

    def __init__(self, path: str, fingerprint: Dict[str, object]):
        self.path = path
        self.fingerprint = fingerprint
        self._sections: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str,
             fingerprint: Dict[str, object]) -> "RunCheckpoint":
        """Open a checkpoint for resuming; empty when the file is absent.

        A *corrupt* file (unreadable, truncated, bit-flipped, malformed)
        is quarantined — renamed aside for inspection — and the run
        restarts from an empty checkpoint instead of dying on resume.
        Raises :class:`~repro.errors.CheckpointError` only for a
        *well-formed* checkpoint that belongs to a different build or a
        run with different parameters: splicing those together silently
        would corrupt the report.
        """
        checkpoint = cls(path, fingerprint)
        if not os.path.exists(path):
            return checkpoint
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            quarantine_checkpoint(path, f"unreadable report checkpoint: "
                                        f"{exc}")
            return checkpoint
        if not isinstance(payload, dict) or not isinstance(
                payload.get("sections", {}), dict):
            quarantine_checkpoint(path, "malformed report checkpoint")
            return checkpoint
        if payload.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"report checkpoint {path} has schema "
                f"{payload.get('schema')!r}; this build writes "
                f"{CHECKPOINT_SCHEMA}"
            )
        if payload.get("fingerprint") != fingerprint:
            raise CheckpointError(
                f"report checkpoint {path} was written with different "
                "suite parameters; delete it or rerun with the original "
                "flags"
            )
        checkpoint._sections = dict(payload.get("sections", {}))
        return checkpoint

    def _save(self):
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "fingerprint": self.fingerprint,
            "sections": self._sections,
        }
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True, indent=2)
                handle.write("\n")
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------
    # Section accounting
    # ------------------------------------------------------------------
    def completed(self, name: str) -> Optional[str]:
        """The rendered markdown of a finished experiment, or ``None``."""
        return self._sections.get(name)

    def record(self, name: str, rendered: str):
        """Mark an experiment finished and persist immediately."""
        self._sections[name] = rendered
        self._save()

    def __len__(self):
        return len(self._sections)

    def clear(self):
        """Delete the checkpoint file (after a successful full run)."""
        self._sections = {}
        try:
            os.unlink(self.path)
        except OSError:
            pass
