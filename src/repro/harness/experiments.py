"""Per-figure experiment definitions (the reproduction of Section 4).

Each ``fig*`` function regenerates the data behind one of the paper's
figures as a :class:`~repro.harness.tables.ResultTable` whose rows are the
SPECint benchmarks and whose columns are the figure's bars/series.

Conventions (matching Section 4):

* Execution times are normalized to the unmodified program on the baseline
  machine (4-wide, 32 KB I/D caches, 1 MB L2).
* After Section 4.1's design discussion, DISE runs use the elongated-pipe
  placement; the ``free``/``stall`` options appear only in Figure 6 (top).
* The dedicated decompressor baseline is modelled as a DISE engine with
  free placement and a perfect RT (its dictionary is dedicated on-chip
  SRAM), which is exactly how the two mechanisms correspond physically.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.acf.compression import DISE_OPTIONS, FIGURE7_VARIANTS
from repro.core.config import DiseConfig
from repro.harness.runner import Suite
from repro.harness.tables import ResultTable
from repro.sim.config import KB, MachineConfig

#: I-cache sweep points; ``None`` is the paper's "perfect" cache.
CACHE_SIZES = (8 * KB, 32 * KB, 128 * KB, None)
CACHE_LABELS = ("8K", "32K", "128K", "perf")

WIDTHS = (2, 4, 8)

#: RT geometries of the Figure 7 (bottom) sweep: the paper's actual points.
#: Our plain decompression dictionaries occupy 40-470 RT entries, so — as in
#: the paper — 512 entries hurt the large benchmarks while 2K (nearly)
#: matches a perfect RT.
RT_CONFIGS = (
    (512, 1, "512-DM"),
    (512, 2, "512-2way"),
    (2048, 1, "2K-DM"),
    (2048, 2, "2K-2way"),
)

#: Figure 8 (bottom) uses capacity-scaled points (4x down): composition
#: inflates our RT working sets to 90-1200 entries, about 4x less than the
#: paper's composed working sets, so scaling the RT by the same factor
#: preserves the occupancy ratios the figure is about.  See EXPERIMENTS.md.
RT_SCALE_COMPOSED = 4
RT_CONFIGS_COMPOSED = tuple(
    (entries // RT_SCALE_COMPOSED, assoc, label)
    for entries, assoc, label in RT_CONFIGS
)


def _machine(il1_size=32 * KB, width=4, placement="pipe",
             rt_entries=2048, rt_assoc=2, rt_perfect=True,
             simple_miss=30, compose_miss=150) -> MachineConfig:
    dise = DiseConfig(
        placement=placement, rt_entries=rt_entries, rt_assoc=rt_assoc,
        rt_perfect=rt_perfect, simple_miss_cycles=simple_miss,
        compose_miss_cycles=compose_miss,
    )
    return MachineConfig(width=width, dise=dise).with_il1_size(il1_size)


def _baseline_cycles(suite: Suite, bench: str, il1_size=32 * KB,
                     width=4) -> int:
    trace = suite.trace_plain(bench)
    return suite.cycles(trace, _machine(il1_size=il1_size, width=width,
                                        placement="free")).cycles


# ----------------------------------------------------------------------
# Prefetch plans: the exact (trace task, machine configs) a figure needs,
# so Suite.prefetch can run the functional simulations — and the timing
# replays — across worker processes before the serial aggregation loop.
# ----------------------------------------------------------------------
def _plan_fig6_top(suite: Suite):
    for bench in suite.benchmarks:
        yield suite.task("plain", bench), [_machine(placement="free")]
        yield suite.task("rewrite", bench), [_machine(placement="free")]
        yield (suite.task("mfi", bench, variant="dise4"),
               [_machine(placement="free"), _machine(placement="stall"),
                _machine(placement="pipe")])
        yield (suite.task("mfi", bench, variant="dise3"),
               [_machine(placement="free")])


def _plan_fig6_cache(suite: Suite):
    sweep_free = [_machine(il1_size=size, placement="free")
                  for size in CACHE_SIZES]
    sweep_pipe = [_machine(il1_size=size) for size in CACHE_SIZES]
    for bench in suite.benchmarks:
        yield suite.task("plain", bench), sweep_free
        yield suite.task("rewrite", bench), sweep_free
        yield suite.task("mfi", bench, variant="dise3"), sweep_pipe


def _plan_fig6_width(suite: Suite):
    sweep_free = [_machine(width=width, placement="free")
                  for width in WIDTHS]
    sweep_pipe = [_machine(width=width) for width in WIDTHS]
    for bench in suite.benchmarks:
        yield suite.task("plain", bench), sweep_free
        yield suite.task("rewrite", bench), sweep_free
        yield suite.task("mfi", bench, variant="dise3"), sweep_pipe


def _plan_fig7_perf(suite: Suite):
    sweep_free = [_machine(il1_size=size, placement="free")
                  for size in CACHE_SIZES]
    sweep_pipe = [_machine(il1_size=size) for size in CACHE_SIZES]
    for bench in suite.benchmarks:
        yield (suite.task("plain", bench),
               sweep_free + [_machine(placement="free")])
        yield (suite.task("compressed", bench, label="DISE",
                          options=DISE_OPTIONS), sweep_pipe)


def _plan_fig7_rt(suite: Suite):
    rt_sweep = [_machine()] + [
        _machine(rt_entries=entries, rt_assoc=assoc, rt_perfect=False)
        for entries, assoc, _ in RT_CONFIGS
    ]
    for bench in suite.benchmarks:
        yield suite.task("plain", bench), [_machine(placement="free")]
        yield (suite.task("compressed", bench, label="DISE",
                          options=DISE_OPTIONS), rt_sweep)


def _plan_fig8_perf(suite: Suite):
    schemes = ("rewrite+dedicated", "rewrite+dise", "dise+dise")
    for bench in suite.benchmarks:
        yield suite.task("plain", bench), [_machine(placement="free")]
        for scheme in schemes:
            configs = [_composition_machine(scheme, il1_size=size)
                       for size in CACHE_SIZES]
            yield suite.task("composed", bench, scheme=scheme), configs


def _plan_fig8_rt(suite: Suite):
    configs = [
        _machine(rt_entries=entries, rt_assoc=assoc, rt_perfect=False,
                 compose_miss=latency)
        for entries, assoc, _ in RT_CONFIGS_COMPOSED
        for latency in (30, 150)
    ]
    for bench in suite.benchmarks:
        yield suite.task("plain", bench), [_machine(placement="free")]
        yield suite.task("composed", bench, scheme="dise+dise"), configs


# ----------------------------------------------------------------------
# Figure 6: memory fault isolation
# ----------------------------------------------------------------------
def fig6_top(suite: Suite) -> ResultTable:
    """MFI: rewriting vs DISE4/DISE3 and the engine placement options."""
    suite.prefetch(_plan_fig6_top(suite))
    table = ResultTable(
        "Figure 6 (top): MFI execution time, normalized to no-MFI",
        ["rewrite", "DISE4", "DISE4+stall", "DISE4+pipe", "DISE3"],
    )
    for bench in suite.benchmarks:
        base = _baseline_cycles(suite, bench)
        rw = suite.cycles(suite.trace_rewrite(bench),
                          _machine(placement="free"))
        table.set(bench, "rewrite", rw.cycles / base)
        tr4 = suite.trace_mfi(bench, "dise4")
        table.set(bench, "DISE4",
                  suite.cycles(tr4, _machine(placement="free")).cycles / base)
        table.set(bench, "DISE4+stall",
                  suite.cycles(tr4, _machine(placement="stall")).cycles / base)
        table.set(bench, "DISE4+pipe",
                  suite.cycles(tr4, _machine(placement="pipe")).cycles / base)
        tr3 = suite.trace_mfi(bench, "dise3")
        table.set(bench, "DISE3",
                  suite.cycles(tr3, _machine(placement="free")).cycles / base)
    return table


def fig6_cache(suite: Suite) -> ResultTable:
    """MFI: DISE3 vs rewriting across I-cache sizes."""
    suite.prefetch(_plan_fig6_cache(suite))
    columns = []
    for label in CACHE_LABELS:
        columns += [f"rewrite@{label}", f"DISE3@{label}"]
    table = ResultTable(
        "Figure 6 (middle): MFI vs I-cache size, normalized per size",
        columns,
    )
    for bench in suite.benchmarks:
        rw_trace = suite.trace_rewrite(bench)
        d3_trace = suite.trace_mfi(bench, "dise3")
        for size, label in zip(CACHE_SIZES, CACHE_LABELS):
            base = _baseline_cycles(suite, bench, il1_size=size)
            rw = suite.cycles(rw_trace, _machine(il1_size=size,
                                                 placement="free"))
            d3 = suite.cycles(d3_trace, _machine(il1_size=size))
            table.set(bench, f"rewrite@{label}", rw.cycles / base)
            table.set(bench, f"DISE3@{label}", d3.cycles / base)
    return table


def fig6_width(suite: Suite) -> ResultTable:
    """MFI: DISE3 vs rewriting across processor widths."""
    suite.prefetch(_plan_fig6_width(suite))
    columns = []
    for width in WIDTHS:
        columns += [f"rewrite@{width}w", f"DISE3@{width}w"]
    table = ResultTable(
        "Figure 6 (bottom): MFI vs processor width, normalized per width",
        columns,
    )
    for bench in suite.benchmarks:
        rw_trace = suite.trace_rewrite(bench)
        d3_trace = suite.trace_mfi(bench, "dise3")
        for width in WIDTHS:
            base = _baseline_cycles(suite, bench, width=width)
            rw = suite.cycles(rw_trace, _machine(width=width,
                                                 placement="free"))
            d3 = suite.cycles(d3_trace, _machine(width=width))
            table.set(bench, f"rewrite@{width}w", rw.cycles / base)
            table.set(bench, f"DISE3@{width}w", d3.cycles / base)
    return table


# ----------------------------------------------------------------------
# Figure 7: dynamic code decompression
# ----------------------------------------------------------------------
def fig7_ratio(suite: Suite) -> ResultTable:
    """Compression ratio stacks for the six feature variants."""
    columns = []
    for name, _ in FIGURE7_VARIANTS:
        columns += [name, f"{name}+d"]
    table = ResultTable(
        "Figure 7 (top): static code size / original (and +dictionary)",
        columns,
    )
    for bench in suite.benchmarks:
        for name, options in FIGURE7_VARIANTS:
            result = suite.compression(bench, options, name)
            table.set(bench, name, result.text_ratio)
            table.set(bench, f"{name}+d", result.total_ratio)
    return table


def fig7_perf(suite: Suite) -> ResultTable:
    """DISE decompression execution time vs I-cache size (perfect RT),
    normalized to the uncompressed 32 KB case."""
    suite.prefetch(_plan_fig7_perf(suite))
    columns = []
    for label in CACHE_LABELS:
        columns += [f"plain@{label}", f"DISE@{label}"]
    table = ResultTable(
        "Figure 7 (middle): decompression vs I-cache size "
        "(normalized to uncompressed 32K)",
        columns,
    )
    for bench in suite.benchmarks:
        ref = _baseline_cycles(suite, bench, il1_size=32 * KB)
        plain_trace = suite.trace_plain(bench)
        comp_trace = suite.trace_compressed(bench, DISE_OPTIONS, "DISE")
        for size, label in zip(CACHE_SIZES, CACHE_LABELS):
            plain = suite.cycles(plain_trace, _machine(il1_size=size,
                                                       placement="free"))
            comp = suite.cycles(comp_trace, _machine(il1_size=size))
            table.set(bench, f"plain@{label}", plain.cycles / ref)
            table.set(bench, f"DISE@{label}", comp.cycles / ref)
    return table


def fig7_rt(suite: Suite) -> ResultTable:
    """DISE decompression under realistic RT geometries (30-cycle miss)."""
    suite.prefetch(_plan_fig7_rt(suite))
    columns = ["perfect"] + [label for _, _, label in RT_CONFIGS]
    table = ResultTable(
        "Figure 7 (bottom): decompression vs RT configuration "
        "(normalized to uncompressed 32K)",
        columns,
    )
    for bench in suite.benchmarks:
        ref = _baseline_cycles(suite, bench)
        comp_trace = suite.trace_compressed(bench, DISE_OPTIONS, "DISE")
        table.set(bench, "perfect",
                  suite.cycles(comp_trace, _machine()).cycles / ref)
        for entries, assoc, label in RT_CONFIGS:
            config = _machine(rt_entries=entries, rt_assoc=assoc,
                              rt_perfect=False)
            table.set(bench, label,
                      suite.cycles(comp_trace, config).cycles / ref)
    return table


# ----------------------------------------------------------------------
# Figure 8: composing decompression and fault isolation
# ----------------------------------------------------------------------
def _composition_machine(scheme: str, **kwargs) -> MachineConfig:
    if scheme == "rewrite+dedicated":
        # Dedicated hardware: free decode placement, dedicated dictionary.
        kwargs.setdefault("placement", "free")
    return _machine(**kwargs)


def fig8_perf(suite: Suite) -> ResultTable:
    """The three composition schemes across I-cache sizes (perfect RT)."""
    suite.prefetch(_plan_fig8_perf(suite))
    schemes = ("rewrite+dedicated", "rewrite+dise", "dise+dise")
    columns = []
    for label in CACHE_LABELS:
        columns += [f"{scheme}@{label}" for scheme in schemes]
    table = ResultTable(
        "Figure 8 (top): decompression+MFI, normalized to unmodified 32K",
        columns, fmt="{:.2f}",
    )
    for bench in suite.benchmarks:
        ref = _baseline_cycles(suite, bench)
        for scheme in schemes:
            trace = suite.trace_composition(bench, scheme)
            for size, label in zip(CACHE_SIZES, CACHE_LABELS):
                config = _composition_machine(scheme, il1_size=size)
                table.set(bench, f"{scheme}@{label}",
                          suite.cycles(trace, config).cycles / ref)
    return table


def fig8_rt(suite: Suite) -> ResultTable:
    """DISE+DISE composition vs RT geometry and miss-handler latency."""
    suite.prefetch(_plan_fig8_rt(suite))
    columns = []
    for _, _, label in RT_CONFIGS_COMPOSED:
        columns += [f"{label}@30", f"{label}@150"]
    table = ResultTable(
        "Figure 8 (bottom): composed RT sensitivity, capacity-scaled RT "
        "(normalized to unmodified 32K)",
        columns, fmt="{:.2f}",
    )
    for bench in suite.benchmarks:
        ref = _baseline_cycles(suite, bench)
        trace = suite.trace_composition(bench, "dise+dise")
        for entries, assoc, label in RT_CONFIGS_COMPOSED:
            for latency in (30, 150):
                config = _machine(
                    rt_entries=entries, rt_assoc=assoc, rt_perfect=False,
                    compose_miss=latency,
                )
                table.set(bench, f"{label}@{latency}",
                          suite.cycles(trace, config).cycles / ref)
    return table


#: Experiment id -> builder, for the CLI and the benchmark harness.
ALL_EXPERIMENTS = {
    "fig6_top": fig6_top,
    "fig6_cache": fig6_cache,
    "fig6_width": fig6_width,
    "fig7_ratio": fig7_ratio,
    "fig7_perf": fig7_perf,
    "fig7_rt": fig7_rt,
    "fig8_perf": fig8_perf,
    "fig8_rt": fig8_rt,
}


def run_experiment(name: str, benchmarks: Optional[Sequence[str]] = None,
                   scale: float = 1.0, suite: Optional[Suite] = None
                   ) -> ResultTable:
    """Build one figure's table (convenience for examples/CLI)."""
    if suite is None:
        suite = Suite(benchmarks=benchmarks, scale=scale)
    return ALL_EXPERIMENTS[name](suite)
