"""Parallel fan-out for the figure harness.

A figure regeneration decomposes into independent (benchmark,
transformation) functional simulations — by far the expensive part — plus
the timing replays of each trace.  This module describes one such unit as a
picklable :class:`TraceTask`, rebuilds its installation deterministically
inside a worker process (images are regenerated from the profile seed, so
nothing heavyweight crosses the pipe), and runs a batch of tasks across a
``concurrent.futures.ProcessPoolExecutor``.

Workers also run the timing replays their caller already knows it needs
(the per-figure :class:`~repro.sim.config.MachineConfig` lists), so the
serial aggregation phase afterwards is pure table arithmetic.  Everything a
worker produces is pushed through the persistent
:mod:`~repro.harness.trace_cache` when one is configured, making parallel
and cached execution one mechanism.

Pool supervision (watchdog timeouts, deterministic exponential backoff
between retries, circuit breaking on repeated worker deaths) comes from
:class:`repro.fabric.supervise.PoolSupervisor` — the same machinery behind
the campaign fabric.  Worker failures are non-fatal: a crashed task is
retried and then re-run serially in the parent with a logged warning, so
figures always complete.  A task that raises a *non-retryable*
:class:`~repro.errors.ReproError` fails fast instead — it would fail
identically on every attempt — and a task that keeps exceeding the
``task_timeout`` / ``REPRO_TASK_TIMEOUT`` watchdog is *skipped*; both land
as structured :class:`TaskFailure` records on the returned
:class:`TaskResults` (re-running a hanging task serially would hang the
parent too).

Worker count resolution: explicit argument, else the ``REPRO_JOBS``
environment variable, else 1 (serial).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.acf.base import AcfInstallation, plain_installation
from repro.acf.composition import build_composition
from repro.acf.compression import CompressionOptions, compress_image
from repro.acf.mfi import attach_mfi, rewrite_mfi
from repro.core.config import DiseConfig
from repro.errors import TaskError, TaskTimeoutError, WorkerCrashError
from repro.fabric.supervise import (
    PoolSupervisor,
    _env_number,
    resolve_jobs,
    resolve_retries,
    resolve_task_timeout,
)
from repro.harness.trace_cache import (
    LazyTrace,
    TraceCache,
    cycle_key,
    deserialize_trace,
    machine_trace_key,
    serialize_trace,
)
from repro.sim.batch import BatchMachine, resolve_batch
from repro.sim.config import MachineConfig
from repro.sim.cycle import CycleResult, resolve_cycle_engine, simulate_trace
from repro.sim.trace import TraceResult
from repro.telemetry import events as _events
from repro.telemetry import get_logger
from repro.telemetry import registry as _telemetry
from repro.telemetry import tracing as _tracing
from repro.workloads.generator import generate_benchmark, reseed_data
from repro.workloads.specint import get_profile

logger = get_logger(__name__)

#: Functional runs use a perfect RT: RT behaviour is replayed inside the
#: timing model, so the functional pass should not burn time there.
FUNCTIONAL_DISE = DiseConfig(rt_perfect=True)

#: Generous dynamic-instruction budget for transformed binaries.
MAX_STEPS = 30_000_000

_KINDS = ("plain", "mfi", "rewrite", "compressed", "composed")

# ``resolve_jobs`` / ``resolve_task_timeout`` / ``resolve_retries`` are this
# module's historical public API; they now live with the rest of the
# supervision knobs in :mod:`repro.fabric.supervise` and are re-exported
# here unchanged.
__all__ = [
    "FUNCTIONAL_DISE",
    "MAX_STEPS",
    "TaskFailure",
    "TaskResults",
    "TraceTask",
    "build_installation",
    "resolve_jobs",
    "resolve_retries",
    "resolve_task_timeout",
    "run_tasks",
]


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of a task the harness gave up on."""

    task: "TraceTask"
    error: TaskError
    attempts: int
    #: Wall seconds from the first attempt's submission to giving up.
    elapsed: float = 0.0
    #: Wall-clock (``time.time``) start stamp of each attempt, so fault
    #: reports and telemetry agree on retry timing.
    attempt_times: Tuple[float, ...] = ()

    def details(self) -> dict:
        out = self.error.details()
        out["task"] = repr(self.task)
        out["attempts"] = self.attempts
        out["elapsed"] = round(self.elapsed, 6)
        out["attempt_times"] = list(self.attempt_times)
        return out


class TaskResults(dict):
    """``run_tasks``'s return value: a plain task->result dict, plus the
    structured failure records of any tasks that were skipped."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.failures: List[TaskFailure] = []


@dataclass(frozen=True)
class TraceTask:
    """One (benchmark, transformation) functional simulation."""

    bench: str
    scale: float
    kind: str
    variant: Optional[str] = None              # mfi
    label: Optional[str] = None                # compressed
    options: Optional[CompressionOptions] = None  # compressed
    scheme: Optional[str] = None               # composed
    #: Figure points over seed variations: re-roll the data segment from
    #: this seed while keeping the text segment (and every text-keyed
    #: cache) identical to the base image.
    data_seed: Optional[int] = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown trace kind: {self.kind!r}")

    def suite_key(self) -> Tuple:
        """The :class:`~repro.harness.runner.Suite` trace-dict key."""
        if self.kind == "plain":
            key = (self.bench, "plain")
        elif self.kind == "mfi":
            key = (self.bench, "mfi", self.variant)
        elif self.kind == "rewrite":
            key = (self.bench, "rewrite")
        elif self.kind == "compressed":
            key = (self.bench, "compressed", self.label)
        else:
            key = (self.bench, "composed", self.scheme)
        if self.data_seed is not None:
            key = key + ("data", self.data_seed)
        return key


def build_installation(task: TraceTask, image=None) -> AcfInstallation:
    """Deterministically rebuild the task's installation from scratch.

    ``image`` lets callers that handle several tasks per benchmark reuse
    one generated program (generation is deterministic either way).
    """
    if image is None:
        image = generate_benchmark(get_profile(task.bench), scale=task.scale,
                                   data_seed=task.data_seed)
    if task.kind == "plain":
        return plain_installation(image)
    if task.kind == "mfi":
        return attach_mfi(image, task.variant)
    if task.kind == "rewrite":
        return rewrite_mfi(image)
    if task.kind == "compressed":
        return compress_image(image, task.options).installation()
    _, installation = build_composition(image, task.scheme)
    return installation


def _run_task(task: TraceTask, configs: Sequence[MachineConfig],
              cache_root: Optional[str], max_steps: int, trace_ctx=None):
    """Produce (digest, trace_bytes, {config_repr: CycleResult}, metrics,
    spans) for one task.  Runs in a worker process, but is equally
    callable in-process — that is the serial fallback path.

    ``metrics`` is the registry *delta* this call produced (or ``None``
    with telemetry off).  Pool callers merge it into the parent registry;
    in-process callers discard it — their metrics already landed in the
    parent's registry directly, and merging would double-count.

    ``trace_ctx`` is an optional propagated trace context
    (:mod:`repro.telemetry.tracing`); when tracing is on, the task runs
    under a ``harness.task`` child span and ``spans`` carries the
    worker-side span records for the parent to merge into its event log
    (``None`` otherwise).
    """
    if trace_ctx is not None and _tracing.enabled():
        with _tracing.remote_session(trace_ctx) as session:
            with _tracing.remote_span("harness.task",
                                      task=_task_label(task)):
                out = _run_task(task, configs, cache_root, max_steps)
        return out[:4] + (list(session.records),)
    tm_before = _telemetry.snapshot() if _telemetry.enabled() else None
    cache = TraceCache(cache_root) if cache_root else None
    installation = build_installation(task)
    machine = installation.make_machine(FUNCTIONAL_DISE)
    digest = machine_trace_key(installation, machine, repr(FUNCTIONAL_DISE),
                               max_steps)

    trace = None
    trace_bytes = None
    if cache is not None and digest is not None:
        trace_bytes = cache.load_trace_bytes(digest)
        if trace_bytes is not None:
            try:
                trace = deserialize_trace(trace_bytes)
            except Exception:
                trace, trace_bytes = None, None
    if trace is None:
        trace = machine.run(max_steps=max_steps)
        trace_bytes = serialize_trace(trace)
        if cache is not None and digest is not None:
            cache.store_trace_bytes(digest, trace_bytes)
    trace.cache_key = digest

    cycles: Dict[str, CycleResult] = {}
    # Workers inherit REPRO_CYCLE from the parent environment; resolving
    # once per task keeps every replay of a sweep on the same engine.
    engine = resolve_cycle_engine()
    for config in configs:
        config_repr = repr(config)
        if config_repr in cycles:
            continue
        result = None
        ck = cycle_key(digest, config_repr, True) if digest else None
        if cache is not None and ck is not None:
            result = cache.load_cycles(ck)
        if result is None:
            result = simulate_trace(trace, config, warm_start=True,
                                    engine=engine)
            if cache is not None and ck is not None:
                cache.store_cycles(ck, result)
        cycles[config_repr] = result
    tm_delta = (_telemetry.snapshot_delta(tm_before, _telemetry.snapshot())
                if tm_before is not None else None)
    return digest, trace_bytes, cycles, tm_delta, None


def _fully_cached(task: TraceTask, configs: Sequence[MachineConfig],
                  cache: TraceCache, max_steps: int, images: Dict):
    """Parent-side warm path: when the trace *and every requested replay*
    are already in the persistent cache, answer without deserializing the
    trace (or spawning a worker).  Returns ``None`` on any miss."""
    image_key = (task.bench, task.scale, task.data_seed)
    if image_key not in images:
        images[image_key] = generate_benchmark(get_profile(task.bench),
                                               scale=task.scale,
                                               data_seed=task.data_seed)
    installation = build_installation(task, image=images[image_key])
    machine = installation.make_machine(FUNCTIONAL_DISE)
    digest = machine_trace_key(installation, machine, repr(FUNCTIONAL_DISE),
                               max_steps)
    if digest is None or not cache.has_trace(digest):
        return None
    cycles: Dict[str, CycleResult] = {}
    for config in configs:
        config_repr = repr(config)
        if config_repr in cycles:
            continue
        result = cache.load_cycles(cycle_key(digest, config_repr, True))
        if result is None:
            return None
        cycles[config_repr] = result
    recompute = lambda: installation.make_machine(FUNCTIONAL_DISE).run(
        max_steps=max_steps
    )
    return digest, LazyTrace(cache, digest, recompute), cycles


def _cohort_installation(task: TraceTask,
                         bases: Dict[Tuple, AcfInstallation]
                         ) -> AcfInstallation:
    """The task's installation, derived from a shared base when possible.

    ``data_seed`` variants reuse the base installation's transformed image
    (only the data segment is re-rolled), so every lane of a cohort binds
    to the same translation/compiled-superblock stores.  Equivalent to
    :func:`build_installation` — the stub append commutes with the data
    re-roll — just cheaper and cache-shared.
    """
    base_key = (task.bench, task.scale, task.kind, task.variant,
                task.label, task.options, task.scheme)
    base = bases.get(base_key)
    if base is None:
        base_task = TraceTask(bench=task.bench, scale=task.scale,
                              kind=task.kind, variant=task.variant,
                              label=task.label, options=task.options,
                              scheme=task.scheme)
        base = bases[base_key] = build_installation(base_task)
    if task.data_seed is None:
        return base
    image = reseed_data(base.image, get_profile(task.bench), task.data_seed)
    return AcfInstallation(image=image,
                           production_sets=base.production_sets,
                           init_machine=base.init_machine,
                           name=base.name)


def _run_tasks_cohort(merged: Dict[TraceTask, List[MachineConfig]],
                      results: "TaskResults", cache, max_steps: int,
                      begin_attempt, task_elapsed, finish):
    """Serial-branch cohort path: one BatchMachine over all trace misses.

    Produces exactly what the per-task serial loop produces (digests,
    serialized traces, cycle replays, telemetry in the parent registry);
    only the functional simulations are interleaved.
    """
    bases: Dict[Tuple, AcfInstallation] = {}
    pending = []
    for task, configs in merged.items():
        begin_attempt(task)
        installation = _cohort_installation(task, bases)
        machine = installation.make_machine(FUNCTIONAL_DISE)
        digest = machine_trace_key(installation, machine,
                                   repr(FUNCTIONAL_DISE), max_steps)
        trace = None
        trace_bytes = None
        if cache is not None and digest is not None:
            trace_bytes = cache.load_trace_bytes(digest)
            if trace_bytes is not None:
                try:
                    trace = deserialize_trace(trace_bytes)
                except Exception:
                    trace, trace_bytes = None, None
        pending.append([task, configs, installation, machine, digest,
                        trace, trace_bytes])

    cohort = BatchMachine()
    lanes = {}
    for entry in pending:
        if entry[5] is None:
            lanes[id(entry[3])] = cohort.add_lane(entry[3],
                                                  max_steps=max_steps)
    if lanes:
        cohort.run()
        outcomes = cohort.outcomes()

    for task, configs, installation, machine, digest, trace, \
            trace_bytes in pending:
        if trace is None:
            trace = outcomes[lanes[id(machine)]].raise_or_result(max_steps)
            trace_bytes = serialize_trace(trace)
            if cache is not None and digest is not None:
                cache.store_trace_bytes(digest, trace_bytes)
        cycles: Dict[str, CycleResult] = {}
        engine = resolve_cycle_engine()
        for config in configs:
            config_repr = repr(config)
            if config_repr in cycles:
                continue
            result = None
            ck = cycle_key(digest, config_repr, True) if digest else None
            if cache is not None and ck is not None:
                result = cache.load_cycles(ck)
            if result is None:
                result = simulate_trace(trace, config, warm_start=True,
                                        engine=engine)
                if cache is not None and ck is not None:
                    cache.store_cycles(ck, result)
            cycles[config_repr] = result
        results[task] = finish(digest, trace_bytes, cycles)
        _record_task(task, task_elapsed(task), 1, "ok")
    return results


def _task_label(task: TraceTask) -> str:
    """Compact, stable task label for events and logs."""
    return "/".join(str(part) for part in task.suite_key())


def _record_task(task: TraceTask, seconds: float, attempts: int,
                 status: str):
    """One task finished: event-log record plus harness metrics."""
    _events.emit_task(_task_label(task), seconds, attempts, status)
    _telemetry.counter("harness.tasks").inc()
    _telemetry.histogram("harness.task_seconds").observe(round(seconds, 6))


def run_tasks(plan: Iterable[Tuple[TraceTask, Sequence[MachineConfig]]],
              jobs: Optional[int] = None,
              cache: Optional[TraceCache] = None,
              max_steps: int = MAX_STEPS,
              executor_factory=None,
              task_timeout: Optional[float] = None,
              retries: Optional[int] = None,
              backoff: float = 0.5,
              ) -> "TaskResults":
    """Run a batch of trace tasks, fanning out across worker processes.

    ``plan`` pairs each task with the machine configurations whose timing
    replays the caller will need.  Returns a :class:`TaskResults` mapping
    each task to the cache digest (``None`` for uncacheable runs), the
    trace, and the replay results keyed by ``repr(config)``.

    Resilience: a task whose worker raises a retryable error is retried in
    the pool up to ``retries`` times (exponential backoff from ``backoff``
    seconds, deterministically jittered per task), then recomputed serially
    in the parent; a non-retryable :class:`~repro.errors.ReproError` fails
    fast and is recorded on ``results.failures`` instead.  With a
    ``task_timeout`` watchdog, a task that exceeds it is likewise retried;
    if it *keeps* exceeding it, the task is skipped and recorded on
    ``results.failures`` — re-running a hanging task serially would hang
    the parent too.

    ``executor_factory`` is a test hook: a zero-argument callable returning
    a ``ProcessPoolExecutor``-compatible context manager.
    """
    merged: Dict[TraceTask, List[MachineConfig]] = {}
    for task, configs in plan:
        bucket = merged.setdefault(task, [])
        seen = {repr(c) for c in bucket}
        for config in configs:
            if repr(config) not in seen:
                bucket.append(config)
                seen.add(repr(config))

    jobs = resolve_jobs(jobs)
    task_timeout = resolve_task_timeout(task_timeout)
    retries = resolve_retries(retries)
    cache_root = str(cache.root) if cache is not None else None
    results = TaskResults()

    # Per-task timing, kept regardless of telemetry: TaskFailure records
    # carry the elapsed time and attempt stamps either way.
    first_start: Dict[TraceTask, float] = {}   # monotonic, first attempt
    attempt_log: Dict[TraceTask, List[float]] = {}  # wall-clock stamps

    def begin_attempt(task):
        attempt_log.setdefault(task, []).append(time.time())
        first_start.setdefault(task, time.monotonic())

    def task_elapsed(task):
        start = first_start.get(task)
        return time.monotonic() - start if start is not None else 0.0

    if cache is not None:
        images: Dict[Tuple, object] = {}
        for task, configs in list(merged.items()):
            t0 = time.monotonic()
            hit = _fully_cached(task, configs, cache, max_steps, images)
            if hit is not None:
                results[task] = hit
                del merged[task]
                _record_task(task, time.monotonic() - t0, 1, "cached")
        if not merged:
            return results

    def finish(digest, trace_bytes, cycles):
        trace = deserialize_trace(trace_bytes)
        trace.cache_key = digest
        return digest, trace, cycles

    if jobs <= 1 or len(merged) <= 1:
        if resolve_batch() >= 2 and len(merged) >= 2:
            return _run_tasks_cohort(merged, results, cache, max_steps,
                                     begin_attempt, task_elapsed, finish)
        for task, configs in merged.items():
            begin_attempt(task)
            digest, trace_bytes, cycles, _, _ = _run_task(
                task, configs, cache_root, max_steps
            )
            results[task] = finish(digest, trace_bytes, cycles)
            _record_task(task, task_elapsed(task), 1, "ok")
        return results

    supervisor = PoolSupervisor(
        jobs, task_timeout=task_timeout, retries=retries,
        backoff_base=backoff, executor_factory=executor_factory,
        label_of=_task_label, counter_prefix="harness",
    )
    trace_ctx = _tracing.current_context()
    specs = {
        task: (lambda attempt, task=task, configs=configs:
               (_run_task, (task, configs, cache_root, max_steps,
                            trace_ctx)))
        for task, configs in merged.items()
    }
    outcomes = supervisor.run(specs)

    failed: List[Tuple[TraceTask, List[MachineConfig]]] = []
    for task, configs in merged.items():
        outcome = outcomes[task]
        if outcome.status == "ok":
            digest, trace_bytes, cycles, tm_delta, spans = outcome.value
            if tm_delta:
                _telemetry.get_registry().merge(tm_delta)
            if spans:
                _events.emit_remote_spans(spans)
            results[task] = finish(digest, trace_bytes, cycles)
            _record_task(task, outcome.elapsed, outcome.attempts, "ok")
        elif outcome.status == "timeout":
            error = TaskTimeoutError(
                f"task exceeded its {task_timeout:.3g}s watchdog "
                f"{outcome.attempts} times",
                task=repr(task), attempts=outcome.attempts,
                timeout=task_timeout,
            )
            results.failures.append(
                TaskFailure(task, error, outcome.attempts,
                            elapsed=outcome.elapsed,
                            attempt_times=outcome.attempt_times)
            )
            _record_task(task, outcome.elapsed, outcome.attempts,
                         "timeout")
        elif outcome.status == "fatal":
            # Non-retryable model/configuration error: it would fail
            # identically serially, so record it without burning the
            # fallback on it.
            results.failures.append(
                TaskFailure(task, outcome.error, outcome.attempts,
                            elapsed=outcome.elapsed,
                            attempt_times=outcome.attempt_times)
            )
            _record_task(task, outcome.elapsed, outcome.attempts,
                         "failed")
        else:
            # gave_up: safe to recompute serially in the parent.  Seed the
            # local timing state with the pool attempts so the fallback's
            # failure records cover the whole history.
            attempt_log[task] = list(outcome.attempt_times)
            first_start[task] = time.monotonic() - outcome.elapsed
            failed.append((task, configs))

    for task, configs in failed:
        begin_attempt(task)
        try:
            digest, trace_bytes, cycles, _, _ = _run_task(
                task, configs, cache_root, max_steps
            )
        except Exception as exc:
            error = WorkerCrashError(
                f"serial fallback failed: {type(exc).__name__}: {exc}",
                task=repr(task), attempts=retries + 2,
            )
            seconds = task_elapsed(task)
            results.failures.append(
                TaskFailure(task, error, retries + 2, elapsed=seconds,
                            attempt_times=tuple(attempt_log.get(task, ())))
            )
            _record_task(task, seconds, retries + 2, "failed")
            logger.warning(
                "serial fallback for %s failed (%s: %s); skipping it "
                "(see results.failures)", task, type(exc).__name__, exc,
            )
            continue
        results[task] = finish(digest, trace_bytes, cycles)
        _record_task(task, task_elapsed(task), retries + 2, "fallback")
    return results
