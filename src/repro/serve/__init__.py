"""DISE-as-a-service: sessions, machine pools, budgets, and a TCP server.

See ``docs/serving.md``.  The public surface:

* :class:`~repro.serve.server.ServerCore` — the whole service as a
  synchronous dict-in/dict-out object;
* :class:`~repro.serve.server.ReproServer` / :func:`~repro.serve.server.run_server`
  — the asyncio TCP shell (``repro-cli serve``);
* :class:`~repro.serve.client.InProcessClient` /
  :class:`~repro.serve.client.TcpClient` / :func:`~repro.serve.client.connect`
  — transport-agnostic clients;
* :func:`~repro.serve.session.batch_digest` — the batch side of the
  served-vs-batch reproducibility oracle.
"""

from repro.serve.client import BaseClient, InProcessClient, TcpClient, connect
from repro.serve.pool import MachinePool
from repro.serve.protocol import PROTOCOL_VERSION
from repro.serve.server import ReproServer, ServerCore, run_server
from repro.serve.session import ImageCatalog, Session, batch_digest
from repro.serve.budgets import BudgetBook, TenantLedger

__all__ = [
    "BaseClient", "InProcessClient", "TcpClient", "connect",
    "MachinePool", "PROTOCOL_VERSION", "ReproServer", "ServerCore",
    "run_server", "ImageCatalog", "Session", "batch_digest",
    "BudgetBook", "TenantLedger",
]
