"""Clients for the simulation server.

Two transports, one surface:

* :class:`InProcessClient` wraps a :class:`~repro.serve.server.ServerCore`
  directly — no sockets, no asyncio — but routes every call through the
  same request/response envelope as the wire, so error semantics are
  byte-identical to TCP (tests pin this).
* :class:`TcpClient` speaks the newline-delimited JSON protocol over a
  blocking socket.

Both raise the typed :mod:`repro.errors` exceptions rebuilt from error
payloads (:func:`repro.serve.protocol.raise_error_payload`), so caller
code is transport-agnostic:

    with connect("127.0.0.1", 7337) as client:
        session = client.open_session({"benchmark": "gzip",
                                       "scale": 0.05, "acf": "dise3"})
        view = client.run(session)
        print(view["digest"])
"""

from __future__ import annotations

import socket
from typing import Optional

from repro.errors import ProtocolError
from repro.serve import protocol
from repro.serve.server import ServerCore
from repro.serve.session import MAX_STEPS_PER_REQUEST


class BaseClient:
    """Request plumbing + one helper per op; transports override
    ``_roundtrip``."""

    def __init__(self, tenant: str = "anonymous"):
        self.tenant = tenant
        self._next_id = 0

    # -- transport hook ------------------------------------------------
    def _roundtrip(self, request: dict) -> dict:
        raise NotImplementedError

    def call(self, op: str, **params) -> dict:
        """Issue one request; returns the result or raises the rebuilt
        server-side error."""
        self._next_id += 1
        request = {"id": self._next_id, "op": op, "tenant": self.tenant}
        request.update(params)
        response = self._roundtrip(request)
        if response.get("id") not in (request["id"], None):
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request['id']!r}"
            )
        if response.get("ok"):
            return response.get("result", {})
        protocol.raise_error_payload(response.get("error", {}))

    # -- op helpers ----------------------------------------------------
    def hello(self) -> dict:
        return self.call("hello")

    def open_session(self, spec: dict) -> str:
        """Create a session; returns its id (full view via ``state``)."""
        return self.call("open_session", spec=spec)["session"]

    def step(self, session: str, steps: int = 1) -> dict:
        return self.call("step", session=session, steps=steps)

    def run(self, session: str,
            max_steps: int = MAX_STEPS_PER_REQUEST) -> dict:
        return self.call("run", session=session, max_steps=max_steps)

    def checkpoint(self, session: str) -> dict:
        return self.call("checkpoint", session=session)["checkpoint"]

    def restore(self, session: str, checkpoint: dict) -> dict:
        return self.call("restore", session=session, checkpoint=checkpoint)

    def fork(self, session: str) -> dict:
        return self.call("fork", session=session)

    def state(self, session: str) -> dict:
        return self.call("state", session=session)

    def result(self, session: str) -> dict:
        return self.call("result", session=session)

    def events(self, session: str, cursor: int = 0) -> dict:
        return self.call("events", session=session, cursor=cursor)

    def close_session(self, session: str) -> dict:
        return self.call("close_session", session=session)

    def campaign_start(self, kind: str, params: Optional[dict] = None) -> str:
        return self.call("campaign_start", kind=kind,
                         params=params or {})["campaign"]

    def campaign_poll(self, campaign: str) -> dict:
        return self.call("campaign_poll", campaign=campaign)

    def stats(self) -> dict:
        return self.call("stats")

    def shutdown(self, token: Optional[str] = None) -> dict:
        """Operator-only: requires the server's admin token."""
        return self.call("shutdown", token=token)

    # -- context -------------------------------------------------------
    def close(self):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class InProcessClient(BaseClient):
    """Drive a :class:`ServerCore` in this process, via the envelope."""

    def __init__(self, core: ServerCore, tenant: str = "anonymous"):
        super().__init__(tenant)
        self.core = core

    def _roundtrip(self, request: dict) -> dict:
        # Round-trip through canonical JSON so anything unserializable
        # fails here exactly as it would on the wire.
        frame = protocol.encode_message(request)
        response = self.core.handle(protocol.decode_message(frame))
        try:
            frame = protocol.encode_message(response)
        except ProtocolError as exc:
            # Same behaviour as the TCP shell when a result outgrows
            # the frame cap: a small typed error, not a raised encode.
            frame = protocol.encode_message(
                protocol.error_response(response.get("id"), exc))
        return protocol.decode_message(frame)


class TcpClient(BaseClient):
    """Blocking newline-delimited JSON over a TCP socket."""

    def __init__(self, host: str, port: int, tenant: str = "anonymous",
                 timeout: Optional[float] = 60.0):
        super().__init__(tenant)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")

    def _roundtrip(self, request: dict) -> dict:
        self._sock.sendall(protocol.encode_message(request))
        line = self._file.readline()
        if not line:
            raise ProtocolError("server closed the connection")
        return protocol.decode_message(line)

    def close(self):
        try:
            self._file.close()
        finally:
            self._sock.close()


def connect(host: str, port: int, tenant: str = "anonymous",
            timeout: Optional[float] = 60.0) -> TcpClient:
    """Open a :class:`TcpClient`; usable as a context manager."""
    return TcpClient(host, port, tenant=tenant, timeout=timeout)
