"""The serve wire protocol: newline-delimited JSON frames.

One request per line, one response per line, UTF-8, canonical JSON
(sorted keys) on the way out.  The shape is deliberately minimal — it is
the same framing the fabric's future multi-host executor will speak, so
a remote worker can reuse this module verbatim:

* request: ``{"id": <int>, "op": "<name>", ...params}``
* success: ``{"id": <int>, "ok": true, "result": {...}}``
* failure: ``{"id": <int>, "ok": false, "error": {"type": ..., "message":
  ..., "retryable": ..., ...fields}}``

``id`` is chosen by the client and echoed verbatim so a pipelined client
can match responses to requests.  Errors are the structured
:class:`~repro.errors.ReproError` taxonomy flattened through
``details()`` — a client can rebuild the typed exception
(:func:`raise_error_payload`) and apply the same retry policy it would
in-process.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.errors import (
    BudgetExceededError,
    ProtocolError,
    ReproError,
    SessionError,
    ServeError,
)

#: Bumped whenever a request/response field changes meaning.  ``hello``
#: reports it; clients refuse to talk across versions.
PROTOCOL_VERSION = 1

#: Hard cap on one frame, request or response (16 MiB): a run's worth of
#: campaign report fits, a runaway payload does not.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: The operations a server accepts.  Kept here (not in server.py) so the
#: client, the load generator, and the docs enumerate the same surface.
OPS = (
    "hello",
    "open_session",
    "step",
    "run",
    "checkpoint",
    "restore",
    "fork",
    "state",
    "result",
    "events",
    "close_session",
    "campaign_start",
    "campaign_poll",
    "stats",
    "shutdown",
)


def encode_message(message: dict) -> bytes:
    """One canonical-JSON frame, newline-terminated."""
    data = json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return data


def decode_message(line) -> dict:
    """Parse one frame (bytes or str); raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {len(line)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte limit"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not UTF-8: {exc}") from None
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def check_request(request: dict) -> str:
    """Validate a decoded request; returns its ``op`` name."""
    op = request.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request has no 'op' field")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; this server speaks {', '.join(OPS)}"
        )
    return op


def ok_response(request_id, result: dict) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, exc: BaseException) -> dict:
    """Flatten an exception into the error envelope."""
    if isinstance(exc, ReproError):
        payload = exc.details()
        payload["retryable"] = exc.retryable
    else:
        payload = {"type": type(exc).__name__, "message": str(exc),
                   "retryable": False}
    return {"id": request_id, "ok": False, "error": payload}


#: Error types the client rebuilds as their original class, so server-side
#: and in-process failures are caught by the same ``except`` clauses.
_REBUILDERS = {
    "BudgetExceededError": lambda p: BudgetExceededError(
        p.get("message", ""), tenant=p.get("tenant"), budget=p.get("budget"),
        limit=p.get("limit"), used=p.get("used"),
    ),
    "SessionError": lambda p: SessionError(
        p.get("message", ""), session=p.get("session"),
    ),
    "ProtocolError": lambda p: ProtocolError(p.get("message", "")),
}


class RemoteError(ServeError):
    """A server-side failure with no richer client-side class.

    ``error_type`` preserves the server's exception type name and
    ``payload`` the full structured error, so callers can still branch on
    cause without string matching.
    """

    def __init__(self, message: str, *, error_type: Optional[str] = None,
                 payload: Optional[dict] = None):
        super().__init__(message)
        self.error_type = error_type
        self._payload = payload or {}

    @property
    def retryable(self):  # type: ignore[override]
        return bool(self._payload.get("retryable", False))


def raise_error_payload(payload: dict):
    """Re-raise a response's error payload as a typed exception."""
    error_type = payload.get("type", "RemoteError")
    rebuild = _REBUILDERS.get(error_type)
    if rebuild is not None:
        raise rebuild(payload)
    raise RemoteError(
        f"{error_type}: {payload.get('message', '')}",
        error_type=error_type, payload=payload,
    )
