"""Mini load generator for the simulation server (CI ``serve-smoke``).

Drives N tenants x M sessions against a server — over TCP
(``--connect HOST:PORT``) or an in-process core — stepping all sessions
round-robin so the machine pool actually churns, then checks every
served digest against :func:`repro.serve.session.batch_digest`
(``--check-batch``): the byte-for-byte reproducibility oracle.

Prints a JSON summary (sessions/sec, per-request step latency
percentiles, warm rates per tenant) to stdout; exits non-zero on any
digest mismatch or failed session.

    python -m repro.serve.loadgen --connect 127.0.0.1:7337 \
        --tenants 2 --sessions 3 --benchmark gzip --scale 0.05 \
        --acf dise3 --check-batch
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def percentile(values, fraction: float):
    """Nearest-rank percentile of a non-empty list (0 <= fraction <= 1)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def run_load(make_client, *, tenants: int, sessions: int, spec: dict,
             steps: int, check_batch: bool) -> dict:
    """Run the cohort; returns the JSON-ready summary document."""
    from repro.serve.session import batch_digest

    expected = batch_digest(spec) if check_batch else None
    step_latencies = []
    tenant_stats = {}
    digests = []
    failures = []
    t_start = time.perf_counter()
    total_sessions = 0

    clients = [make_client(f"tenant{i}") for i in range(tenants)]
    try:
        for tenant_index, client in enumerate(clients):
            tenant = f"tenant{tenant_index}"
            opened = []
            warm = 0
            for _ in range(sessions):
                sid = client.open_session(spec)
                view = client.state(sid)
                if view.get("warm_start"):
                    warm += 1
                opened.append(sid)
                total_sessions += 1
            live = list(opened)
            # Round-robin stepping: with more sessions than pool slots
            # this forces evict/revive cycles mid-run.
            while live:
                still = []
                for sid in live:
                    t0 = time.perf_counter()
                    view = client.step(sid, steps=steps)
                    step_latencies.append(time.perf_counter() - t0)
                    if not view["halted"]:
                        still.append(sid)
                live = still
            for sid in opened:
                result = client.result(sid)
                digests.append(result["digest"])
                if expected is not None and \
                        result["digest"] != expected["digest"]:
                    failures.append({
                        "tenant": tenant, "session": sid,
                        "served": result["digest"],
                        "batch": expected["digest"],
                    })
                client.close_session(sid)
            tenant_stats[tenant] = {
                "sessions": len(opened),
                "warm_starts": warm,
                "warm_rate": warm / len(opened) if opened else None,
            }
    finally:
        for client in clients:
            client.close()
    elapsed = time.perf_counter() - t_start

    return {
        "spec": spec,
        "tenants": tenants,
        "sessions": total_sessions,
        "elapsed_s": round(elapsed, 6),
        "sessions_per_s": round(total_sessions / elapsed, 3)
        if elapsed else None,
        "step_requests": len(step_latencies),
        "step_latency_ms": {
            "p50": round(percentile(step_latencies, 0.50) * 1e3, 3),
            "p99": round(percentile(step_latencies, 0.99) * 1e3, 3),
        } if step_latencies else None,
        "per_tenant": tenant_stats,
        "digest_checked": check_batch,
        "batch_digest": expected["digest"] if expected else None,
        "digest_matches": check_batch and not failures,
        "failures": failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="mini load generator for repro-cli serve")
    parser.add_argument("--connect", metavar="HOST:PORT",
                        help="TCP server address (default: in-process core)")
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument("--sessions", type=int, default=3,
                        help="sessions per tenant (default 3)")
    parser.add_argument("--benchmark", default="gzip")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--acf", default="dise3",
                        choices=["plain", "dise3", "dise4"])
    parser.add_argument("--steps", type=int, default=5000,
                        help="retirements per step request (default 5000)")
    parser.add_argument("--pool", type=int, default=2,
                        help="in-process mode: machine-pool capacity")
    parser.add_argument("--check-batch", action="store_true",
                        help="verify served digests against the batch run")
    parser.add_argument("--shutdown", action="store_true",
                        help="send a shutdown request when done (TCP mode; "
                        "needs --admin-token)")
    parser.add_argument("--admin-token", default=None,
                        help="operator token for --shutdown (default: "
                        "REPRO_SERVE_ADMIN_TOKEN)")
    args = parser.parse_args(argv)

    spec = {"benchmark": args.benchmark, "scale": args.scale,
            "acf": args.acf}

    if args.connect:
        from repro.serve.client import connect

        host, _, port = args.connect.rpartition(":")
        make_client = lambda tenant: connect(host or "127.0.0.1", int(port),
                                             tenant=tenant)
    else:
        from repro.serve.client import InProcessClient
        from repro.serve.server import ServerCore

        core = ServerCore(pool_capacity=args.pool)
        make_client = lambda tenant: InProcessClient(core, tenant=tenant)

    summary = run_load(make_client, tenants=args.tenants,
                       sessions=args.sessions, spec=spec, steps=args.steps,
                       check_batch=args.check_batch)
    if args.shutdown and args.connect:
        import os

        from repro.serve.client import connect

        token = args.admin_token or \
            os.environ.get("REPRO_SERVE_ADMIN_TOKEN") or None
        host, _, port = args.connect.rpartition(":")
        with connect(host or "127.0.0.1", int(port)) as client:
            summary["shutdown"] = client.shutdown(token)
    print(json.dumps(summary, indent=2, sort_keys=True))
    if summary["failures"]:
        print(f"DIGEST MISMATCH in {len(summary['failures'])} session(s)",
              file=sys.stderr)
        return 1
    if args.check_batch and not summary["digest_matches"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
