"""Serving sessions: an image + ACF + machine + observation digest.

A session is the unit a tenant interacts with: it names a program (a
generated benchmark or uploaded assembly), an ACF to run it under, and an
observation projection, and then advances through the program in
``step``/``run`` increments.  The machine behind a session is *leased*
from the :class:`~repro.serve.pool.MachinePool` and may be evicted (parked
as a :meth:`Machine.checkpoint` dict) at any time between requests;
sessions therefore keep all digest state in a
:class:`~repro.verify.observe.ChainedObserver`, whose 32-byte chain value
survives parking, forking, and server restarts.

Reproducibility contract: a session's digest after running to halt equals
:func:`batch_digest` of the same spec — the byte-for-byte oracle the CI
smoke job and ``tests/test_serve.py`` pin against ``repro-cli run
--digest``.

Images are shared across sessions *and tenants* through
:class:`ImageCatalog`, keyed by content: every session on the same
benchmark/source shares one :class:`~repro.program.image.ProgramImage`,
hence one ``image._translation_store`` — so the second tenant's machines
bind warm to superblocks the first tenant's runs translated.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, Optional, Tuple

from repro.acf.base import AcfInstallation, plain_installation
from repro.acf.mfi import attach_mfi
from repro.errors import ExecutionTimeout, ProtocolError, SessionError
from repro.program.builder import build_from_assembly
from repro.serve.budgets import TenantLedger
from repro.verify.observe import PROJECTIONS, ChainedObserver
from repro.workloads import BENCHMARK_NAMES, generate_by_name

#: Upper bound on one ``run`` request's step window; a tenant wanting more
#: issues more requests (keeps single requests bounded even without a
#: retirement budget).
MAX_STEPS_PER_REQUEST = 30_000_000

#: ACF variants a session may run under.
ACF_CHOICES = ("plain", "dise3", "dise4")


# ----------------------------------------------------------------------
# JSON-safe checkpoints
# ----------------------------------------------------------------------
def checkpoint_to_json(state: dict) -> dict:
    """A :meth:`Machine.checkpoint` dict, made JSON-round-trip safe.

    The memory snapshot is an ``int -> int`` dict, which JSON would
    silently re-key as strings; flatten it to sorted address/value pairs.
    """
    out = dict(state)
    out["mem"] = sorted(state["mem"].items())
    return out


def checkpoint_from_json(obj: dict) -> dict:
    """Inverse of :func:`checkpoint_to_json`."""
    state = dict(obj)
    state["mem"] = {int(addr): value for addr, value in obj["mem"]}
    return state


# ----------------------------------------------------------------------
# Shared image catalog
# ----------------------------------------------------------------------
class ImageCatalog:
    """Content-keyed cache of :class:`ProgramImage` objects.

    Keys are ``("benchmark", name, scale)`` or ``("source", sha256)`` — a
    pure function of program content, so two tenants asking for the same
    program get the *same object*, and with it the same
    ``image._translation_store``.  That sharing is what makes cross-tenant
    warm starts correct (PR 5's ``production_signature`` keying) and is
    the mechanism behind the serve bench's warm-store hit rate.
    """

    def __init__(self):
        self._images: Dict[tuple, object] = {}
        self._installations: Dict[tuple, AcfInstallation] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def resolve(self, spec: dict) -> Tuple[tuple, object]:
        """``(key, image)`` for a session spec (see :class:`Session`)."""
        benchmark = spec.get("benchmark")
        source = spec.get("source")
        if (benchmark is None) == (source is None):
            raise ProtocolError(
                "session spec needs exactly one of 'benchmark' or 'source'"
            )
        if benchmark is not None:
            if benchmark not in BENCHMARK_NAMES:
                raise ProtocolError(
                    f"unknown benchmark {benchmark!r}; choose from "
                    f"{sorted(BENCHMARK_NAMES)}"
                )
            scale = float(spec.get("scale", 1.0))
            key = ("benchmark", benchmark, scale)
            build = lambda: generate_by_name(benchmark, scale=scale)
        else:
            if not isinstance(source, str):
                raise ProtocolError("'source' must be assembly text")
            digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
            key = ("source", digest)
            build = lambda: build_from_assembly(source)
        with self._lock:
            image = self._images.get(key)
            if image is not None:
                self.hits += 1
                return key, image
            self.misses += 1
        # Build outside the lock (benchmark generation can be slow); a
        # racing duplicate build is wasted work, not an error — first
        # writer wins so every session still sees one shared object.
        image = build()
        with self._lock:
            return key, self._images.setdefault(key, image)

    def resolve_installation(self, spec: dict) -> Tuple[tuple,
                                                        AcfInstallation]:
        """``(key, installation)`` for a spec, shared by content + ACF.

        ACF attachment can wrap the image (``attach_mfi`` appends an
        error-handler stub, yielding a *new* ``ProgramImage``), so warm
        sharing must key the **installation**, not just the raw image:
        every session on the same (program, acf) pair gets the same
        installation object, whose image carries the shared translation
        store.  ``make_machine`` builds a fresh controller per call, so
        sharing the installation never shares mutable machine state.
        """
        image_key, image = self.resolve(spec)
        acf = spec.get("acf", "plain")
        key = image_key + (acf,)
        with self._lock:
            installation = self._installations.get(key)
            if installation is not None:
                return key, installation
        installation = build_installation(image, acf)
        with self._lock:
            return key, self._installations.setdefault(key, installation)

    def stats(self) -> dict:
        with self._lock:
            return {"images": len(self._images), "hits": self.hits,
                    "misses": self.misses}


def build_installation(image, acf: str) -> AcfInstallation:
    """The ACF installation for a session spec's ``acf`` choice."""
    if acf == "plain":
        return plain_installation(image)
    if acf in ("dise3", "dise4"):
        return attach_mfi(image, acf)
    raise ProtocolError(
        f"unknown acf {acf!r}; choose from {ACF_CHOICES}"
    )


def _validate_spec(spec: dict) -> dict:
    """Normalize a session spec, rejecting unknown knobs early."""
    known = {"benchmark", "scale", "source", "acf", "projection",
             "dispatch"}
    extra = set(spec) - known
    if extra:
        raise ProtocolError(
            f"unknown session spec field(s): {', '.join(sorted(extra))}"
        )
    out = dict(spec)
    out["acf"] = spec.get("acf", "plain")
    if out["acf"] not in ACF_CHOICES:
        raise ProtocolError(
            f"unknown acf {out['acf']!r}; choose from {ACF_CHOICES}"
        )
    out["projection"] = spec.get("projection", "full")
    if out["projection"] not in PROJECTIONS:
        raise ProtocolError(
            f"unknown projection {out['projection']!r}; choose from "
            f"{PROJECTIONS}"
        )
    dispatch = spec.get("dispatch")
    if dispatch is not None and dispatch not in ("translated", "fast",
                                                 "generic"):
        raise ProtocolError(
            f"unknown dispatch {dispatch!r}; choose from "
            "translated, fast, generic"
        )
    return out


# ----------------------------------------------------------------------
# Sessions
# ----------------------------------------------------------------------
class Session:
    """One tenant-visible execution: spec, digest chain, machine or park.

    The live machine is optional — between requests a session may hold
    only its parked checkpoint (LRU eviction, server restart).  All
    externally meaningful state (the observation digest chain, retirement
    totals, outputs) lives in JSON-serializable fields, so parking and
    reviving are digest-invisible.
    """

    def __init__(self, session_id: str, tenant: str, spec: dict,
                 catalog: ImageCatalog):
        self.session_id = session_id
        self.tenant = tenant
        self.spec = _validate_spec(spec)
        self.image_key, self.installation = \
            catalog.resolve_installation(self.spec)
        self.image = self.installation.image
        self.observer = ChainedObserver(self.spec["projection"])
        #: Parked precise state when no live machine is attached.  ``None``
        #: with ``machine is None`` means "not started yet" (a fresh
        #: machine starts from the image's entry state).
        self.parked: Optional[dict] = None
        self.machine = None
        #: Whether the most recent machine build bound warm to the shared
        #: ``image._translation_store`` entry.
        self.warm_start: Optional[bool] = None
        self.warm_builds = 0
        self.cold_builds = 0
        self.evictions = 0
        self.events: list = []
        self._event_seq = 0
        self.closed = False

    # -- events --------------------------------------------------------
    def add_event(self, kind: str, **fields):
        event = {"seq": self._event_seq, "kind": kind}
        event.update(fields)
        self._event_seq += 1
        self.events.append(event)

    def events_since(self, cursor: int) -> Tuple[list, int]:
        if cursor < 0:
            cursor = 0
        return self.events[cursor:], len(self.events)

    # -- machine lifecycle --------------------------------------------
    def build_machine(self):
        """Build (and, if parked, restore) the live machine.

        A fresh machine on the same image + an equivalent production set
        re-binds to the warm ``image._translation_store`` entry (see
        :meth:`Machine.checkpoint`), so revived and forked sessions skip
        interpretive warmup.
        """
        machine = self.installation.make_machine(
            record_trace=False, observer=self.observer,
            dispatch=self.spec.get("dispatch"),
        )
        if self.parked is not None:
            machine.restore(self.parked)
            self.parked = None
        self.machine = machine
        self.warm_start = bool(getattr(machine, "_warm", False))
        if self.warm_start:
            self.warm_builds += 1
        else:
            self.cold_builds += 1
        self.add_event("machine_built", warm=self.warm_start)
        return machine

    def park(self):
        """Checkpoint the live machine and drop it (LRU eviction)."""
        if self.machine is None:
            return
        self.parked = self.machine.checkpoint()
        self.machine = None
        self.evictions += 1
        self.add_event("evicted", digest=self.observer.hexdigest(),
                       observations=self.observer.count)

    # -- execution -----------------------------------------------------
    def advance(self, requested: int, ledger: TenantLedger) -> dict:
        """Retire up to ``requested`` dynamic instructions.

        The request window is clamped to the tenant's remaining
        retirement budget; if the *clamped* window (not the caller's own
        limit) is what stops the run, the ledger raises
        :class:`BudgetExceededError` with ``used == limit`` exactly —
        usage is settled first, so the error is raised *after* the
        retirements it reports.
        """
        if self.closed:
            raise SessionError("session is closed", session=self.session_id)
        if requested <= 0:
            raise ProtocolError("steps must be positive")
        requested = min(requested, MAX_STEPS_PER_REQUEST)
        machine = self.machine
        if machine is None:
            raise SessionError(
                "session has no leased machine (internal error)",
                session=self.session_id,
            )
        if machine.halted:
            return self.state(status="halted", retired=0)
        window = ledger.charge_window(requested)
        before = machine.instructions
        budget_clamped = window < requested
        timed_out = False
        try:
            machine.run(max_steps=window)
        except ExecutionTimeout:
            timed_out = True
        retired = machine.instructions - before
        try:
            ledger.settle(retired, clamped=timed_out and budget_clamped)
        finally:
            self.add_event("advanced", retired=retired,
                           digest=self.observer.hexdigest(),
                           halted=machine.halted)
        status = "halted" if machine.halted else "running"
        return self.state(status=status, retired=retired)

    # -- views ---------------------------------------------------------
    def state(self, status: Optional[str] = None, **extra) -> dict:
        machine = self.machine
        if machine is not None:
            halted = machine.halted
            out = {
                "halted": halted,
                "fault_code": machine.fault_code,
                "instructions": machine.instructions,
                "outputs": list(machine.outputs),
            }
        elif self.parked is not None:
            out = {
                "halted": self.parked["halted"],
                "fault_code": self.parked["fault_code"],
                "instructions": self.parked["counters"]["instructions"],
                "outputs": list(self.parked["outputs"]),
            }
        else:
            out = {"halted": False, "fault_code": None, "instructions": 0,
                   "outputs": []}
        out.update({
            "session": self.session_id,
            "tenant": self.tenant,
            "status": status or ("halted" if out["halted"] else "idle"),
            "digest": self.observer.hexdigest(),
            "observations": self.observer.count,
            "warm_start": self.warm_start,
            "parked": self.machine is None and self.parked is not None,
        })
        out.update(extra)
        return out

    def result(self) -> dict:
        """Final outputs + digest; the session must have halted."""
        view = self.state()
        if not view["halted"]:
            raise SessionError(
                "session has not halted; run it further before asking "
                "for a result", session=self.session_id,
            )
        return view

    # -- explicit checkpoint/restore/fork ------------------------------
    def checkpoint_state(self) -> dict:
        """A client-holdable checkpoint: precise state + digest chain."""
        if self.machine is not None:
            precise = self.machine.checkpoint()
        elif self.parked is not None:
            precise = self.parked
        else:
            raise SessionError(
                "session has not started; nothing to checkpoint",
                session=self.session_id,
            )
        return {
            "spec": dict(self.spec),
            "machine": checkpoint_to_json(precise),
            "observer": self.observer.state(),
        }

    def restore_state(self, state: dict):
        """Rewind this session to a checkpoint taken from it (or a fork
        source with an identical spec)."""
        spec = state.get("spec")
        if spec is not None and _validate_spec(spec) != self.spec:
            raise ProtocolError(
                "checkpoint spec does not match this session's spec"
            )
        try:
            precise = checkpoint_from_json(state["machine"])
            observer_state = state["observer"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed session checkpoint: {exc}")
        self.observer = ChainedObserver(self.spec["projection"],
                                        state=observer_state)
        # Drop any live machine: it holds the old observer. The next
        # lease rebuilds against the restored chain — warm, via the
        # shared translation store.
        self.machine = None
        self.parked = precise
        self.add_event("restored", digest=self.observer.hexdigest(),
                       observations=self.observer.count)

    @classmethod
    def fork_from(cls, parent: "Session", session_id: str,
                  catalog: ImageCatalog) -> "Session":
        """A new session continuing ``parent``'s execution and digest.

        The child gets its own installation (hence its own controller —
        fork semantics) on the *shared* image, the parent's precise state,
        and a clone of the parent's digest chain; its first lease binds
        warm to the translation-store entry the parent's runs populated.
        """
        child = cls(session_id, parent.tenant, dict(parent.spec), catalog)
        child.restore_state(parent.checkpoint_state())
        child.add_event("forked", parent=parent.session_id)
        return child

    # -- persistence (graceful shutdown) -------------------------------
    def to_state(self) -> dict:
        """JSON document reviving this session in a fresh server."""
        out = {
            "session": self.session_id,
            "tenant": self.tenant,
            "spec": dict(self.spec),
            "observer": self.observer.state(),
            "machine": None,
        }
        precise = (self.machine.checkpoint() if self.machine is not None
                   else self.parked)
        if precise is not None:
            out["machine"] = checkpoint_to_json(precise)
        return out

    @classmethod
    def from_state(cls, state: dict, catalog: ImageCatalog) -> "Session":
        session = cls(state["session"], state["tenant"], state["spec"],
                      catalog)
        session.observer = ChainedObserver(
            session.spec["projection"], state=state["observer"])
        if state.get("machine") is not None:
            session.parked = checkpoint_from_json(state["machine"])
        session.add_event("resumed_from_shutdown",
                          digest=session.observer.hexdigest())
        return session


# ----------------------------------------------------------------------
# The reproducibility oracle's batch side
# ----------------------------------------------------------------------
def batch_digest(spec: dict, max_steps: int = MAX_STEPS_PER_REQUEST,
                 catalog: Optional[ImageCatalog] = None) -> dict:
    """Run a session spec to halt in one batch shot; digest + outputs.

    This is exactly what ``repro-cli run --digest`` computes: a fresh
    machine under the same installation with a
    :class:`~repro.verify.observe.ChainedObserver` of the same projection.
    Served runs must match it byte for byte, however they were stepped,
    evicted, forked, or restarted in between.
    """
    spec = _validate_spec(spec)
    _, installation = (catalog or ImageCatalog()).resolve_installation(spec)
    observer = ChainedObserver(spec["projection"])
    machine = installation.make_machine(
        record_trace=False, observer=observer,
        dispatch=spec.get("dispatch"),
    )
    result = machine.run(max_steps=max_steps)
    return {
        "digest": observer.hexdigest(),
        "observations": observer.count,
        "outputs": list(result.outputs),
        "instructions": result.instructions,
        "halted": result.halted,
        "fault_code": result.fault_code,
    }
