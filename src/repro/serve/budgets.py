"""Per-tenant serving budgets: retirements and wall-clock seconds.

The server meters two dimensions per tenant:

* **retirements** — dynamic instructions retired across *all* the
  tenant's sessions.  Enforced with :class:`~repro.errors.ExecutionTimeout`
  precision: when a ``run``/``step`` would cross the budget, the machine's
  step limit is clamped to exactly the remaining allowance, so the tenant
  retires precisely ``limit`` instructions before
  :class:`~repro.errors.BudgetExceededError` is raised.  A budgeted run's
  observation digest is therefore a prefix-exact replay of an unbudgeted
  one — the budget changes *when* the run stops, never *what* it computes.
* **wall_clock** — seconds since the tenant's first request, checked at
  request entry (mirroring ``REPRO_TASK_TIMEOUT``'s role in the fabric).

Limits resolve explicit-argument > ``REPRO_SERVE_RETIREMENTS`` /
``REPRO_SERVE_WALL`` environment > unlimited, the same precedence
:func:`repro.fabric.supervise.resolve_task_timeout` uses.  The clock is
injectable so tests enforce wall-clock budgets deterministically.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.errors import BudgetExceededError
from repro.fabric.supervise import _env_number


def resolve_retirement_budget(limit: Optional[int] = None) -> Optional[int]:
    """Retirement allowance per tenant: explicit > env > unlimited."""
    if limit is not None:
        return int(limit) if limit > 0 else None
    return _env_number("REPRO_SERVE_RETIREMENTS", int, 1)


def resolve_wall_budget(limit: Optional[float] = None) -> Optional[float]:
    """Wall-clock allowance per tenant (seconds): explicit > env > unlimited."""
    if limit is not None:
        return float(limit) if limit > 0 else None
    return _env_number("REPRO_SERVE_WALL", float, 0.001)


class TenantLedger:
    """One tenant's metered usage against its budgets.

    ``charge_window`` / ``settle`` implement the exact-count contract:
    before running, the caller asks how many retirements it may attempt
    (the window, clamping its own ``max_steps``); after running it settles
    the number actually retired.  ``settle`` raises
    :class:`BudgetExceededError` only once usage *equals* the limit and
    the tenant asked to go further — so the error surfaces at exactly
    ``used == limit``, never before, never beyond.
    """

    def __init__(self, tenant: str, *,
                 retirement_limit: Optional[int] = None,
                 wall_limit: Optional[float] = None,
                 clock=time.monotonic):
        self.tenant = tenant
        self.retirement_limit = retirement_limit
        self.wall_limit = wall_limit
        self._clock = clock
        self._started = clock()
        self.retired = 0
        self.requests = 0

    # -- wall clock ---------------------------------------------------
    def elapsed(self) -> float:
        return self._clock() - self._started

    def check_wall(self):
        """Request-entry check; raises once the wall budget is spent."""
        self.requests += 1
        if self.wall_limit is None:
            return
        elapsed = self.elapsed()
        if elapsed >= self.wall_limit:
            raise BudgetExceededError(
                f"tenant {self.tenant!r} exhausted its wall-clock budget "
                f"({elapsed:.3f}s of {self.wall_limit:.3f}s)",
                tenant=self.tenant, budget="wall_clock",
                limit=self.wall_limit, used=elapsed,
            )

    # -- retirements --------------------------------------------------
    def remaining(self) -> Optional[int]:
        if self.retirement_limit is None:
            return None
        return max(0, self.retirement_limit - self.retired)

    def charge_window(self, requested: int) -> int:
        """Clamp a step request to the remaining retirement allowance.

        Raises immediately when the allowance is already zero — the
        tenant cannot retire even one more instruction.
        """
        remaining = self.remaining()
        if remaining is None:
            return requested
        if remaining == 0:
            raise BudgetExceededError(
                f"tenant {self.tenant!r} exhausted its retirement budget "
                f"({self.retirement_limit} retirements)",
                tenant=self.tenant, budget="retirements",
                limit=self.retirement_limit, used=self.retired,
            )
        return min(requested, remaining)

    def settle(self, retired: int, *, clamped: bool):
        """Record actual retirements; raise if the clamp was what stopped us.

        ``clamped`` is True when the run hit the budget-clamped window
        (rather than halting or hitting the caller's own smaller limit):
        that is the moment usage reaches ``limit`` exactly and the budget
        error must surface.
        """
        self.retired += retired
        if clamped:
            raise BudgetExceededError(
                f"tenant {self.tenant!r} exhausted its retirement budget "
                f"({self.retirement_limit} retirements)",
                tenant=self.tenant, budget="retirements",
                limit=self.retirement_limit, used=self.retired,
            )

    def snapshot(self) -> dict:
        return {
            "tenant": self.tenant,
            "retired": self.retired,
            "retirement_limit": self.retirement_limit,
            "wall_limit": self.wall_limit,
            "elapsed": self.elapsed(),
            "requests": self.requests,
        }

    def restore(self, snapshot: dict):
        """Re-charge usage from a :meth:`snapshot` of a previous server.

        Limits stay whatever this server was configured with (operators
        may legitimately change them across restarts); only *usage*
        carries over, so a graceful restart never refills a tenant's
        spent retirement or wall-clock allowance.
        """
        self.retired += int(snapshot.get("retired", 0))
        self.requests += int(snapshot.get("requests", 0))
        # Back-date the meter's start so elapsed() continues from the
        # persisted value (works with injected clocks too).
        self._started -= float(snapshot.get("elapsed", 0.0))


class BudgetBook:
    """All tenants' ledgers, created lazily with the server's defaults."""

    def __init__(self, *, retirement_limit: Optional[int] = None,
                 wall_limit: Optional[float] = None, clock=time.monotonic):
        self.retirement_limit = resolve_retirement_budget(retirement_limit)
        self.wall_limit = resolve_wall_budget(wall_limit)
        self._clock = clock
        self._ledgers: Dict[str, TenantLedger] = {}

    def ledger(self, tenant: str) -> TenantLedger:
        entry = self._ledgers.get(tenant)
        if entry is None:
            entry = TenantLedger(
                tenant, retirement_limit=self.retirement_limit,
                wall_limit=self.wall_limit, clock=self._clock,
            )
            self._ledgers[tenant] = entry
        return entry

    def snapshot(self) -> list:
        return [ledger.snapshot() for ledger in self._ledgers.values()]

    def restore(self, snapshots) -> None:
        """Revive per-tenant usage persisted at graceful shutdown."""
        for snapshot in snapshots or []:
            tenant = snapshot.get("tenant")
            if isinstance(tenant, str) and tenant:
                self.ledger(tenant).restore(snapshot)
