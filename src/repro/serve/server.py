"""The DISE simulation server: a synchronous core and an asyncio shell.

:class:`ServerCore` is the whole service as a dict-in/dict-out object:
``handle(request) -> response`` under one re-entrant lock, with no I/O of
its own.  Tests and the in-process client drive it directly; the asyncio
:class:`ReproServer` merely frames it onto TCP (newline-delimited JSON,
:mod:`repro.serve.protocol`).  Keeping the core synchronous means every
behaviour the wire protocol promises — budget precision, digest
continuity across eviction, graceful-shutdown parking — is testable
without sockets, and the TCP path adds only framing.

Request handling is deliberately serialized (machines are not re-entrant
and sessions share the pool); the asyncio shell runs ``handle`` on the
default executor so slow simulation steps do not stall the event loop's
accept/read work.

Observability: every request runs inside a ``serve.request`` telemetry
span (one trace tree per request under ``REPRO_TRACE``) and bumps
``serve.*`` counters; with ``REPRO_TELEMETRY=1`` the server's JSONL run
log doubles as the access log (see docs/serving.md).
"""

from __future__ import annotations

import hmac
import json
import os
import threading
from pathlib import Path
from typing import Dict, Optional

from repro import telemetry
from repro.errors import ProtocolError, ReproError, SessionError
from repro.serve import protocol
from repro.serve.budgets import BudgetBook
from repro.serve.pool import MachinePool
from repro.serve.session import (
    MAX_STEPS_PER_REQUEST,
    ImageCatalog,
    Session,
)

#: Schema of the graceful-shutdown session snapshot file.
STATE_SCHEMA = 1
_STATE_FILE = "sessions.json"


class _Campaign:
    """One background campaign: a driver running on its own thread."""

    def __init__(self, campaign_id: str, kind: str, tenant: str, thread):
        self.campaign_id = campaign_id
        self.kind = kind
        self.tenant = tenant
        self.thread = thread
        self.status = "running"
        self.report = None
        self.error: Optional[BaseException] = None

    def poll(self) -> dict:
        out = {"campaign": self.campaign_id, "kind": self.kind,
               "status": self.status}
        if self.status == "done":
            out["report"] = self.report
        elif self.status == "error":
            out["error"] = protocol.error_response(None, self.error)["error"]
        return out


def _run_faults_campaign(params: dict) -> dict:
    from repro.faults import FAULT_CLASSES, CampaignConfig, run_campaign

    config = CampaignConfig(
        seed=int(params.get("seed", 2003)),
        faults=int(params.get("faults", 50)),
        benchmarks=tuple(params.get("benchmarks", ("gzip",))),
        scale=float(params.get("scale", 0.05)),
        classes=tuple(params.get("classes", FAULT_CLASSES)),
        variant=params.get("variant", "dise3"),
        max_steps=int(params.get("max_steps", 2_000_000)),
    )
    fabric_options = None
    kills = params.get("chaos_kills")
    if kills:
        # JSON-able resilience hook: [[task_id, attempt], ...] worker
        # kills, scripted through the fabric's deterministic ChaosPlan.
        # The supervised pool retries the murdered attempt, so the
        # campaign (and the server above it) survives the lost worker.
        from repro.fabric.chaos import ChaosPlan

        fabric_options = {
            "chaos": ChaosPlan(
                kills=tuple((str(task), int(attempt))
                            for task, attempt in kills)),
            "retries": int(params.get("retries", 1)),
            "backoff": float(params.get("backoff", 0.0)),
        }
    return run_campaign(config, jobs=params.get("jobs", 1),
                        batch=params.get("batch"),
                        fabric_options=fabric_options)


def _run_verify_campaign(params: dict) -> dict:
    from repro.verify import ORACLES, VerifyConfig, run_verification

    config = VerifyConfig(
        benchmarks=tuple(params.get("benchmarks", ("gzip",))),
        oracles=tuple(params.get("oracles", ORACLES)),
        scale=float(params.get("scale", 0.05)),
        variant=params.get("variant", "dise3"),
        max_steps=int(params.get("max_steps", 10_000_000)),
        bisect=bool(params.get("bisect", False)),
        window=int(params.get("window", 256)),
    )
    return run_verification(config, jobs=params.get("jobs", 1))


def _run_experiment_campaign(params: dict) -> dict:
    from repro.harness import ALL_EXPERIMENTS, Suite

    name = params.get("name")
    if name not in ALL_EXPERIMENTS:
        raise ProtocolError(
            f"unknown experiment {name!r}; choose from "
            f"{sorted(ALL_EXPERIMENTS)}"
        )
    suite = Suite(
        benchmarks=tuple(params["benchmarks"])
        if params.get("benchmarks") else None,
        scale=float(params.get("scale", 1.0)),
        jobs=params.get("jobs", 1),
        cache=None,
    )
    return {"name": name, "rendered": ALL_EXPERIMENTS[name](suite).render()}


_CAMPAIGN_DRIVERS = {
    "faults": _run_faults_campaign,
    "verify": _run_verify_campaign,
    "experiment": _run_experiment_campaign,
}

#: Ops gated by the tenant's wall-clock budget (the ones that consume
#: simulation resources).  Reads — state, result, events, checkpoint —
#: stay answerable so an over-budget tenant can still collect what it
#: already paid for.
_BUDGETED_OPS = frozenset(
    ("open_session", "step", "run", "fork", "campaign_start"))


class ServerCore:
    """The simulation service as one lockable object (no I/O)."""

    def __init__(self, *, pool_capacity: Optional[int] = None,
                 retirement_limit: Optional[int] = None,
                 wall_limit: Optional[float] = None,
                 state_dir=None, clock=None,
                 admin_token: Optional[str] = None):
        self._lock = threading.RLock()
        # Operator credential for the wire `shutdown` op: explicit
        # argument > REPRO_SERVE_ADMIN_TOKEN > disabled.  With no token
        # the op is refused outright — an anonymous tenant must not be
        # able to park the server for everyone (operators signal the
        # process instead; `ServerCore.shutdown()` stays callable).
        if admin_token is None:
            admin_token = os.environ.get("REPRO_SERVE_ADMIN_TOKEN") or None
        self.admin_token = admin_token
        self.catalog = ImageCatalog()
        self.pool = MachinePool(pool_capacity)
        kwargs = {} if clock is None else {"clock": clock}
        self.budgets = BudgetBook(retirement_limit=retirement_limit,
                                  wall_limit=wall_limit, **kwargs)
        self.sessions: Dict[str, Session] = {}
        self.campaigns: Dict[str, _Campaign] = {}
        self._session_seq = 0
        self._campaign_seq = 0
        self.closed = False
        self.state_dir = Path(state_dir) if state_dir else None
        self._resume_sessions()

    # -- graceful shutdown / resume ------------------------------------
    def _resume_sessions(self):
        """Revive sessions parked by a previous server's shutdown."""
        if self.state_dir is None:
            return
        path = self.state_dir / _STATE_FILE
        if not path.is_file():
            return
        doc = json.loads(path.read_text(encoding="utf-8"))
        if doc.get("schema") != STATE_SCHEMA:
            raise ProtocolError(
                f"{path}: unsupported serve state schema "
                f"{doc.get('schema')!r}"
            )
        # Revive budget ledgers first: a restart must not refill a
        # tenant's spent retirement/wall-clock allowance.
        self.budgets.restore(doc.get("budgets", []))
        for state in doc.get("sessions", []):
            session = Session.from_state(state, self.catalog)
            self.sessions[session.session_id] = session
            # Keep new ids clear of revived ones ("s<N>").
            sid = session.session_id
            if sid.startswith("s") and sid[1:].isdigit():
                self._session_seq = max(self._session_seq, int(sid[1:]))
        path.unlink()  # consumed — a crash now re-parks at next shutdown
        telemetry.counter("serve.sessions.resumed").inc(
            len(self.sessions))

    def shutdown(self) -> dict:
        """Park every live session, persist them, refuse further work."""
        with self._lock:
            if self.closed:
                return {"persisted": 0, "state_dir":
                        str(self.state_dir) if self.state_dir else None}
            self.pool.park_all()
            persisted = 0
            if self.state_dir is not None:
                doc = {"schema": STATE_SCHEMA, "sessions": [],
                       "budgets": self.budgets.snapshot()}
                for session in self.sessions.values():
                    if session.closed:
                        continue
                    doc["sessions"].append(session.to_state())
                    persisted += 1
                self.state_dir.mkdir(parents=True, exist_ok=True)
                path = self.state_dir / _STATE_FILE
                tmp = path.with_suffix(".tmp")
                tmp.write_text(json.dumps(doc, sort_keys=True),
                               encoding="utf-8")
                tmp.replace(path)
            self.closed = True
            telemetry.counter("serve.shutdowns").inc()
            return {"persisted": persisted,
                    "state_dir": str(self.state_dir) if self.state_dir
                    else None}

    # -- request entry point -------------------------------------------
    def handle(self, request: dict) -> dict:
        """One request dict in, one response dict out; never raises."""
        request_id = request.get("id") if isinstance(request, dict) else None
        try:
            if not isinstance(request, dict):
                raise ProtocolError("request must be a JSON object")
            op = protocol.check_request(request)
            tenant = request.get("tenant", "anonymous")
            if not isinstance(tenant, str) or not tenant:
                raise ProtocolError("'tenant' must be a non-empty string")
            with self._lock:
                if self.closed and op not in ("hello", "stats"):
                    raise SessionError("server is shutting down")
                with telemetry.span("serve.request", op=op, tenant=tenant):
                    if op in _BUDGETED_OPS:
                        self.budgets.ledger(tenant).check_wall()
                    result = self._dispatch(op, tenant, request)
            telemetry.counter("serve.requests").inc()
            telemetry.counter(f"serve.requests.{op}").inc()
            return protocol.ok_response(request_id, result)
        except Exception as exc:  # envelope everything; nothing leaks
            telemetry.counter("serve.errors").inc()
            if isinstance(exc, ReproError):
                telemetry.counter(
                    f"serve.errors.{type(exc).__name__}").inc()
            return protocol.error_response(request_id, exc)

    # -- op dispatch ---------------------------------------------------
    def _dispatch(self, op: str, tenant: str, request: dict) -> dict:
        handler = getattr(self, f"_op_{op}")
        return handler(tenant, request)

    def _session(self, tenant: str, request: dict) -> Session:
        sid = request.get("session")
        session = self.sessions.get(sid)
        if session is None or session.closed:
            raise SessionError(f"no such session: {sid!r}", session=sid)
        if session.tenant != tenant:
            # Deliberately the same error as "never existed": tenants
            # cannot probe each other's session ids.
            raise SessionError(f"no such session: {sid!r}", session=sid)
        return session

    def _op_hello(self, tenant, request):
        return {"server": "repro-serve",
                "protocol": protocol.PROTOCOL_VERSION,
                "ops": list(protocol.OPS)}

    def _op_open_session(self, tenant, request):
        spec = request.get("spec")
        if not isinstance(spec, dict):
            raise ProtocolError("open_session needs a 'spec' object")
        self._session_seq += 1
        session = Session(f"s{self._session_seq}", tenant, spec,
                          self.catalog)
        self.sessions[session.session_id] = session
        self.pool.lease(session)
        self._count_build(session)
        telemetry.counter("serve.sessions.opened").inc()
        return session.state(status="open")

    def _count_build(self, session: Session):
        if session.warm_start:
            telemetry.counter("serve.pool.warm_builds").inc()
        else:
            telemetry.counter("serve.pool.cold_builds").inc()

    def _advance(self, tenant: str, request: dict, requested: int) -> dict:
        session = self._session(tenant, request)
        evictions_before = self.pool.evictions
        self.pool.lease(session)
        if self.pool.evictions > evictions_before:
            telemetry.counter("serve.pool.evictions").inc(
                self.pool.evictions - evictions_before)
        state = session.advance(requested, self.budgets.ledger(tenant))
        telemetry.counter("serve.retired").inc(state.get("retired", 0))
        return state

    def _op_step(self, tenant, request):
        return self._advance(tenant, request,
                             int(request.get("steps", 1)))

    def _op_run(self, tenant, request):
        return self._advance(
            tenant, request,
            int(request.get("max_steps", MAX_STEPS_PER_REQUEST)))

    def _op_checkpoint(self, tenant, request):
        session = self._session(tenant, request)
        return {"checkpoint": session.checkpoint_state()}

    def _op_restore(self, tenant, request):
        session = self._session(tenant, request)
        state = request.get("checkpoint")
        if not isinstance(state, dict):
            raise ProtocolError("restore needs a 'checkpoint' object")
        self.pool.drop(session)
        session.restore_state(state)
        return session.state(status="restored")

    def _op_fork(self, tenant, request):
        parent = self._session(tenant, request)
        if parent.machine is None and parent.parked is None:
            # An unstarted parent has nothing to checkpoint; lease it so
            # the fork captures its (initial) precise state.
            self.pool.lease(parent)
            self._count_build(parent)
        self._session_seq += 1
        child = Session.fork_from(parent, f"s{self._session_seq}",
                                  self.catalog)
        self.sessions[child.session_id] = child
        telemetry.counter("serve.sessions.forked").inc()
        return child.state(status="forked", parent=parent.session_id)

    def _op_state(self, tenant, request):
        return self._session(tenant, request).state()

    def _op_result(self, tenant, request):
        return self._session(tenant, request).result()

    def _op_events(self, tenant, request):
        session = self._session(tenant, request)
        events, cursor = session.events_since(
            int(request.get("cursor", 0)))
        return {"events": events, "cursor": cursor}

    def _op_close_session(self, tenant, request):
        session = self._session(tenant, request)
        self.pool.drop(session)
        session.closed = True
        del self.sessions[session.session_id]
        telemetry.counter("serve.sessions.closed").inc()
        return {"closed": session.session_id,
                "digest": session.observer.hexdigest(),
                "observations": session.observer.count}

    # -- campaigns -----------------------------------------------------
    def _op_campaign_start(self, tenant, request):
        kind = request.get("kind")
        driver = _CAMPAIGN_DRIVERS.get(kind)
        if driver is None:
            raise ProtocolError(
                f"unknown campaign kind {kind!r}; choose from "
                f"{sorted(_CAMPAIGN_DRIVERS)}"
            )
        params = request.get("params") or {}
        if not isinstance(params, dict):
            raise ProtocolError("'params' must be an object")
        self._campaign_seq += 1
        campaign_id = f"c{self._campaign_seq}"

        campaign = _Campaign(campaign_id, kind, tenant, None)

        def _run():
            try:
                campaign.report = driver(params)
                campaign.status = "done"
            except BaseException as exc:
                campaign.error = exc
                campaign.status = "error"

        thread = threading.Thread(
            target=_run, name=f"serve-campaign-{campaign_id}", daemon=True)
        campaign.thread = thread
        self.campaigns[campaign_id] = campaign
        telemetry.counter("serve.campaigns.started").inc()
        thread.start()
        return {"campaign": campaign_id, "kind": kind, "status": "running"}

    def _op_campaign_poll(self, tenant, request):
        campaign = self.campaigns.get(request.get("campaign"))
        if campaign is None or campaign.tenant != tenant:
            # Deliberately the same error as "never existed": campaign
            # ids are sequential, and tenants must not be able to probe
            # (let alone read) each other's campaign reports.
            raise ProtocolError(
                f"no such campaign: {request.get('campaign')!r}")
        return campaign.poll()

    # -- introspection -------------------------------------------------
    def _op_stats(self, tenant, request):
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "sessions": len(self.sessions),
            "pool": self.pool.stats(),
            "catalog": self.catalog.stats(),
            "budgets": self.budgets.snapshot(),
            "campaigns": {
                cid: c.status for cid, c in self.campaigns.items()
                if c.tenant == tenant},
            "closed": self.closed,
        }

    def _op_shutdown(self, tenant, request):
        if self.admin_token is None:
            raise ProtocolError(
                "shutdown over the wire is disabled; start the server "
                "with --admin-token/REPRO_SERVE_ADMIN_TOKEN or signal "
                "the process (SIGINT/SIGTERM)"
            )
        token = request.get("token")
        if not isinstance(token, str) or \
                not hmac.compare_digest(token, self.admin_token):
            raise ProtocolError("shutdown requires the operator "
                                "admin token")
        return self.shutdown()


# ----------------------------------------------------------------------
# asyncio TCP shell
# ----------------------------------------------------------------------
class ReproServer:
    """Newline-delimited JSON over TCP, framing a :class:`ServerCore`."""

    def __init__(self, core: Optional[ServerCore] = None,
                 host: str = "127.0.0.1", port: int = 0, **core_kwargs):
        self.core = core if core is not None else ServerCore(**core_kwargs)
        self.host = host
        self.port = port
        self._server = None

    @staticmethod
    async def _read_frame(reader):
        """One newline-terminated frame, or ``None`` at EOF.

        Raises :class:`ProtocolError` when a frame overruns the stream
        limit, after consuming the oversized frame up to its newline —
        so the caller can report the error on the wire and keep serving
        the connection (pipelined frames behind it are untouched).
        """
        import asyncio

        try:
            return await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            # EOF: a final unterminated frame is still decoded.
            return exc.partial or None
        except asyncio.LimitOverrunError as exc:
            discarded = 0
            consumed = exc.consumed
            while True:
                discarded += len(await reader.readexactly(max(1, consumed)))
                try:
                    discarded += len(await reader.readuntil(b"\n"))
                    break
                except asyncio.LimitOverrunError as again:
                    consumed = again.consumed
                except asyncio.IncompleteReadError:
                    break
            raise ProtocolError(
                f"frame of {discarded} bytes exceeds the "
                f"{protocol.MAX_FRAME_BYTES}-byte limit"
            ) from None

    async def _handle_connection(self, reader, writer):
        import asyncio

        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await self._read_frame(reader)
                except ProtocolError as exc:
                    response = protocol.error_response(None, exc)
                    writer.write(protocol.encode_message(response))
                    await writer.drain()
                    continue
                except ConnectionError:
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = protocol.decode_message(line)
                except ProtocolError as exc:
                    response = protocol.error_response(None, exc)
                else:
                    # The core is blocking (a `run` may simulate millions
                    # of steps); keep the loop free to accept/read.
                    response = await loop.run_in_executor(
                        None, self.core.handle, request)
                try:
                    payload = protocol.encode_message(response)
                except ProtocolError as exc:
                    # The result outgrew the frame cap (huge campaign
                    # report / events backlog): the client gets a small
                    # typed error, not a dead connection.
                    payload = protocol.encode_message(
                        protocol.error_response(response.get("id"), exc))
                writer.write(payload)
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                # Teardown path: the loop is being drained; the transport
                # is closed either way.
                pass

    async def start(self):
        import asyncio

        # The stream limit must cover a full protocol frame (asyncio's
        # default is 64 KiB, which would reject the 16 MiB frames the
        # protocol promises — large restore checkpoints, source
        # uploads); slack covers the newline terminator.
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=protocol.MAX_FRAME_BYTES + 1024)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self):
        async with self._server:
            await self._server.serve_forever()

    async def stop(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.core.shutdown()


def run_server(host: str = "127.0.0.1", port: int = 0,
               ready=None, **core_kwargs) -> int:
    """Blocking entry point used by ``repro-cli serve``.

    Prints/announces the bound address, serves until SIGINT/SIGTERM,
    then shuts the core down gracefully (parking and persisting
    sessions).  ``ready`` is called with the bound ``(host, port)`` once
    accepting — tests and the CI smoke job use it to rendezvous.
    Explicit signal handlers matter: a backgrounded server inherits
    ``SIGINT`` ignored from non-interactive shells, and installing a
    handler overrides that disposition.
    """
    import asyncio
    import signal

    server = ReproServer(host=host, port=port, **core_kwargs)

    async def _main():
        await server.start()
        if ready is not None:
            ready(server.host, server.port)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, ValueError):
                pass  # non-main thread / platform without support
        forever = asyncio.ensure_future(server.serve_forever())
        stopper = asyncio.ensure_future(stop.wait())
        await asyncio.wait({forever, stopper},
                           return_when=asyncio.FIRST_COMPLETED)
        forever.cancel()
        stopper.cancel()
        await asyncio.gather(forever, stopper, return_exceptions=True)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        summary = server.core.shutdown()
        telemetry.event("serve.shutdown", **{
            "persisted": summary["persisted"]})
    return 0
