"""The machine pool: bounded live machines, LRU eviction via checkpoints.

A live :class:`~repro.sim.functional.Machine` holds the register file,
sparse memory, decode caches, and (on the translated tier) superblock
bindings — too much to keep resident for every open session when the
server is holding thousands.  The pool caps live machines at
``REPRO_SERVE_POOL`` (default 8); leasing a machine for a session beyond
the cap evicts the least-recently-used session by *parking* it
(:meth:`Machine.checkpoint` onto the session, machine dropped).  Reviving
a parked session rebuilds a machine and restores the checkpoint; because
checkpoints carry counters and fresh machines re-bind warm to the shared
``image._translation_store`` entry, eviction is invisible to both digests
and budgets — only latency notices.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.fabric.supervise import _env_number
from repro.serve.session import Session

#: Default live-machine cap when ``REPRO_SERVE_POOL`` is unset.
DEFAULT_CAPACITY = 8


def resolve_capacity(capacity: Optional[int] = None) -> int:
    """Live-machine cap: explicit > ``REPRO_SERVE_POOL`` env > 8."""
    if capacity is not None:
        return max(1, int(capacity))
    env = _env_number("REPRO_SERVE_POOL", int, 1)
    return DEFAULT_CAPACITY if env is None else env


class MachinePool:
    """LRU set of sessions currently holding a live machine."""

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = resolve_capacity(capacity)
        self._live: "OrderedDict[str, Session]" = OrderedDict()
        self.leases = 0
        self.builds = 0
        self.warm_builds = 0
        self.evictions = 0

    def lease(self, session: Session):
        """The session's live machine, building/reviving as needed.

        Marks the session most-recently-used; may evict another session's
        machine to stay within capacity.
        """
        self.leases += 1
        sid = session.session_id
        if sid in self._live:
            self._live.move_to_end(sid)
            return session.machine
        while len(self._live) >= self.capacity:
            _, victim = self._live.popitem(last=False)
            victim.park()
            self.evictions += 1
        machine = session.build_machine()
        self.builds += 1
        if session.warm_start:
            self.warm_builds += 1
        self._live[sid] = session
        return machine

    def drop(self, session: Session):
        """Forget a session's machine without parking (session close)."""
        self._live.pop(session.session_id, None)
        session.machine = None

    def park_all(self):
        """Checkpoint every live session (graceful shutdown)."""
        while self._live:
            _, session = self._live.popitem(last=False)
            session.park()

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "live": len(self._live),
            "leases": self.leases,
            "builds": self.builds,
            "warm_builds": self.warm_builds,
            "evictions": self.evictions,
        }
