"""Command-line tools: assemble, disassemble, run, compress, experiment.

Usage (after ``pip install -e .``)::

    python -m repro.tools asm program.s -o program.bin
    python -m repro.tools disasm program.bin
    python -m repro.tools run program.s --mfi dise3
    python -m repro.tools run --benchmark gzip --scale 0.3 --timing
    python -m repro.tools compress --benchmark gzip --variant DISE
    python -m repro.tools experiment fig7_ratio --benchmarks bzip2,mcf

Programs are accepted either as assembly files (see
:mod:`repro.isa.assembler` for the syntax) or as named synthetic
benchmarks.
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import contextmanager
from pathlib import Path

from repro.acf.compression import FIGURE7_VARIANTS, compress_image
from repro.acf.mfi import attach_mfi, rewrite_mfi
from repro.acf.base import plain_installation
from repro.harness import ALL_EXPERIMENTS, Suite, render_config_table
from repro.isa.disassembler import disassemble_listing
from repro.isa.encoding import decode_stream, encode_stream
from repro.program.builder import build_from_assembly
from repro.sim.config import MachineConfig
from repro.sim.cycle import simulate_trace
from repro.workloads import BENCHMARK_NAMES, generate_by_name


@contextmanager
def _telemetry_run(args, argv=None):
    """Bracket a harness command with a telemetry run (no-op when off).

    The JSONL event log lands next to the command's checkpoint when one is
    configured, else in ``REPRO_TELEMETRY_DIR`` / ``.repro-telemetry/``.
    """
    from repro import telemetry

    log_dir = None
    anchor = getattr(args, "checkpoint", None)
    if anchor and telemetry.enabled():
        log_dir = Path(os.path.abspath(anchor)).parent / ".repro-telemetry"
    run = telemetry.start_run(log_dir=log_dir, argv=argv or sys.argv[1:])
    try:
        yield run
    except BaseException:
        telemetry.finish_run("error")
        raise
    else:
        path = telemetry.finish_run("ok")
        if path is not None:
            print(f"telemetry: {path}", file=sys.stderr)


def _load_image(args):
    if getattr(args, "benchmark", None):
        return generate_by_name(args.benchmark,
                                scale=getattr(args, "scale", 1.0))
    if getattr(args, "source", None):
        with open(args.source) as handle:
            return build_from_assembly(handle.read())
    raise SystemExit("error: provide an assembly file or --benchmark NAME")


def cmd_asm(args):
    """``asm``: assemble a source file into a flat binary."""
    with open(args.source) as handle:
        image = build_from_assembly(handle.read())
    data = encode_stream(image.instructions)
    out = args.output or (args.source.rsplit(".", 1)[0] + ".bin")
    with open(out, "wb") as handle:
        handle.write(data)
    print(f"{len(image.instructions)} instructions -> {out} "
          f"({len(data)} bytes)")
    return 0


def cmd_disasm(args):
    """``disasm``: disassemble a binary file or a named benchmark."""
    if args.binary:
        with open(args.binary, "rb") as handle:
            instructions = decode_stream(handle.read())
        print(disassemble_listing(instructions, base=args.base))
        return 0
    image = _load_image(args)
    print(disassemble_listing(
        image.instructions, base=image.text_base,
        symbols=image.symbol_table_by_address(),
    ))
    return 0


def cmd_run(args):
    """``run``: execute a program, optionally under MFI and timing."""
    image = _load_image(args)
    if args.mfi == "rewrite":
        installation = rewrite_mfi(image)
    elif args.mfi:
        installation = attach_mfi(image, args.mfi)
    else:
        installation = plain_installation(image)
    observer = None
    if args.digest:
        from repro.verify.observe import ChainedObserver

        observer = ChainedObserver(args.projection)
    result = installation.run(max_steps=args.max_steps, observer=observer)
    if observer is not None:
        # The chained observation digest — the batch side of the serving
        # layer's reproducibility oracle (a served run of the same spec
        # must print the identical value; see docs/serving.md).
        print(f"digest: {observer.hexdigest()} "
              f"({observer.count} observations, "
              f"projection {observer.projection})")
    print(f"halted: {result.halted}  fault: {result.fault_code}")
    print(f"outputs: {result.outputs}")
    print(f"dynamic instructions: {result.instructions} "
          f"({result.expansions} expansions)")
    if args.timing:
        timing = simulate_trace(result, MachineConfig(), warm_start=True,
                                engine=args.cycle_engine)
        print(f"cycles: {timing.cycles}  IPC: {timing.ipc:.2f}  "
              f"I$ misses: {timing.il1_misses}  "
              f"mispredicts: {timing.mispredicts}")
    return 1 if result.fault_code is not None else 0


def cmd_compress(args):
    """``compress``: compress a program and report the ratios."""
    image = _load_image(args)
    variants = dict(FIGURE7_VARIANTS)
    if args.variant not in variants:
        raise SystemExit(
            f"error: unknown variant {args.variant!r}; "
            f"choose from {sorted(variants)}"
        )
    result = compress_image(image, variants[args.variant])
    print(f"variant:      {args.variant}")
    print(f"text:         {result.original_text_bytes} B -> "
          f"{result.compressed_text_bytes} B ({result.text_ratio:.1%})")
    print(f"dictionary:   {result.dictionary_entries} entries, "
          f"{result.dictionary_bytes} B  (total {result.total_ratio:.1%})")
    print(f"instances:    {result.instances} "
          f"({result.instructions_removed} instructions removed)")
    if args.verify:
        from repro.sim.functional import run_program

        plain = run_program(image, record_trace=False)
        run = result.installation().run(record_trace=False)
        ok = run.outputs == plain.outputs
        print(f"verification: {'identical' if ok else 'MISMATCH'}")
        return 0 if ok else 1
    return 0


def _suite_from_args(args):
    return Suite(
        benchmarks=tuple(args.benchmarks.split(",")) if args.benchmarks
        else None,
        scale=args.scale,
        jobs=getattr(args, "jobs", None),
        cache=None if getattr(args, "no_cache", False) else "auto",
    )


def cmd_experiment(args):
    """``experiment``: regenerate one (or all) paper figures."""
    from repro.telemetry import span

    suite = _suite_from_args(args)
    if args.config:
        print(render_config_table())
        print()
    names = list(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    with _telemetry_run(args):
        for name in names:
            if name not in ALL_EXPERIMENTS:
                raise SystemExit(
                    f"error: unknown experiment {name!r}; choose from "
                    f"{sorted(ALL_EXPERIMENTS)} or 'all'"
                )
            with span("experiment", experiment=name):
                print(ALL_EXPERIMENTS[name](suite).render())
            print()
    return 0


def cmd_report(args):
    """``report``: run experiments and emit a markdown report."""
    from repro.harness.report import build_report, report_fingerprint

    suite = _suite_from_args(args)
    experiments = (
        tuple(args.experiments.split(",")) if args.experiments else None
    )
    checkpoint = None
    if args.checkpoint or args.resume:
        from repro.harness.checkpoint import RunCheckpoint

        path = args.checkpoint or ".repro-report-checkpoint.json"
        fingerprint = report_fingerprint(suite, experiments)
        if args.resume:
            checkpoint = RunCheckpoint.load(path, fingerprint)
            if len(checkpoint):
                print(f"resuming: {len(checkpoint)} experiment(s) restored "
                      f"from {path}", file=sys.stderr)
        else:
            checkpoint = RunCheckpoint(path, fingerprint)
    with _telemetry_run(args):
        report = build_report(suite, experiments=experiments,
                              checkpoint=checkpoint)
    if checkpoint is not None:
        checkpoint.clear()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"wrote {args.output} ({len(report.splitlines())} lines)")
    else:
        print(report)
    return 0


def cmd_faults(args):
    """``faults``: run or summarize an MFI fault-injection campaign."""
    from repro.faults import (
        FAULT_CLASSES,
        CampaignConfig,
        load_report,
        render_summary,
        run_campaign,
    )
    from repro.faults.campaign import save_report

    if args.action == "report":
        if not args.out:
            raise SystemExit("error: faults report needs --out REPORT.json")
        print(render_summary(load_report(args.out)))
        return 0

    classes = (tuple(args.classes.split(",")) if args.classes
               else FAULT_CLASSES)
    benchmarks = (tuple(args.benchmarks.split(",")) if args.benchmarks
                  else ("bzip2", "gzip", "mcf", "parser"))
    config = CampaignConfig(
        seed=args.seed, faults=args.faults, benchmarks=benchmarks,
        scale=args.scale, classes=classes, variant=args.variant,
        max_steps=args.max_steps,
    )

    def progress(fault_id, outcome, done, total):
        if args.progress and (done % 25 == 0 or done == total):
            print(f"  {done}/{total} faults ({fault_id}: {outcome})",
                  file=sys.stderr)

    with _telemetry_run(args):
        report = run_campaign(
            config,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            progress=progress,
            batch=args.batch,
            jobs=args.jobs,
        )
    if args.out:
        save_report(report, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    print(render_summary(report))
    guarded = report["summary"]["guarded"]
    ok = (guarded["containment_rate"] in (None, 1.0)
          and report["summary"]["false_positives"] == 0)
    return 0 if ok else 1


def cmd_verify(args):
    """``verify``: differential conformance checks (see docs/verification.md)."""
    from repro.verify import (
        ORACLES,
        VerifyConfig,
        load_report,
        render_verify_summary,
        run_oracle,
        run_verification,
    )
    from repro.verify.campaign import all_passed, save_report

    if args.action == "report":
        if not args.out:
            raise SystemExit("error: verify report needs --out REPORT.json")
        report = load_report(args.out)
        print(render_verify_summary(report))
        return 0 if all_passed(report) else 1

    oracles = (ORACLES if args.oracle in (None, "all")
               else tuple(args.oracle.split(",")))
    benchmarks = (tuple(args.benchmarks.split(",")) if args.benchmarks
                  else ("bzip2", "gzip", "mcf", "parser"))

    if args.action == "bisect":
        # One cell, rendered in full: the divergence-diagnosis front door.
        if len(oracles) != 1 or len(benchmarks) != 1:
            raise SystemExit(
                "error: verify bisect needs exactly one --oracle and one "
                "benchmark in --benchmarks"
            )
        outcome = run_oracle(
            oracles[0], benchmarks[0], scale=args.scale,
            variant=args.variant, max_steps=args.max_steps,
            bisect=True, window=args.window,
        )
        print(f"{outcome.benchmark}:{outcome.oracle}: {outcome.status}")
        if outcome.detail:
            print(outcome.detail)
        if outcome.report is not None:
            print(outcome.report.render())
        return 0 if outcome.passed else 1

    config = VerifyConfig(
        benchmarks=benchmarks, oracles=oracles, scale=args.scale,
        variant=args.variant, max_steps=args.max_steps,
        bisect=not args.no_bisect, window=args.window,
    )

    def progress(cell, status, done, total):
        if args.progress:
            print(f"  {done}/{total} {cell}: {status}", file=sys.stderr)

    with _telemetry_run(args):
        report = run_verification(
            config,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            progress=progress,
            jobs=args.jobs,
        )
    if args.out:
        save_report(report, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    print(render_verify_summary(report))
    return 0 if all_passed(report) else 1


def cmd_fabric(args):
    """``fabric``: checkpoint status, campaign resume, artifact-store GC."""
    import json

    from repro.fabric.checkpoint import read_checkpoint_header
    from repro.fabric.store import resolve_store

    if args.action == "gc":
        store = resolve_store(args.store if args.store else "auto")
        if store is None:
            raise SystemExit("error: no artifact store configured (set "
                             "REPRO_FABRIC_STORE or pass --store DIR)")
        removed = store.gc(everything=args.all)
        what = "artifact/quarantined" if args.all else "quarantined"
        print(f"removed {removed} {what} file(s) from {store.root}")
        return 0

    if args.action == "status":
        if getattr(args, "json", False):
            doc = {"checkpoint": None, "store": None}
            code = 0
            if args.checkpoint:
                header = read_checkpoint_header(args.checkpoint)
                if header is None:
                    doc["checkpoint"] = {"path": args.checkpoint,
                                         "readable": False}
                    code = 1
                else:
                    doc["checkpoint"] = dict(header, path=args.checkpoint,
                                             readable=True)
            store = resolve_store(args.store if args.store else "auto")
            if store is not None:
                doc["store"] = store.stats()
            print(json.dumps(doc, sort_keys=True))
            return code
        code = 0
        if args.checkpoint:
            header = read_checkpoint_header(args.checkpoint)
            if header is None:
                print(f"checkpoint {args.checkpoint}: missing or unreadable")
                code = 1
            else:
                state = ("digest ok" if header["verified"]
                         else "DIGEST MISMATCH")
                print(f"checkpoint {args.checkpoint}: "
                      f"driver={header['driver']} schema=v{header['schema']} "
                      f"completed={header['completed']} [{state}]")
                print("  fingerprint: "
                      + json.dumps(header["fingerprint"], sort_keys=True))
        store = resolve_store(args.store if args.store else "auto")
        if store is None:
            print("artifact store: disabled (set REPRO_FABRIC_STORE to "
                  "enable cross-campaign dedupe)")
        else:
            stats = store.stats()
            artifacts = stats["artifacts"]
            print(f"artifact store {stats['root']} "
                  f"(schema v{stats['schema_version']}): "
                  f"{artifacts['entries']} artifact(s), "
                  f"{artifacts['bytes'] / 1024:.1f} KiB, "
                  f"{stats['quarantined']['entries']} quarantined")
        return code

    # resume: rebuild the driver's config from the checkpoint fingerprint
    # and finish the run on the fabric.
    if not args.checkpoint:
        raise SystemExit("error: fabric resume needs --checkpoint")
    header = read_checkpoint_header(args.checkpoint)
    if header is None:
        raise SystemExit(f"error: checkpoint {args.checkpoint} is missing "
                         "or unreadable")
    driver = header["driver"]
    fingerprint = header["fingerprint"] or {}

    def progress(task_id, status, done, total):
        if args.progress:
            print(f"  {done}/{total} {task_id}: {status}", file=sys.stderr)

    try:
        if driver == "faults":
            from repro.faults import (
                CampaignConfig,
                render_summary,
                run_campaign,
            )
            from repro.faults.campaign import save_report

            config = CampaignConfig(
                seed=fingerprint["seed"], faults=fingerprint["faults"],
                benchmarks=tuple(fingerprint["benchmarks"]),
                scale=fingerprint["scale"],
                classes=tuple(fingerprint["classes"]),
                variant=fingerprint["variant"],
                max_steps=fingerprint["max_steps"],
            )
        elif driver == "verify":
            from repro.verify import (
                VerifyConfig,
                render_verify_summary,
                run_verification,
            )
            from repro.verify.campaign import all_passed, save_report

            config = VerifyConfig(
                benchmarks=tuple(fingerprint["benchmarks"]),
                oracles=tuple(fingerprint["oracles"]),
                scale=fingerprint["scale"],
                variant=fingerprint["variant"],
                max_steps=fingerprint["max_steps"],
                bisect=fingerprint["bisect"],
                window=fingerprint["window"],
            )
        else:
            raise SystemExit(
                f"error: checkpoint driver {driver!r} is not resumable "
                "from the CLI (expected 'faults' or 'verify')"
            )
    except (KeyError, TypeError) as exc:
        raise SystemExit(
            f"error: checkpoint {args.checkpoint} has an incomplete "
            f"fingerprint ({exc}); rerun the original command instead"
        )

    if driver == "faults":
        with _telemetry_run(args):
            report = run_campaign(config, checkpoint_path=args.checkpoint,
                                  resume=True, progress=progress,
                                  jobs=args.jobs)
        if args.out:
            save_report(report, args.out)
            print(f"wrote {args.out}", file=sys.stderr)
        print(render_summary(report))
        return 0
    with _telemetry_run(args):
        report = run_verification(config, checkpoint_path=args.checkpoint,
                                  resume=True, progress=progress,
                                  jobs=args.jobs)
    if args.out:
        save_report(report, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    print(render_verify_summary(report))
    return 0 if all_passed(report) else 1


def _run_log_header(path):
    """``(t, run_id)`` from a log's ``run_begin`` header, or ``None``."""
    import json

    try:
        with open(path, "r", encoding="utf-8") as fh:
            first = fh.readline()
        obj = json.loads(first)
    except (OSError, ValueError):
        return None
    if obj.get("kind") != "run_begin":
        return None
    return (obj.get("t", 0.0), str(obj.get("run", "")))


def _resolve_run_log(value) -> Path:
    """Accept a run JSONL path or a directory (use its newest run log).

    "Newest" is decided by each log's ``run_begin`` header (start
    timestamp, then run id) — concurrent-process runs flush and rename
    their files in arbitrary order, so neither filename sorting nor
    mtime identifies the most recent *run*.  Logs without a readable
    header (partial copies, foreign files matching the glob) are
    skipped; a timestamp tie is reported on stderr so scripted callers
    know the choice was ambiguous.
    """
    from repro.telemetry import default_log_dir

    path = Path(value) if value else default_log_dir()
    if path.is_dir():
        logs = sorted(path.glob("run-*.jsonl"))
        if not logs:
            raise SystemExit(f"error: no run logs under {path}")
        headed = []
        for log in logs:
            header = _run_log_header(log)
            if header is not None:
                headed.append((header, log))
        if not headed:
            raise SystemExit(
                f"error: no run log under {path} has a readable "
                "run_begin header"
            )
        headed.sort(key=lambda pair: pair[0])
        (top_t, top_run), newest = headed[-1]
        ties = [log.name for (t, _), log in headed[:-1] if t == top_t]
        if ties:
            print(
                f"warning: {len(ties) + 1} run logs under {path} start at "
                f"the same timestamp; picked {newest.name} (run {top_run}) "
                f"over {', '.join(ties)} — pass an explicit path to "
                "disambiguate", file=sys.stderr,
            )
        return newest
    if not path.is_file():
        raise SystemExit(f"error: no such run log: {path}")
    return path


def cmd_telemetry(args):
    """``telemetry``: inspect the JSONL event logs of instrumented runs."""
    import json

    from repro.telemetry import TelemetryError, read_events, validate_log
    from repro.telemetry.summary import (
        RunView,
        render_diff,
        render_summary,
        render_top,
    )

    if args.action == "diff":
        if not args.other:
            raise SystemExit("error: telemetry diff needs two run logs")
        a = RunView(_resolve_run_log(args.run))
        b = RunView(_resolve_run_log(args.other))
        if a.schema != b.schema and not args.allow_schema_mismatch:
            raise SystemExit(
                f"error: cannot diff across event-log schemas "
                f"(v{a.schema} vs v{b.schema}): metric names and "
                "semantics may differ between versions.  Regenerate one "
                "side with this build, or pass --allow-schema-mismatch "
                "to compare anyway."
            )
        print(render_diff(a, b, threshold=args.threshold), end="")
        return 0
    path = _resolve_run_log(args.run)
    if args.action == "validate":
        try:
            count = validate_log(path)
        except TelemetryError as exc:
            print(f"INVALID: {exc}", file=sys.stderr)
            return 1
        print(f"{path}: {count} events, schema OK")
        return 0
    if args.action == "trace":
        from repro.telemetry.export import chrome_trace, validate_chrome_trace

        events = read_events(path)
        doc = chrome_trace(events)
        try:
            count = validate_chrome_trace(doc)
        except TelemetryError as exc:
            print(f"INVALID: {exc}", file=sys.stderr)
            return 1
        text = json.dumps(doc, sort_keys=True)
        if args.chrome:
            Path(args.chrome).write_text(text + "\n", encoding="utf-8")
            print(f"wrote {args.chrome} ({count} trace events; open in "
                  "chrome://tracing or https://ui.perfetto.dev)",
                  file=sys.stderr)
        else:
            print(text)
        return 0
    if args.action == "critical-path":
        from repro.telemetry.export import (
            critical_path,
            render_critical_path,
        )

        events = read_events(path)
        run_id = events[0].get("run", "?") if events else "?"
        print(render_critical_path(run_id, critical_path(events)), end="")
        return 0
    if args.action == "profile":
        from repro.telemetry.profile import collapsed_from_metrics

        run = RunView(path)
        lines = collapsed_from_metrics(run.metrics)
        if not lines:
            print("(no profile.* counters in this run — rerun with "
                  "REPRO_TRACE_PROFILE=1)", file=sys.stderr)
            return 1
        body = "\n".join(lines) + "\n"
        if args.out:
            Path(args.out).write_text(body, encoding="utf-8")
            print(f"wrote {args.out} ({len(lines)} collapsed stacks)",
                  file=sys.stderr)
        else:
            print(body, end="")
        return 0
    run = RunView(path)
    if args.action == "summary":
        print(render_summary(run), end="")
    else:
        print(render_top(run, n=args.top), end="")
    return 0


def cmd_cache(args):
    """``cache``: inspect or clear the persistent trace cache."""
    import json

    from repro.harness.trace_cache import default_cache_root, open_cache

    cache = open_cache(args.dir if args.dir else "auto")
    if cache is None:
        root = default_cache_root()
        if getattr(args, "json", False):
            print(json.dumps({"enabled": False,
                              "root": str(root) if root else None},
                             sort_keys=True))
            return 1
        print("trace cache is disabled"
              + (f" (REPRO_TRACE_CACHE={root})" if root else
                 " (REPRO_TRACE_CACHE)"))
        return 1
    if args.action == "stats":
        stats = cache.stats()
        if getattr(args, "json", False):
            print(json.dumps(dict(stats, enabled=True), sort_keys=True))
            return 0
        print(f"cache root: {stats['root']} "
              f"(current schema v{stats['schema_version']})")
        for kind in ("traces", "cycles", "quarantined"):
            entry = stats[kind]
            by_schema = entry.get("by_schema") or {}
            versions = "  ".join(
                f"v{version}:{count}" if version != "unknown"
                else f"unframed:{count}"
                for version, count in by_schema.items()
            )
            print(f"  {kind:7s} {entry['entries']:6d} entries  "
                  f"{entry['bytes'] / 1024:10.1f} KiB"
                  + (f"  [{versions}]" if versions else ""))
        return 0
    removed = cache.clear()
    print(f"removed {removed} entries from {cache.root} "
          "(entries newer than this build's schema are kept)")
    return 0


def cmd_serve(args):
    """``serve``: run the multi-tenant simulation server (docs/serving.md).

    With ``REPRO_TELEMETRY=1`` the run's JSONL event log doubles as the
    access log: one ``serve.request`` span per request plus the
    ``serve.*`` counter catalog; the log lands in
    ``REPRO_SERVE_ACCESS_LOG`` (or the usual telemetry directory).
    """
    from repro.serve.server import run_server

    log_dir = os.environ.get("REPRO_SERVE_ACCESS_LOG") or None
    state_dir = args.state_dir or os.environ.get("REPRO_SERVE_STATE") or None

    def ready(host, port):
        print(f"serving on {host}:{port}", flush=True)

    from repro import telemetry

    telemetry.start_run(log_dir=log_dir, argv=sys.argv[1:])
    status = "ok"
    try:
        return run_server(
            host=args.host, port=args.port, ready=ready,
            pool_capacity=args.pool,
            retirement_limit=args.retirements,
            wall_limit=args.wall,
            state_dir=state_dir,
            admin_token=args.admin_token,
        )
    except BaseException:
        status = "error"
        raise
    finally:
        path = telemetry.finish_run(status)
        if path is not None:
            print(f"telemetry: {path}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    """The argparse command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro.tools",
        description="DISE reproduction command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("asm", help="assemble a source file to binary")
    p.add_argument("source")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_asm)

    p = sub.add_parser("disasm", help="disassemble a binary or program")
    p.add_argument("binary", nargs="?")
    p.add_argument("--benchmark", choices=BENCHMARK_NAMES)
    p.add_argument("--scale", type=float, default=0.2)
    p.add_argument("--base", type=lambda s: int(s, 0), default=0x400000)
    p.set_defaults(func=cmd_disasm, source=None)

    p = sub.add_parser("run", help="run a program, optionally under MFI")
    p.add_argument("source", nargs="?")
    p.add_argument("--benchmark", choices=BENCHMARK_NAMES)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--mfi", choices=["dise3", "dise4", "rewrite"])
    p.add_argument("--cycle-engine", choices=["outcome", "reference"],
                   help="timing replay engine (default: REPRO_CYCLE or "
                        "'outcome'; both are bit-identical)")
    p.add_argument("--timing", action="store_true",
                   help="also replay under the cycle model")
    p.add_argument("--max-steps", type=int, default=30_000_000)
    p.add_argument("--digest", action="store_true",
                   help="print the chained observation digest (the batch "
                   "side of the serving reproducibility oracle)")
    p.add_argument("--projection", default="full",
                   choices=["full", "app", "user", "retire"],
                   help="observation projection for --digest "
                   "(default full)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compress", help="compress a program")
    p.add_argument("source", nargs="?")
    p.add_argument("--benchmark", choices=BENCHMARK_NAMES)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--variant", default="DISE",
                   help="one of the Figure 7 variants (default DISE)")
    p.add_argument("--verify", action="store_true",
                   help="run compressed vs original and compare")
    p.set_defaults(func=cmd_compress)

    p = sub.add_parser("experiment", help="regenerate a paper figure")
    p.add_argument("name", help="fig6_top .. fig8_rt, or 'all'")
    p.add_argument("--benchmarks", help="comma-separated subset")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--config", action="store_true",
                   help="print the machine-configuration table first")
    p.add_argument("-j", "--jobs", type=int,
                   help="parallel workers (default: REPRO_JOBS or 1)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the persistent trace cache")
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("report",
                       help="run experiments and emit a markdown report")
    p.add_argument("-o", "--output", help="write to a file instead of stdout")
    p.add_argument("--benchmarks", help="comma-separated subset")
    p.add_argument("--experiments", help="comma-separated experiment ids")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("-j", "--jobs", type=int,
                   help="parallel workers (default: REPRO_JOBS or 1)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the persistent trace cache")
    p.add_argument("--checkpoint",
                   help="checkpoint file for per-experiment progress "
                   "(default: .repro-report-checkpoint.json when resuming)")
    p.add_argument("--resume", action="store_true",
                   help="replay experiments already in the checkpoint")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "faults",
        help="run an MFI fault-injection campaign (see "
        "docs/fault_injection.md)",
    )
    p.add_argument("action", choices=["run", "report"],
                   help="'run' a campaign, or 'report' (re-render a saved "
                   "report from --out)")
    p.add_argument("--seed", type=int, default=2003)
    p.add_argument("--faults", type=int, default=500,
                   help="number of faults to inject (default 500)")
    p.add_argument("--benchmarks",
                   help="comma-separated benchmarks "
                   "(default bzip2,gzip,mcf,parser)")
    p.add_argument("--scale", type=float, default=0.05,
                   help="workload scale factor (default 0.05)")
    p.add_argument("--classes",
                   help="comma-separated fault classes (default: all)")
    p.add_argument("--variant", choices=["dise3", "dise4"],
                   default="dise3", help="MFI production-set variant")
    p.add_argument("--max-steps", type=int, default=2_000_000,
                   help="dynamic-instruction cap per faulted run")
    p.add_argument("--out", help="write (or with 'report', read) the "
                   "machine-readable report JSON here")
    p.add_argument("--checkpoint",
                   help="checkpoint file for interrupted campaigns")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint")
    p.add_argument("--progress", action="store_true",
                   help="print progress to stderr")
    p.add_argument("--batch", type=int, default=None,
                   help="cohort width for batched lane execution "
                   "(0 disables; default: REPRO_BATCH or off)")
    p.add_argument("-j", "--jobs", type=int,
                   help="parallel workers (default: REPRO_JOBS or 1)")
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "verify",
        help="differential conformance oracles (see docs/verification.md)",
    )
    p.add_argument("action", choices=["run", "report", "bisect"],
                   help="'run' a sweep, 'report' re-renders a saved report "
                   "from --out, 'bisect' runs one cell and prints the full "
                   "divergence report")
    p.add_argument("--oracle", default="all",
                   help="comma-separated oracles, or 'all' (default)")
    p.add_argument("--benchmarks",
                   help="comma-separated benchmarks "
                   "(default bzip2,gzip,mcf,parser)")
    p.add_argument("--scale", type=float, default=0.05,
                   help="workload scale factor (default 0.05)")
    p.add_argument("--variant", choices=["dise3", "dise4"],
                   default="dise3", help="MFI production-set variant for "
                   "dise_vs_static")
    p.add_argument("--max-steps", type=int, default=10_000_000,
                   help="dynamic-instruction cap per run")
    p.add_argument("--window", type=int, default=256,
                   help="bisection digest-window size (default 256)")
    p.add_argument("--no-bisect", action="store_true",
                   help="report divergences without locating the first "
                   "divergent retirement")
    p.add_argument("--out", help="write (or with 'report', read) the "
                   "machine-readable report JSON here")
    p.add_argument("--checkpoint",
                   help="checkpoint file for interrupted sweeps")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint")
    p.add_argument("-j", "--jobs", type=int,
                   help="parallel workers (default: REPRO_JOBS or 1)")
    p.add_argument("--progress", action="store_true",
                   help="print progress to stderr")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "telemetry",
        help="inspect run telemetry (see docs/observability.md)",
    )
    p.add_argument("action",
                   choices=["summary", "top", "diff", "validate",
                            "trace", "critical-path", "profile"],
                   help="'summary' renders a run's metrics, 'top' its "
                   "hottest opcodes/productions, 'diff' compares two runs, "
                   "'validate' schema-checks the JSONL, 'trace' exports "
                   "Chrome trace-event JSON, 'critical-path' reports the "
                   "span chain gating wall-clock, 'profile' renders "
                   "collapsed stacks from the hot-path profiler")
    p.add_argument("run", nargs="?",
                   help="run log (.jsonl) or log directory "
                   "(default: REPRO_TELEMETRY_DIR or .repro-telemetry)")
    p.add_argument("other", nargs="?",
                   help="second run log for 'diff'")
    p.add_argument("-n", "--top", type=int, default=10,
                   help="how many opcodes/productions to show (default 10)")
    p.add_argument("--threshold", type=float, default=0.0,
                   help="diff: hide metrics whose relative change is "
                   "below this fraction")
    p.add_argument("--allow-schema-mismatch", action="store_true",
                   help="diff: compare runs even when their event-log "
                   "schema versions differ")
    p.add_argument("--chrome", metavar="PATH",
                   help="trace: write Chrome trace-event JSON here "
                   "(default: stdout)")
    p.add_argument("--out", metavar="PATH",
                   help="profile: write collapsed stacks here "
                   "(default: stdout)")
    p.set_defaults(func=cmd_telemetry)

    p = sub.add_parser(
        "fabric",
        help="execution-fabric checkpoints and artifact store "
        "(see docs/fabric.md)",
    )
    p.add_argument("action", choices=["status", "resume", "gc"],
                   help="'status' inspects a checkpoint and the store, "
                   "'resume' finishes an interrupted faults/verify "
                   "campaign from its checkpoint, 'gc' deletes "
                   "quarantined store entries")
    p.add_argument("--checkpoint",
                   help="fabric checkpoint file to inspect or resume")
    p.add_argument("--store",
                   help="artifact-store directory "
                   "(default: REPRO_FABRIC_STORE)")
    p.add_argument("--all", action="store_true",
                   help="gc: also delete live artifacts, not just "
                   "quarantined ones")
    p.add_argument("--out", help="resume: write the finished report "
                   "JSON here")
    p.add_argument("--json", action="store_true",
                   help="status: print machine-readable JSON instead of "
                   "text")
    p.add_argument("-j", "--jobs", type=int,
                   help="parallel workers (default: REPRO_JOBS or 1)")
    p.add_argument("--progress", action="store_true",
                   help="print progress to stderr")
    p.set_defaults(func=cmd_fabric)

    p = sub.add_parser("cache",
                       help="inspect or clear the persistent trace cache")
    p.add_argument("action", choices=["stats", "clear"])
    p.add_argument("--dir", help="cache directory "
                   "(default: REPRO_TRACE_CACHE or ~/.cache/repro-dise)")
    p.add_argument("--json", action="store_true",
                   help="stats: print machine-readable JSON instead of "
                   "text")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant simulation server (see docs/serving.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0 = pick an ephemeral port; "
                   "the bound address is printed on stdout)")
    p.add_argument("--pool", type=int, default=None,
                   help="live-machine pool capacity "
                   "(default: REPRO_SERVE_POOL or 8)")
    p.add_argument("--retirements", type=int, default=None,
                   help="per-tenant retirement budget "
                   "(default: REPRO_SERVE_RETIREMENTS or unlimited)")
    p.add_argument("--wall", type=float, default=None,
                   help="per-tenant wall-clock budget in seconds "
                   "(default: REPRO_SERVE_WALL or unlimited)")
    p.add_argument("--state-dir",
                   help="directory for graceful-shutdown session "
                   "snapshots (default: REPRO_SERVE_STATE or off)")
    p.add_argument("--admin-token", default=None,
                   help="operator token enabling the wire `shutdown` op "
                   "(default: REPRO_SERVE_ADMIN_TOKEN; unset = op "
                   "disabled, signal the process instead)")
    p.set_defaults(func=cmd_serve)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
