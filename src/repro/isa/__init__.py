"""Alpha-like ISA model: registers, opcodes, instructions, encoding, asm.

This package is the foundation of the DISE reproduction.  It defines the
instruction set the simulators execute, the binary encoding that code-size
experiments measure, and the assembler/disassembler used by tools, tests and
examples.
"""

from repro.isa.instruction import INSTRUCTION_BYTES, NOP, Instruction
from repro.isa.opcodes import (
    Format,
    OpClass,
    Opcode,
    RESERVED_OPCODES,
    UNSAFE_OPCLASSES,
    parse_opcode,
)
from repro.isa.registers import (
    DISE_REG_BASE,
    NUM_DISE_REGS,
    NUM_USER_REGS,
    ZERO_REG,
    dise_reg,
    is_dise_reg,
    is_user_reg,
    parse_reg,
    reg_name,
)
from repro.isa.encoding import (
    EncodingError,
    canonicalize,
    decode,
    decode_stream,
    encode,
    encode_stream,
)
from repro.isa.assembler import AssemblyError, Label, assemble, parse_instruction
from repro.isa.disassembler import disassemble, disassemble_listing

__all__ = [
    "INSTRUCTION_BYTES",
    "NOP",
    "Instruction",
    "Format",
    "OpClass",
    "Opcode",
    "RESERVED_OPCODES",
    "UNSAFE_OPCLASSES",
    "parse_opcode",
    "DISE_REG_BASE",
    "NUM_DISE_REGS",
    "NUM_USER_REGS",
    "ZERO_REG",
    "dise_reg",
    "is_dise_reg",
    "is_user_reg",
    "parse_reg",
    "reg_name",
    "EncodingError",
    "canonicalize",
    "decode",
    "decode_stream",
    "encode",
    "encode_stream",
    "AssemblyError",
    "Label",
    "assemble",
    "parse_instruction",
    "disassemble",
    "disassemble_listing",
]
