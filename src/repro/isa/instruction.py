"""The :class:`Instruction` value type.

An :class:`Instruction` is an immutable, hashable record of one machine
instruction.  Field meaning depends on the opcode's :class:`~repro.isa.opcodes.Format`:

======== =========================================================
Format   Fields
======== =========================================================
MEM      ``ra`` data/dest register, ``rb`` base register, ``imm``
         signed 16-bit displacement
BRANCH   ``ra`` test/link register, ``imm`` signed word displacement
         (relative to PC+4) or a symbolic ``target`` label pre-layout
OPERATE  ``ra`` first source, ``rb`` second source (or ``imm``
         8-bit unsigned literal), ``rc`` destination
JUMP     ``ra`` link register, ``rb`` target-address register
CODEWORD ``ra``/``rb``/``rc`` are the codeword parameters P1/P2/P3,
         ``imm`` is the 11-bit replacement-sequence tag
NULLARY  no fields
======== =========================================================

The DISE trigger-field accessors (:attr:`rs`, :attr:`rt`, :attr:`rd`) expose
the register roles that replacement-sequence directives ``T.RS``, ``T.RT``
and ``T.RD`` refer to (Section 2.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.isa.opcodes import Format, OpClass, Opcode
from repro.isa.registers import ZERO_REG, reg_name

#: Number of bytes occupied by one uncompressed instruction.
INSTRUCTION_BYTES = 4


@dataclass(frozen=True)
class Instruction:
    """One machine instruction (see module docstring for field roles)."""

    opcode: Opcode
    ra: Optional[int] = None
    rb: Optional[int] = None
    rc: Optional[int] = None
    imm: Optional[int] = None
    #: Symbolic branch target; resolved to ``imm`` at program layout.
    target: Optional[str] = None

    # ------------------------------------------------------------------
    # Classification shortcuts
    # ------------------------------------------------------------------
    @property
    def format(self):
        return self.opcode.format

    @property
    def opclass(self):
        return self.opcode.opclass

    @property
    def is_load(self):
        return self.opcode.is_load

    @property
    def is_store(self):
        return self.opcode.is_store

    @property
    def is_branch(self):
        return self.opcode.is_branch

    @property
    def is_codeword(self):
        return self.opcode.is_reserved

    # ------------------------------------------------------------------
    # DISE trigger-field roles (T.RS / T.RT / T.RD / T.IMM / T.P1-3)
    # ------------------------------------------------------------------
    @property
    def rs(self):
        """The trigger's primary source register (``T.RS``).

        For memory operations this is the *address* register, matching the
        paper's Figure 1 where ``srl T.RS, 26`` extracts the segment bits of
        the effective address.
        """
        fmt = self.format
        if fmt is Format.MEM:
            return self.rb
        if fmt is Format.OPERATE:
            return self.ra
        if fmt is Format.BRANCH:
            return self.ra
        if fmt is Format.JUMP:
            return self.rb
        if fmt is Format.CODEWORD:
            return self.ra
        return None

    @property
    def rt(self):
        """The trigger's secondary source register (``T.RT``)."""
        fmt = self.format
        if fmt is Format.MEM and self.is_store:
            return self.ra
        if fmt is Format.OPERATE:
            return self.rb
        if fmt is Format.CODEWORD:
            return self.rb
        return None

    @property
    def rd(self):
        """The trigger's destination register (``T.RD``)."""
        fmt = self.format
        if fmt is Format.MEM and self.is_load:
            return self.ra
        if fmt is Format.OPERATE:
            return self.rc
        if fmt is Format.JUMP:
            return self.ra
        if fmt is Format.BRANCH and self.opclass is OpClass.UNCOND_BRANCH:
            return self.ra
        if fmt is Format.CODEWORD:
            return self.rc
        return None

    @property
    def tag(self):
        """The 11-bit explicit replacement-sequence tag of a codeword."""
        if self.format is Format.CODEWORD:
            return self.imm
        return None

    # ------------------------------------------------------------------
    # Dataflow (used by the timing model and the binary rewriter)
    # ------------------------------------------------------------------
    def source_regs(self) -> Tuple[int, ...]:
        """Registers read by this instruction (zero register excluded)."""
        op, fmt = self.opcode, self.format
        srcs = []
        if fmt is Format.MEM:
            srcs.append(self.rb)
            if self.is_store:
                srcs.append(self.ra)
        elif fmt is Format.OPERATE:
            srcs.append(self.ra)
            if self.rb is not None:
                srcs.append(self.rb)
            if op in (Opcode.CMOVEQ, Opcode.CMOVNE):
                srcs.append(self.rc)  # conditional move reads the old dest
        elif fmt is Format.BRANCH:
            if op.is_cond_branch or op.is_dise_branch or \
                    op in (Opcode.OUT, Opcode.CTRL):
                srcs.append(self.ra)
        elif fmt is Format.JUMP:
            srcs.append(self.rb)
        elif fmt is Format.CODEWORD:
            # A raw codeword's register parameters are conservatively treated
            # as sources; after DISE expansion the replacement sequence's own
            # dataflow governs.
            srcs.extend(r for r in (self.ra, self.rb, self.rc) if r is not None)
        return tuple(r for r in srcs if r is not None and r != ZERO_REG)

    def dest_reg(self) -> Optional[int]:
        """Register written by this instruction, or ``None``."""
        op, fmt = self.opcode, self.format
        dest = None
        if fmt is Format.MEM and (self.is_load or op in (Opcode.LDA, Opcode.LDAH)):
            dest = self.ra
        elif fmt is Format.OPERATE:
            dest = self.rc
        elif fmt is Format.JUMP:
            dest = self.ra
        elif fmt is Format.BRANCH and self.opclass is OpClass.UNCOND_BRANCH:
            dest = self.ra
        if dest == ZERO_REG:
            return None
        return dest

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def with_fields(self, **changes) -> "Instruction":
        """Return a copy of this instruction with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self):
        op, fmt = self.opcode, self.format
        mnem = op.mnemonic

        def reg(r):
            return reg_name(r) if r is not None else "?"

        if fmt is Format.NULLARY:
            return mnem
        if fmt is Format.MEM:
            return f"{mnem} {reg(self.ra)}, {self.imm}({reg(self.rb)})"
        if fmt is Format.BRANCH:
            where = self.target if self.target is not None else self.imm
            if op is Opcode.OUT:
                # The displacement field is ignored by execution but kept
                # reassemblable when its bits are set.
                if self.imm in (None, 0):
                    return f"{mnem} {reg(self.ra)}"
                return f"{mnem} {reg(self.ra)}, {self.imm}"
            if op is Opcode.FAULT:
                # ``fault code`` for the common zero-reg form; ``fault reg,
                # code`` keeps a non-zero ra field reassemblable.
                if self.ra in (None, ZERO_REG):
                    return f"{mnem} {self.imm}"
                return f"{mnem} {reg(self.ra)}, {self.imm}"
            if self.opclass is OpClass.UNCOND_BRANCH:
                return f"{mnem} {reg(self.ra)}, {where}"
            return f"{mnem} {reg(self.ra)}, {where}"
        if fmt is Format.OPERATE:
            src2 = f"#{self.imm}" if self.rb is None else reg(self.rb)
            return f"{mnem} {reg(self.ra)}, {src2}, {reg(self.rc)}"
        if fmt is Format.JUMP:
            return f"{mnem} {reg(self.ra)}, ({reg(self.rb)})"
        if fmt is Format.CODEWORD:
            return (
                f"{mnem} p1={reg(self.ra)}, p2={reg(self.rb)}, "
                f"p3={reg(self.rc)}, tag={self.imm}"
            )
        raise AssertionError(f"unhandled format {fmt}")


#: A canonical no-op instruction.
NOP = Instruction(Opcode.NOP)
