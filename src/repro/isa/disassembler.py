"""Disassembler: render instructions (and whole images) as assembly text.

Complements :mod:`repro.isa.assembler`; ``parse_instruction(disassemble(i))``
round-trips for any encodable instruction.  When a symbol table is supplied,
branch displacements are rendered as label names.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.encoding import canonicalize
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Format, OpClass, Opcode
from repro.isa.registers import reg_name


def branch_target_addr(instr: Instruction, pc: int) -> Optional[int]:
    """Absolute target address of a direct branch at ``pc``, if resolvable."""
    if instr.format is not Format.BRANCH or instr.imm is None:
        return None
    if instr.opcode in (Opcode.OUT, Opcode.FAULT) or instr.opcode.is_dise_branch:
        return None
    return pc + INSTRUCTION_BYTES + instr.imm * INSTRUCTION_BYTES


def disassemble(instr: Instruction, pc=None, symbols=None) -> str:
    """Render one instruction as canonical, reassemblable assembly text.

    ``pc`` and ``symbols`` (an address -> name mapping) are optional; when
    provided, branch targets are symbolised.  Instructions with resolved
    fields are canonicalised first (defaulted registers and immediates
    rendered as decoding would produce them), so for every opcode
    ``parse_instruction(disassemble(i))`` assembles back to the same
    encoding — the round-trip fixed point the ``roundtrip`` conformance
    oracle checks.
    """
    if pc is not None and symbols:
        target = branch_target_addr(instr, pc)
        if target is not None and target in symbols:
            return str(instr.with_fields(imm=None, target=symbols[target]))
    if instr.target is None:
        instr = canonicalize(instr)
    return str(instr)


def disassemble_listing(instructions, base=0, symbols=None) -> str:
    """Render a sequence of instructions as an address-annotated listing."""
    by_addr = dict(symbols or {})
    lines = []
    for index, instr in enumerate(instructions):
        pc = base + index * INSTRUCTION_BYTES
        if pc in by_addr:
            lines.append(f"{by_addr[pc]}:")
        text = disassemble(instr, pc=pc, symbols=by_addr)
        lines.append(f"    {pc:#010x}:  {text}")
    return "\n".join(lines)
