"""Opcode and opcode-class definitions for the Alpha-like ISA.

The ISA is a compact but complete subset of the Alpha integer ISA: enough to
compile realistic integer workloads (loads/stores, ALU ops, compares,
conditional moves, branches, indirect jumps, calls) plus the extras DISE
needs:

* four **reserved opcodes** (``res0``..``res3``) that never occur naturally
  and are used as aware-ACF codewords (Section 2.1, *explicit tagging*);
* **DISE-internal branch variants** (``dbeq``/``dbne``/``dbr``) that modify
  the DISEPC instead of the PC (Section 2.1, *replacement sequence
  semantics*).  These only ever appear inside replacement sequences.

Every opcode carries its encoding format, its opcode class (the pattern
granularity DISE matches on), and an execution latency used by the timing
model.
"""

from __future__ import annotations

import enum


class Format(enum.Enum):
    """Binary encoding format of an instruction."""

    MEM = "mem"            # op ra, disp(rb)          -- loads, stores, lda
    BRANCH = "branch"      # op ra, disp              -- PC-relative branches
    OPERATE = "operate"    # op ra, rb|#lit, rc       -- ALU operations
    JUMP = "jump"          # op ra, (rb)              -- indirect control flow
    CODEWORD = "codeword"  # op p1, p2, p3, tag       -- reserved DISE opcodes
    NULLARY = "nullary"    # op                       -- nop / halt / ...


class OpClass(enum.Enum):
    """Coarse instruction classes; DISE patterns may match at this level."""

    LOAD = "load"
    STORE = "store"
    INT_ARITH = "int_arith"
    COND_BRANCH = "cond_branch"
    UNCOND_BRANCH = "uncond_branch"   # direct br/bsr
    INDIRECT_JUMP = "indirect_jump"   # jmp/jsr/ret through a register
    NOP = "nop"
    SYSTEM = "system"
    RESERVED = "reserved"             # DISE codeword opcodes
    DISE_BRANCH = "dise_branch"       # DISEPC-relative internal branches


class Opcode(enum.Enum):
    """All opcodes, each with encoding value, format, class and latency."""

    #        code  format            opclass                 latency
    LDA =    (0x08, Format.MEM,      OpClass.INT_ARITH,      1)
    LDAH =   (0x09, Format.MEM,      OpClass.INT_ARITH,      1)
    LDL =    (0x28, Format.MEM,      OpClass.LOAD,           3)
    LDQ =    (0x29, Format.MEM,      OpClass.LOAD,           3)
    STL =    (0x2C, Format.MEM,      OpClass.STORE,          1)
    STQ =    (0x2D, Format.MEM,      OpClass.STORE,          1)

    ADDQ =   (0x10, Format.OPERATE,  OpClass.INT_ARITH,      1)
    SUBQ =   (0x11, Format.OPERATE,  OpClass.INT_ARITH,      1)
    MULQ =   (0x13, Format.OPERATE,  OpClass.INT_ARITH,      7)
    AND =    (0x14, Format.OPERATE,  OpClass.INT_ARITH,      1)
    BIS =    (0x15, Format.OPERATE,  OpClass.INT_ARITH,      1)   # logical OR
    XOR =    (0x16, Format.OPERATE,  OpClass.INT_ARITH,      1)
    SLL =    (0x17, Format.OPERATE,  OpClass.INT_ARITH,      1)
    SRL =    (0x18, Format.OPERATE,  OpClass.INT_ARITH,      1)
    SRA =    (0x19, Format.OPERATE,  OpClass.INT_ARITH,      1)
    CMPEQ =  (0x1A, Format.OPERATE,  OpClass.INT_ARITH,      1)
    CMPLT =  (0x1B, Format.OPERATE,  OpClass.INT_ARITH,      1)
    CMPLE =  (0x1C, Format.OPERATE,  OpClass.INT_ARITH,      1)
    CMPULT = (0x1D, Format.OPERATE,  OpClass.INT_ARITH,      1)
    CMOVEQ = (0x1E, Format.OPERATE,  OpClass.INT_ARITH,      1)
    CMOVNE = (0x1F, Format.OPERATE,  OpClass.INT_ARITH,      1)

    BEQ =    (0x39, Format.BRANCH,   OpClass.COND_BRANCH,    1)
    BNE =    (0x3D, Format.BRANCH,   OpClass.COND_BRANCH,    1)
    BLT =    (0x3A, Format.BRANCH,   OpClass.COND_BRANCH,    1)
    BLE =    (0x3B, Format.BRANCH,   OpClass.COND_BRANCH,    1)
    BGT =    (0x3F, Format.BRANCH,   OpClass.COND_BRANCH,    1)
    BGE =    (0x3E, Format.BRANCH,   OpClass.COND_BRANCH,    1)
    BR =     (0x30, Format.BRANCH,   OpClass.UNCOND_BRANCH,  1)
    BSR =    (0x34, Format.BRANCH,   OpClass.UNCOND_BRANCH,  1)

    JMP =    (0x37, Format.JUMP,     OpClass.INDIRECT_JUMP,  1)
    JSR =    (0x35, Format.JUMP,     OpClass.INDIRECT_JUMP,  1)
    RET =    (0x36, Format.JUMP,     OpClass.INDIRECT_JUMP,  1)

    NOP =    (0x00, Format.NULLARY,  OpClass.NOP,            1)
    HALT =   (0x01, Format.NULLARY,  OpClass.SYSTEM,         1)
    OUT =    (0x02, Format.BRANCH,   OpClass.SYSTEM,         1)   # emit ra
    FAULT =  (0x03, Format.BRANCH,   OpClass.SYSTEM,         1)   # raise error
    CTRL =   (0x0A, Format.BRANCH,   OpClass.SYSTEM,         1)   # controller call

    RES0 =   (0x04, Format.CODEWORD, OpClass.RESERVED,       1)
    RES1 =   (0x05, Format.CODEWORD, OpClass.RESERVED,       1)
    RES2 =   (0x06, Format.CODEWORD, OpClass.RESERVED,       1)
    RES3 =   (0x07, Format.CODEWORD, OpClass.RESERVED,       1)

    DBEQ =   (0x31, Format.BRANCH,   OpClass.DISE_BRANCH,    1)
    DBNE =   (0x32, Format.BRANCH,   OpClass.DISE_BRANCH,    1)
    DBR =    (0x33, Format.BRANCH,   OpClass.DISE_BRANCH,    1)

    def __init__(self, code, fmt, opclass, latency):
        self.code = code
        self.format = fmt
        self.opclass = opclass
        self.latency = latency

    @property
    def mnemonic(self):
        """Lowercase assembly mnemonic."""
        return self.name.lower()

    @property
    def is_load(self):
        return self.opclass is OpClass.LOAD

    @property
    def is_store(self):
        return self.opclass is OpClass.STORE

    @property
    def is_branch(self):
        """Any application-level control transfer (not DISE-internal)."""
        return self.opclass in (
            OpClass.COND_BRANCH,
            OpClass.UNCOND_BRANCH,
            OpClass.INDIRECT_JUMP,
        )

    @property
    def is_cond_branch(self):
        return self.opclass is OpClass.COND_BRANCH

    @property
    def is_dise_branch(self):
        return self.opclass is OpClass.DISE_BRANCH

    @property
    def is_reserved(self):
        return self.opclass is OpClass.RESERVED

    @property
    def is_memory(self):
        return self.opclass in (OpClass.LOAD, OpClass.STORE)


OPCODE_BY_CODE = {}
for _op in Opcode:
    if _op.code in OPCODE_BY_CODE:
        raise AssertionError(
            f"duplicate opcode encoding {_op.code:#x}: "
            f"{_op.name} vs {OPCODE_BY_CODE[_op.code].name}"
        )
    OPCODE_BY_CODE[_op.code] = _op

OPCODE_BY_MNEMONIC = {op.mnemonic: op for op in Opcode}
# Friendly aliases.
OPCODE_BY_MNEMONIC["or"] = Opcode.BIS
OPCODE_BY_MNEMONIC["mov"] = Opcode.BIS

#: Reserved opcodes available for aware-ACF codewords.
RESERVED_OPCODES = (Opcode.RES0, Opcode.RES1, Opcode.RES2, Opcode.RES3)

#: Opcode classes whose members reference memory and therefore require
#: fault-isolation checks (Section 3.1: loads, stores, indirect jumps).
UNSAFE_OPCLASSES = (OpClass.LOAD, OpClass.STORE, OpClass.INDIRECT_JUMP)


def parse_opcode(mnemonic):
    """Look up an opcode by assembly mnemonic (case-insensitive)."""
    try:
        return OPCODE_BY_MNEMONIC[mnemonic.strip().lower()]
    except KeyError:
        raise ValueError(f"unknown opcode mnemonic: {mnemonic!r}") from None
