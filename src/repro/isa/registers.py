"""Register model for the Alpha-like ISA used throughout the reproduction.

Two register spaces exist:

* **User registers** ``r0`` .. ``r31`` — the architectural integer registers.
  ``r31`` always reads as zero, as on a real Alpha.  The usual Alpha software
  names (``v0``, ``a0``-``a5``, ``t0``-``t11``, ``s0``-``s6``, ``ra``, ``sp``,
  ``gp``, ``at``, ``zero``) are provided as aliases.
* **DISE dedicated registers** ``$dr0`` .. ``$dr7`` — registers accessible
  only from DISE replacement sequences (Section 2.1 of the paper).  They give
  replacement sequences scratch space and persistent cross-expansion storage
  without scavenging user registers.

Registers are represented as plain integers for speed: user registers occupy
``0..31`` and dedicated registers occupy ``DISE_REG_BASE..DISE_REG_BASE+7``.
Only user registers are encodable in the 5-bit register fields of the binary
instruction format; dedicated registers appear exclusively in the engine's
internal replacement-table entries.
"""

from __future__ import annotations

NUM_USER_REGS = 32
NUM_DISE_REGS = 8

#: First integer id used for DISE dedicated registers.
DISE_REG_BASE = 32

#: Total size of the combined register-id namespace.
NUM_REGS = DISE_REG_BASE + NUM_DISE_REGS

#: The hardwired-zero user register.
ZERO_REG = 31


def dise_reg(index):
    """Return the register id of DISE dedicated register ``$dr<index>``."""
    if not 0 <= index < NUM_DISE_REGS:
        raise ValueError(f"no such DISE register: $dr{index}")
    return DISE_REG_BASE + index


def is_user_reg(reg):
    """True if ``reg`` is a user (application-visible) register id."""
    return 0 <= reg < NUM_USER_REGS


def is_dise_reg(reg):
    """True if ``reg`` is a DISE dedicated register id."""
    return DISE_REG_BASE <= reg < DISE_REG_BASE + NUM_DISE_REGS


def is_zero_reg(reg):
    """True if ``reg`` is the hardwired zero register."""
    return reg == ZERO_REG


# Alpha software register aliases.  The numeric assignments follow the Alpha
# calling standard.
REG_ALIASES = {
    "v0": 0,
    "t0": 1, "t1": 2, "t2": 3, "t3": 4, "t4": 5, "t5": 6, "t6": 7, "t7": 8,
    "s0": 9, "s1": 10, "s2": 11, "s3": 12, "s4": 13, "s5": 14, "s6": 15,
    "fp": 15,
    "a0": 16, "a1": 17, "a2": 18, "a3": 19, "a4": 20, "a5": 21,
    "t8": 22, "t9": 23, "t10": 24, "t11": 25,
    "ra": 26,
    "pv": 27, "t12": 27,
    "at": 28,
    "gp": 29,
    "sp": 30,
    "zero": 31,
}

_CANONICAL_ALIAS = {}
for _name, _num in REG_ALIASES.items():
    # Prefer the first alias listed for each number (fp/pv/zero resolve to
    # the friendlier primary names).
    _CANONICAL_ALIAS.setdefault(_num, _name)


def parse_reg(text):
    """Parse a register name into a register id.

    Accepts ``$drN`` (dedicated), ``rN``/``$N`` (numeric user), and every
    Alpha alias (optionally ``$``-prefixed).

    >>> parse_reg("sp")
    30
    >>> parse_reg("$dr2") == dise_reg(2)
    True
    """
    name = text.strip().lower()
    if name.startswith("$"):
        name = name[1:]
    if name.startswith("dr") and name[2:].isdigit():
        return dise_reg(int(name[2:]))
    if name in REG_ALIASES:
        return REG_ALIASES[name]
    if name.startswith("r") and name[1:].isdigit():
        num = int(name[1:])
        if 0 <= num < NUM_USER_REGS:
            return num
    if name.isdigit():
        num = int(name)
        if 0 <= num < NUM_USER_REGS:
            return num
    raise ValueError(f"unknown register name: {text!r}")


def reg_name(reg, prefer_alias=True):
    """Render a register id as assembly text.

    >>> reg_name(30)
    'sp'
    >>> reg_name(dise_reg(1))
    '$dr1'
    """
    if is_dise_reg(reg):
        return f"$dr{reg - DISE_REG_BASE}"
    if not is_user_reg(reg):
        raise ValueError(f"not a register id: {reg!r}")
    if prefer_alias and reg in _CANONICAL_ALIAS:
        return _CANONICAL_ALIAS[reg]
    return f"r{reg}"
