"""Convenience constructors for building instructions programmatically.

These mirror assembly syntax so that generated code reads naturally::

    ldq(a0, 8, sp)          # ldq a0, 8(sp)
    addq(a0, 1, a0)         # addq a0, #1, a0
    bne(t0, "loop")         # bne t0, loop
    jsr(ra, pv)             # jsr ra, (pv)

Operate-format second operands may be a register id or, when the value is an
``int`` passed via ``imm=``-style positional use, a literal.  To keep call
sites unambiguous the helpers take an explicit ``src2`` that is interpreted
as a register id; use the ``*_imm`` variants (or pass ``Imm(n)``) for
literals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import ZERO_REG


@dataclass(frozen=True)
class Imm:
    """Wrapper marking an operate-format second operand as a literal."""

    value: int


def _operate(opcode, src1, src2, dest):
    if isinstance(src2, Imm):
        return Instruction(opcode, ra=src1, rb=None, rc=dest, imm=src2.value)
    return Instruction(opcode, ra=src1, rb=src2, rc=dest)


def _mem(opcode, reg, disp, base):
    return Instruction(opcode, ra=reg, rb=base, imm=disp)


def _branch(opcode, reg, where):
    if isinstance(where, str):
        return Instruction(opcode, ra=reg, target=where)
    return Instruction(opcode, ra=reg, imm=where)


# Memory ---------------------------------------------------------------
def lda(reg, disp, base):
    """``lda reg, disp(base)`` — reg = base + disp."""
    return _mem(Opcode.LDA, reg, disp, base)


def ldah(reg, disp, base):
    """``ldah reg, disp(base)`` — reg = base + (disp << 16)."""
    return _mem(Opcode.LDAH, reg, disp, base)


def ldl(reg, disp, base):
    """``ldl reg, disp(base)`` — load sign-extended 32-bit word."""
    return _mem(Opcode.LDL, reg, disp, base)


def ldq(reg, disp, base):
    """``ldq reg, disp(base)`` — load 64-bit word."""
    return _mem(Opcode.LDQ, reg, disp, base)


def stl(reg, disp, base):
    """``stl reg, disp(base)`` — store low 32 bits."""
    return _mem(Opcode.STL, reg, disp, base)


def stq(reg, disp, base):
    """``stq reg, disp(base)`` — store 64-bit word."""
    return _mem(Opcode.STQ, reg, disp, base)


# Operate ---------------------------------------------------------------
def addq(src1, src2, dest):
    """``addq src1, src2, dest`` — 64-bit add."""
    return _operate(Opcode.ADDQ, src1, src2, dest)


def subq(src1, src2, dest):
    """``subq src1, src2, dest`` — 64-bit subtract."""
    return _operate(Opcode.SUBQ, src1, src2, dest)


def mulq(src1, src2, dest):
    """``mulq src1, src2, dest`` — 64-bit multiply."""
    return _operate(Opcode.MULQ, src1, src2, dest)


def and_(src1, src2, dest):
    """``and src1, src2, dest`` — bitwise AND."""
    return _operate(Opcode.AND, src1, src2, dest)


def bis(src1, src2, dest):
    """``bis src1, src2, dest`` — bitwise OR (Alpha's move idiom)."""
    return _operate(Opcode.BIS, src1, src2, dest)


def xor(src1, src2, dest):
    """``xor src1, src2, dest`` — bitwise XOR."""
    return _operate(Opcode.XOR, src1, src2, dest)


def sll(src1, src2, dest):
    """``sll src1, src2, dest`` — shift left logical."""
    return _operate(Opcode.SLL, src1, src2, dest)


def srl(src1, src2, dest):
    """``srl src1, src2, dest`` — shift right logical."""
    return _operate(Opcode.SRL, src1, src2, dest)


def sra(src1, src2, dest):
    """``sra src1, src2, dest`` — shift right arithmetic."""
    return _operate(Opcode.SRA, src1, src2, dest)


def cmpeq(src1, src2, dest):
    """``cmpeq src1, src2, dest`` — dest = (src1 == src2)."""
    return _operate(Opcode.CMPEQ, src1, src2, dest)


def cmplt(src1, src2, dest):
    """``cmplt src1, src2, dest`` — signed less-than compare."""
    return _operate(Opcode.CMPLT, src1, src2, dest)


def cmple(src1, src2, dest):
    """``cmple src1, src2, dest`` — signed less-or-equal compare."""
    return _operate(Opcode.CMPLE, src1, src2, dest)


def cmpult(src1, src2, dest):
    """``cmpult src1, src2, dest`` — unsigned less-than compare."""
    return _operate(Opcode.CMPULT, src1, src2, dest)


def cmoveq(test, value, dest):
    """``cmoveq test, value, dest`` — dest = value if test == 0."""
    return _operate(Opcode.CMOVEQ, test, value, dest)


def cmovne(test, value, dest):
    """``cmovne test, value, dest`` — dest = value if test != 0."""
    return _operate(Opcode.CMOVNE, test, value, dest)


def mov(src, dest):
    """Register move, encoded as ``bis src, src, dest``."""
    return _operate(Opcode.BIS, src, src, dest)


def li(value, dest):
    """Load a small literal into a register (``bis zero, #value, dest``)."""
    return _operate(Opcode.BIS, ZERO_REG, Imm(value), dest)


# Branches ---------------------------------------------------------------
def beq(reg, where):
    """``beq reg, target`` — branch if reg == 0."""
    return _branch(Opcode.BEQ, reg, where)


def bne(reg, where):
    """``bne reg, target`` — branch if reg != 0."""
    return _branch(Opcode.BNE, reg, where)


def blt(reg, where):
    """``blt reg, target`` — branch if reg < 0 (signed)."""
    return _branch(Opcode.BLT, reg, where)


def ble(reg, where):
    """``ble reg, target`` — branch if reg <= 0 (signed)."""
    return _branch(Opcode.BLE, reg, where)


def bgt(reg, where):
    """``bgt reg, target`` — branch if reg > 0 (signed)."""
    return _branch(Opcode.BGT, reg, where)


def bge(reg, where):
    """``bge reg, target`` — branch if reg >= 0 (signed)."""
    return _branch(Opcode.BGE, reg, where)


def br(where, link=ZERO_REG):
    """``br target`` — unconditional direct branch (optional link)."""
    return _branch(Opcode.BR, link, where)


def bsr(link, where):
    """``bsr link, target`` — direct call, return address into link."""
    return _branch(Opcode.BSR, link, where)


# DISE-internal branches (replacement sequences only) --------------------
def dbeq(reg, where):
    """DISE-internal branch if reg == 0 (moves the DISEPC only)."""
    return _branch(Opcode.DBEQ, reg, where)


def dbne(reg, where):
    """DISE-internal branch if reg != 0 (moves the DISEPC only)."""
    return _branch(Opcode.DBNE, reg, where)


def dbr(where):
    """DISE-internal unconditional branch (moves the DISEPC only)."""
    return _branch(Opcode.DBR, ZERO_REG, where)


# Indirect control flow ---------------------------------------------------
def jmp(addr_reg, link=ZERO_REG):
    """``jmp (addr)`` — indirect jump through a register."""
    return Instruction(Opcode.JMP, ra=link, rb=addr_reg)


def jsr(link, addr_reg):
    """``jsr link, (addr)`` — indirect call through a register."""
    return Instruction(Opcode.JSR, ra=link, rb=addr_reg)


def ret(addr_reg, link=ZERO_REG):
    """``ret (addr)`` — function return through a register."""
    return Instruction(Opcode.RET, ra=link, rb=addr_reg)


# Miscellaneous ------------------------------------------------------------
def nop():
    """No-operation."""
    return Instruction(Opcode.NOP)


def halt():
    """Stop the machine."""
    return Instruction(Opcode.HALT)


def out(reg):
    """Append the register's value to the machine's output log."""
    return Instruction(Opcode.OUT, ra=reg)


def fault(code):
    """Raise a fault with the given code and stop the machine."""
    return Instruction(Opcode.FAULT, ra=ZERO_REG, imm=code)


def ctrl(reg, code):
    """Controller call: invoke the registered handler for ``code``, with
    ``reg`` as its argument register (the paper's instruction-based DISE
    controller interface, Section 2.3)."""
    return Instruction(Opcode.CTRL, ra=reg, imm=code)


def codeword(opcode, p1, p2, p3, tag):
    """Build an aware-ACF codeword from a reserved opcode.

    ``p1``/``p2``/``p3`` are the three 5-bit parameters and ``tag`` is the
    11-bit explicit replacement-sequence identifier (Section 2.1).
    """
    if not opcode.is_reserved:
        raise ValueError(f"codewords require a reserved opcode, got {opcode}")
    if not 0 <= tag < 2048:
        raise ValueError(f"codeword tag out of range: {tag}")
    return Instruction(opcode, ra=p1, rb=p2, rc=p3, imm=tag)
