"""Binary encoding and decoding of instructions.

Instructions are 32-bit words with a 6-bit opcode in the top bits.  Field
layout by format (bit ranges are inclusive, MSB first):

=========  ==============================================================
MEM        op[31:26] ra[25:21] rb[20:16] disp[15:0] (signed)
BRANCH     op[31:26] ra[25:21] disp[20:0] (signed, in instruction words)
OPERATE    op[31:26] ra[25:21] rb[20:16] or lit[20:13] SBZ flag[12] rc[4:0]
JUMP       op[31:26] ra[25:21] rb[20:16] hint[15:0] (zero)
CODEWORD   op[31:26] p1[25:21] p2[20:16] p3[15:11] tag[10:0]
NULLARY    op[31:26] zero[25:0]
=========  ==============================================================

Only user registers are encodable; DISE dedicated registers exist solely in
the engine's internal replacement-table format and never appear in a binary.
"""

from __future__ import annotations

import struct
from typing import Iterable, List

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, OPCODE_BY_CODE, Opcode
from repro.isa.registers import NUM_USER_REGS, ZERO_REG

#: Inclusive range of the operate-format 8-bit unsigned literal.
OPERATE_LIT_MIN, OPERATE_LIT_MAX = 0, 255
#: Inclusive range of the memory-format 16-bit signed displacement.
MEM_DISP_MIN, MEM_DISP_MAX = -(1 << 15), (1 << 15) - 1
#: Inclusive range of the branch-format 21-bit signed word displacement.
BRANCH_DISP_MIN, BRANCH_DISP_MAX = -(1 << 20), (1 << 20) - 1
#: Inclusive range of the codeword tag field.
TAG_MIN, TAG_MAX = 0, (1 << 11) - 1


class EncodingError(ValueError):
    """Raised when an instruction cannot be represented in the binary format."""


def _check_reg(reg, what):
    if reg is None:
        raise EncodingError(f"{what} register is missing")
    if not 0 <= reg < NUM_USER_REGS:
        raise EncodingError(
            f"{what} register {reg} is not encodable (DISE dedicated "
            "registers only exist in internal replacement-table format)"
        )
    return reg


def _to_signed(value, bits):
    sign_bit = 1 << (bits - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


def _to_field(value, bits):
    return value & ((1 << bits) - 1)


def canonicalize(instr: Instruction) -> Instruction:
    """Return the canonical (encodable) form of ``instr``.

    Fills defaulted fields with the values decoding will produce, so that
    ``decode(encode(i)) == canonicalize(i)`` holds for every encodable
    instruction.
    """
    fmt = instr.format
    changes = {}
    if instr.target is not None:
        raise EncodingError(
            f"instruction has unresolved symbolic target {instr.target!r}"
        )
    if fmt is Format.MEM:
        if instr.imm is None:
            changes["imm"] = 0
        if instr.rc is not None:
            changes["rc"] = None
    elif fmt is Format.BRANCH:
        if instr.imm is None:
            changes["imm"] = 0
        if instr.ra is None:
            changes["ra"] = ZERO_REG
        if instr.rb is not None or instr.rc is not None:
            changes.update(rb=None, rc=None)
    elif fmt is Format.OPERATE:
        # The register form has no literal; decode leaves imm unset.
        if instr.rb is not None and instr.imm is not None:
            changes["imm"] = None
    elif fmt is Format.JUMP:
        if instr.ra is None:
            changes["ra"] = ZERO_REG
        if instr.rc is not None:
            changes["rc"] = None
        if instr.imm is not None:
            changes["imm"] = None  # the hint field is not architectural
    elif fmt is Format.NULLARY:
        changes.update(ra=None, rb=None, rc=None, imm=None)
    return instr.with_fields(**changes) if changes else instr


def encode(instr: Instruction) -> int:
    """Encode ``instr`` as a 32-bit word.

    Raises :class:`EncodingError` for instructions that cannot be encoded:
    unresolved symbolic targets, dedicated registers, or out-of-range
    immediates.
    """
    instr = canonicalize(instr)
    op = instr.opcode
    word = op.code << 26
    fmt = op.format

    if fmt is Format.NULLARY:
        return word

    if fmt is Format.MEM:
        ra = _check_reg(instr.ra, "ra")
        rb = _check_reg(instr.rb, "rb")
        disp = instr.imm if instr.imm is not None else 0
        if not MEM_DISP_MIN <= disp <= MEM_DISP_MAX:
            raise EncodingError(f"memory displacement out of range: {disp}")
        return word | (ra << 21) | (rb << 16) | _to_field(disp, 16)

    if fmt is Format.BRANCH:
        ra = _check_reg(instr.ra, "ra")
        disp = instr.imm
        if not BRANCH_DISP_MIN <= disp <= BRANCH_DISP_MAX:
            raise EncodingError(f"branch displacement out of range: {disp}")
        return word | (ra << 21) | _to_field(disp, 21)

    if fmt is Format.OPERATE:
        ra = _check_reg(instr.ra, "ra")
        rc = _check_reg(instr.rc, "rc")
        if instr.rb is None:
            lit = instr.imm
            if lit is None:
                raise EncodingError("operate instruction has neither rb nor imm")
            if not OPERATE_LIT_MIN <= lit <= OPERATE_LIT_MAX:
                raise EncodingError(f"operate literal out of range: {lit}")
            return word | (ra << 21) | (lit << 13) | (1 << 12) | rc
        rb = _check_reg(instr.rb, "rb")
        return word | (ra << 21) | (rb << 16) | rc

    if fmt is Format.JUMP:
        ra = _check_reg(instr.ra, "ra")
        rb = _check_reg(instr.rb, "rb")
        return word | (ra << 21) | (rb << 16)

    if fmt is Format.CODEWORD:
        p1 = _check_reg(instr.ra, "p1")
        p2 = _check_reg(instr.rb, "p2")
        p3 = _check_reg(instr.rc, "p3")
        tag = instr.imm
        if tag is None or not TAG_MIN <= tag <= TAG_MAX:
            raise EncodingError(f"codeword tag out of range: {tag}")
        return word | (p1 << 21) | (p2 << 16) | (p3 << 11) | tag

    raise AssertionError(f"unhandled format {fmt}")


def decode(word: int) -> Instruction:
    """Decode a 32-bit word into an :class:`Instruction`."""
    if not 0 <= word < (1 << 32):
        raise ValueError(f"not a 32-bit word: {word:#x}")
    code = word >> 26
    op = OPCODE_BY_CODE.get(code)
    if op is None:
        raise ValueError(f"unknown opcode encoding: {code:#x}")
    fmt = op.format

    if fmt is Format.NULLARY:
        return Instruction(op)

    if fmt is Format.MEM:
        return Instruction(
            op,
            ra=(word >> 21) & 0x1F,
            rb=(word >> 16) & 0x1F,
            imm=_to_signed(word & 0xFFFF, 16),
        )

    if fmt is Format.BRANCH:
        return Instruction(
            op,
            ra=(word >> 21) & 0x1F,
            imm=_to_signed(word & 0x1FFFFF, 21),
        )

    if fmt is Format.OPERATE:
        ra = (word >> 21) & 0x1F
        rc = word & 0x1F
        if word & (1 << 12):
            return Instruction(op, ra=ra, rb=None, rc=rc, imm=(word >> 13) & 0xFF)
        return Instruction(op, ra=ra, rb=(word >> 16) & 0x1F, rc=rc)

    if fmt is Format.JUMP:
        return Instruction(op, ra=(word >> 21) & 0x1F, rb=(word >> 16) & 0x1F)

    if fmt is Format.CODEWORD:
        return Instruction(
            op,
            ra=(word >> 21) & 0x1F,
            rb=(word >> 16) & 0x1F,
            rc=(word >> 11) & 0x1F,
            imm=word & 0x7FF,
        )

    raise AssertionError(f"unhandled format {fmt}")


def encode_stream(instructions: Iterable[Instruction]) -> bytes:
    """Encode a sequence of instructions as little-endian bytes."""
    words = [encode(instr) for instr in instructions]
    return struct.pack(f"<{len(words)}I", *words)


def decode_stream(data: bytes) -> List[Instruction]:
    """Decode little-endian instruction bytes back into instructions."""
    if len(data) % 4:
        raise ValueError("instruction stream length is not a multiple of 4")
    count = len(data) // 4
    return [decode(word) for word in struct.unpack(f"<{count}I", data)]
