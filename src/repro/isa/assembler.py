"""A small two-pass assembler for the Alpha-like ISA.

The accepted syntax mirrors the rendering of :meth:`Instruction.__str__` so
that assembly and disassembly round-trip::

    main:
        bis   zero, #10, t0
    loop:
        subq  t0, #1, t0
        bne   t0, loop
        halt

Lines may carry ``#`` or ``;`` comments.  Labels end with ``:`` and may share
a line with an instruction.  Branch targets may be label names or numeric
word displacements.  Operate-format literals are written ``#N``.

The assembler produces a list of :class:`Item` (labels and instructions); the
program builder (:mod:`repro.program.builder`) turns those into a laid-out
:class:`~repro.program.image.ProgramImage`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Union

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, OpClass, Opcode, parse_opcode
from repro.isa.registers import ZERO_REG, parse_reg


class AssemblyError(ValueError):
    """Raised on malformed assembly input, with line information."""

    def __init__(self, message, lineno=None, line=None):
        location = f" (line {lineno}: {line!r})" if lineno is not None else ""
        super().__init__(message + location)
        self.lineno = lineno
        self.line = line


@dataclass(frozen=True)
class Label:
    """A label definition in an assembly listing."""

    name: str


Item = Union[Label, Instruction]

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_MEM_OPERAND_RE = re.compile(r"^(-?\d+)?\(([^)]+)\)$")
_JUMP_OPERAND_RE = re.compile(r"^\(([^)]+)\)$")
_CODEWORD_KV_RE = re.compile(r"^(p1|p2|p3|tag)=(.+)$")


def _strip_comment(line):
    pos = line.find(";")
    if pos >= 0:
        line = line[:pos]
    # ``#`` also introduces operate literals (``#5``); treat it as a comment
    # only when not immediately followed by a digit or minus sign, scanning
    # past literal uses.
    search_from = 0
    while True:
        pos = line.find("#", search_from)
        if pos < 0:
            break
        following = line[pos + 1:pos + 2]
        if following.isdigit() or following == "-":
            search_from = pos + 1
            continue
        line = line[:pos]
        break
    return line.strip()


def _split_operands(text):
    return [part.strip() for part in text.split(",")] if text.strip() else []


def _parse_value(text):
    text = text.strip()
    if text.startswith("#"):
        text = text[1:]
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblyError(f"expected a number, got {text!r}") from None


def _parse_target(text):
    """A branch target: numeric displacement or symbolic label."""
    text = text.strip()
    try:
        return int(text, 0), None
    except ValueError:
        return None, text


def parse_line(line) -> List[Item]:
    """Parse one assembly line into labels and at most one instruction."""
    items: List[Item] = []
    text = _strip_comment(line)
    while True:
        match = _LABEL_RE.match(text)
        if not match:
            break
        items.append(Label(match.group(1)))
        text = text[match.end():].strip()
    if not text:
        return items
    items.append(parse_instruction(text))
    return items


def parse_instruction(text) -> Instruction:
    """Parse a single instruction (no labels, no comments)."""
    parts = text.split(None, 1)
    opcode = parse_opcode(parts[0])
    operands = _split_operands(parts[1]) if len(parts) > 1 else []
    fmt = opcode.format

    if fmt is Format.NULLARY:
        if operands:
            raise AssemblyError(f"{opcode.mnemonic} takes no operands")
        return Instruction(opcode)

    if fmt is Format.MEM:
        if len(operands) != 2:
            raise AssemblyError(f"{opcode.mnemonic} needs 'reg, disp(base)'")
        ra = parse_reg(operands[0])
        match = _MEM_OPERAND_RE.match(operands[1].replace(" ", ""))
        if not match:
            raise AssemblyError(f"bad memory operand: {operands[1]!r}")
        disp = int(match.group(1)) if match.group(1) else 0
        rb = parse_reg(match.group(2))
        return Instruction(opcode, ra=ra, rb=rb, imm=disp)

    if fmt is Format.BRANCH:
        if opcode is Opcode.OUT:
            if len(operands) == 1:
                return Instruction(opcode, ra=parse_reg(operands[0]))
            if len(operands) == 2:
                return Instruction(opcode, ra=parse_reg(operands[0]),
                                   imm=_parse_value(operands[1]))
            raise AssemblyError("out needs 'reg' or 'reg, disp'")
        if opcode is Opcode.FAULT:
            # ``fault code`` (zero ra) or ``fault reg, code``.
            if len(operands) == 1:
                return Instruction(opcode, ra=ZERO_REG,
                                   imm=_parse_value(operands[0]))
            if len(operands) == 2:
                return Instruction(opcode, ra=parse_reg(operands[0]),
                                   imm=_parse_value(operands[1]))
            raise AssemblyError("fault needs 'code' or 'reg, code'")
        if len(operands) == 1 and opcode.opclass in (
            OpClass.UNCOND_BRANCH,
            OpClass.DISE_BRANCH,
        ):
            # ``br target`` / ``dbr target`` shorthand with implicit zero reg.
            imm, target = _parse_target(operands[0])
            return Instruction(opcode, ra=ZERO_REG, imm=imm, target=target)
        if len(operands) != 2:
            raise AssemblyError(f"{opcode.mnemonic} needs 'reg, target'")
        ra = parse_reg(operands[0])
        imm, target = _parse_target(operands[1])
        return Instruction(opcode, ra=ra, imm=imm, target=target)

    if fmt is Format.OPERATE:
        if len(operands) != 3:
            raise AssemblyError(f"{opcode.mnemonic} needs 'src1, src2, dest'")
        ra = parse_reg(operands[0])
        rc = parse_reg(operands[2])
        src2 = operands[1]
        if src2.startswith("#") or src2.lstrip("-").isdigit():
            return Instruction(opcode, ra=ra, rb=None, rc=rc, imm=_parse_value(src2))
        return Instruction(opcode, ra=ra, rb=parse_reg(src2), rc=rc)

    if fmt is Format.JUMP:
        if len(operands) == 1:
            match = _JUMP_OPERAND_RE.match(operands[0].replace(" ", ""))
            if not match:
                raise AssemblyError(f"bad jump operand: {operands[0]!r}")
            return Instruction(opcode, ra=ZERO_REG, rb=parse_reg(match.group(1)))
        if len(operands) != 2:
            raise AssemblyError(f"{opcode.mnemonic} needs 'link, (addr)'")
        ra = parse_reg(operands[0])
        match = _JUMP_OPERAND_RE.match(operands[1].replace(" ", ""))
        if not match:
            raise AssemblyError(f"bad jump operand: {operands[1]!r}")
        return Instruction(opcode, ra=ra, rb=parse_reg(match.group(1)))

    if fmt is Format.CODEWORD:
        fields = {"p1": ZERO_REG, "p2": ZERO_REG, "p3": ZERO_REG, "tag": 0}
        if operands and all(_CODEWORD_KV_RE.match(op.replace(" ", "")) for op in operands):
            for op in operands:
                key, value = _CODEWORD_KV_RE.match(op.replace(" ", "")).groups()
                fields[key] = _parse_value(value) if key == "tag" else parse_reg(value)
        elif len(operands) == 4:
            fields["p1"] = parse_reg(operands[0])
            fields["p2"] = parse_reg(operands[1])
            fields["p3"] = parse_reg(operands[2])
            fields["tag"] = _parse_value(operands[3])
        else:
            raise AssemblyError(
                f"{opcode.mnemonic} needs 'p1, p2, p3, tag' or key=value fields"
            )
        return Instruction(
            opcode, ra=fields["p1"], rb=fields["p2"], rc=fields["p3"], imm=fields["tag"]
        )

    raise AssertionError(f"unhandled format {fmt}")


def assemble(source) -> List[Item]:
    """Assemble a multi-line source string into labels and instructions."""
    items: List[Item] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        try:
            items.extend(parse_line(line))
        except AssemblyError:
            raise
        except ValueError as exc:
            raise AssemblyError(str(exc), lineno=lineno, line=line.strip()) from exc
    return items
