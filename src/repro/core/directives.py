"""Instantiation directives for replacement-instruction fields.

Section 2.1 of the paper: "Each replacement instruction field comes with a
directive that (optionally) instantiates it using a field from the trigger."

Register fields support the paper's five directives:

* ``literal``    -> :class:`Lit` wrapping a user register id
* ``dedicated``  -> :class:`Lit` wrapping a DISE dedicated register id
* ``T.RS`` / ``T.RT`` / ``T.RD`` -> :class:`TrigField`

Immediate fields support literals, ``T.IMM``, the codeword parameters
``T.P1``..``T.P3`` (used by aware ACFs with explicit tagging), and the
trigger's ``T.PC`` (the non-instruction attribute the paper found useful for
profiling ACFs).  :class:`AbsTarget` lets a replacement branch target an
absolute application address (e.g. an error handler): the engine converts it
to a PC-relative displacement against the trigger's PC at instantiation.

The whole-instruction directive ``T.INSN`` is represented at the
replacement-instruction level (see :mod:`repro.core.replacement`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import is_dise_reg, is_user_reg, reg_name

#: Trigger fields a register directive may name.
REG_TRIGGER_FIELDS = ("rs", "rt", "rd", "p1", "p2", "p3")
#: Trigger fields an immediate directive may name.  ``p23`` concatenates the
#: P2 and P3 codeword parameters into one 10-bit signed immediate — the
#: widened-parameter extension used to compress PC-relative branches whose
#: offsets exceed a single 5-bit parameter.
IMM_TRIGGER_FIELDS = ("imm", "p1", "p2", "p3", "p23", "pc", "tag")


class Directive:
    """Base class for field-instantiation directives."""

    __slots__ = ()


@dataclass(frozen=True)
class Lit(Directive):
    """A literal field value (register id or immediate).

    For register fields this covers both of the paper's ``literal`` and
    ``dedicated`` directives — the value simply names a register in the
    combined user+dedicated id space.
    """

    value: int

    def render_reg(self):
        return reg_name(self.value)

    def render_imm(self):
        return str(self.value)


@dataclass(frozen=True)
class TrigField(Directive):
    """Instantiate the field from a trigger field (``T.<FIELD>``)."""

    field: str

    def __post_init__(self):
        allowed = set(REG_TRIGGER_FIELDS) | set(IMM_TRIGGER_FIELDS)
        if self.field not in allowed:
            raise ValueError(f"unknown trigger field: {self.field!r}")

    def render(self):
        return f"T.{self.field.upper()}"


@dataclass(frozen=True)
class AbsTarget(Directive):
    """Branch to an absolute application address.

    Only valid as the immediate of an application-level branch inside a
    replacement sequence; converted to a trigger-PC-relative displacement at
    instantiation.
    """

    address: int

    def render(self):
        return f"@{self.address:#x}"


# Canonical shared instances for the common trigger fields.
T_RS = TrigField("rs")
T_RT = TrigField("rt")
T_RD = TrigField("rd")
T_IMM = TrigField("imm")
T_PC = TrigField("pc")
T_TAG = TrigField("tag")
T_P1 = TrigField("p1")
T_P2 = TrigField("p2")
T_P3 = TrigField("p3")
T_P23 = TrigField("p23")


def validate_reg_directive(directive):
    """Check that ``directive`` is legal for a register field."""
    if isinstance(directive, Lit):
        if not (is_user_reg(directive.value) or is_dise_reg(directive.value)):
            raise ValueError(f"literal register out of range: {directive.value}")
        return
    if isinstance(directive, TrigField):
        if directive.field not in REG_TRIGGER_FIELDS:
            raise ValueError(
                f"trigger field {directive.field!r} not usable in a register slot"
            )
        return
    raise TypeError(f"not a register directive: {directive!r}")


def validate_imm_directive(directive):
    """Check that ``directive`` is legal for an immediate field."""
    if isinstance(directive, (Lit, AbsTarget)):
        return
    if isinstance(directive, TrigField):
        if directive.field not in IMM_TRIGGER_FIELDS:
            raise ValueError(
                f"trigger field {directive.field!r} not usable in an immediate slot"
            )
        return
    raise TypeError(f"not an immediate directive: {directive!r}")
