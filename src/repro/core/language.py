"""A textual language for DISE productions, in the paper's notation.

Example (memory fault isolation, Figure 1)::

    # patterns
    P1: T.OPCLASS == store -> R1
    P2: T.OPCLASS == load  -> R1

    # replacement sequences
    R1:
        srl   T.RS, #26, $dr1
        xor   $dr1, $dr2, $dr1
        bne   $dr1, @__mfi_error
        T.INSN

Pattern conditions are joined with ``&&``; supported forms are
``T.OP == <mnemonic>``, ``T.OPCLASS == <class>``, ``T.RS/T.RT/T.RD == <reg>``,
``T.IMM == <n>``, ``T.IMM < 0``, and ``T.IMM >= 0``.  The right-hand side of
``->`` is a replacement name ``R<n>`` or ``T.TAG`` for aware (explicitly
tagged) productions.

Replacement operands may be registers (``$dr1``, ``t0``), trigger fields
(``T.RS``, ``T.IMM``, ``T.P1``..), literals (``#26``), absolute application
addresses (``@symbol`` or ``@0x1234``, resolved against a symbol mapping),
or — for DISE-internal branches — local labels defined inside the block.
``T.INSN`` on a line by itself is the whole-trigger copy.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.core.directives import AbsTarget, Lit, TrigField
from repro.core.pattern import PatternSpec
from repro.core.production import ProductionSet
from repro.core.replacement import (
    TRIGGER_INSN,
    ReplacementInstr,
    ReplacementSpec,
)
from repro.isa.opcodes import Format, OpClass, Opcode, parse_opcode
from repro.isa.registers import parse_reg


class LanguageError(ValueError):
    """Raised on malformed production-language input."""

    def __init__(self, message, lineno=None):
        super().__init__(
            message if lineno is None else f"line {lineno}: {message}"
        )


_PATTERN_RE = re.compile(r"^(P[\w.]*)\s*:\s*(.+?)\s*->\s*(\S+)$")
_REPLACEMENT_HEADER_RE = re.compile(r"^(R\d+)\s*:\s*$")
_LOCAL_LABEL_RE = re.compile(r"^\.(\w+)\s*:\s*$")
_MEM_OPERAND_RE = re.compile(r"^(.*)\(([^)]+)\)$")

_OPCLASS_BY_NAME = {c.value: c for c in OpClass}
_TRIGGER_FIELD_RE = re.compile(r"^T\.(RS|RT|RD|IMM|PC|TAG|P1|P2|P3|P23)$",
                               re.IGNORECASE)


def _strip(line):
    pos = line.find(";")
    if pos >= 0:
        line = line[:pos]
    # '#' introduces a comment unless immediately followed by a digit or
    # minus sign (an immediate literal); scan past literal uses.
    search_from = 0
    while True:
        pos = line.find("#", search_from)
        if pos < 0:
            break
        following = line[pos + 1:pos + 2]
        if following.isdigit() or following == "-":
            search_from = pos + 1
            continue
        line = line[:pos]
        break
    return line.strip()


def _parse_condition(cond: str, pattern_fields: dict):
    cond = cond.strip()
    match = re.match(r"^T\.OPCLASS\s*==\s*(\w+)$", cond, re.IGNORECASE)
    if match:
        name = match.group(1).lower()
        if name not in _OPCLASS_BY_NAME:
            raise LanguageError(f"unknown opcode class: {name!r}")
        pattern_fields["opclass"] = _OPCLASS_BY_NAME[name]
        return
    match = re.match(r"^T\.OP\s*==\s*(\w+)$", cond, re.IGNORECASE)
    if match:
        pattern_fields["opcode"] = parse_opcode(match.group(1))
        return
    match = re.match(r"^T\.(RS|RT|RD)\s*==\s*(\S+)$", cond, re.IGNORECASE)
    if match:
        regs = pattern_fields.setdefault("regs", {})
        regs[match.group(1).lower()] = parse_reg(match.group(2))
        return
    match = re.match(r"^T\.IMM\s*==\s*(-?\w+)$", cond, re.IGNORECASE)
    if match:
        pattern_fields["imm"] = int(match.group(1), 0)
        return
    match = re.match(r"^T\.IMM\s*(<|>=)\s*0$", cond, re.IGNORECASE)
    if match:
        pattern_fields["imm_sign"] = -1 if match.group(1) == "<" else 1
        return
    match = re.match(r"^T\.PC\s*(>=|<)\s*(\w+)$", cond, re.IGNORECASE)
    if match:
        # PC-scoped patterns (the Section 2.1 attribute extension): both
        # bounds must be given, e.g.  T.PC >= 0x400100 && T.PC < 0x400200.
        key = "pc_lo" if match.group(1) == ">=" else "pc_hi"
        pattern_fields[key] = int(match.group(2), 0)
        return
    raise LanguageError(f"unrecognised pattern condition: {cond!r}")


def _parse_reg_operand(token: str):
    token = token.strip()
    match = _TRIGGER_FIELD_RE.match(token)
    if match:
        return TrigField(match.group(1).lower())
    return Lit(parse_reg(token))


def _parse_imm_operand(token: str, symbols, local_labels):
    token = token.strip()
    match = _TRIGGER_FIELD_RE.match(token)
    if match:
        return TrigField(match.group(1).lower())
    if token.startswith("@"):
        where = token[1:]
        try:
            return AbsTarget(int(where, 0))
        except ValueError:
            if symbols and where in symbols:
                return AbsTarget(symbols[where])
            raise LanguageError(f"unresolved absolute target: {where!r}")
    if token.startswith("."):
        # Local label: placeholder patched after the block is scanned.
        return ("local", token[1:])
    if token.startswith("#"):
        token = token[1:]
    try:
        return Lit(int(token, 0))
    except ValueError:
        raise LanguageError(f"expected an immediate operand, got {token!r}")


def _parse_replacement_line(text, symbols):
    """Parse one replacement-sequence instruction line."""
    if text.upper() == "T.INSN":
        return TRIGGER_INSN
    parts = text.split(None, 1)
    opcode = parse_opcode(parts[0])
    operands = (
        [p.strip() for p in parts[1].split(",")] if len(parts) > 1 else []
    )
    fmt = opcode.format

    if fmt is Format.NULLARY:
        return ReplacementInstr(opcode=opcode)

    if fmt is Format.MEM:
        if len(operands) != 2:
            raise LanguageError(f"{opcode.mnemonic} needs 'reg, disp(base)'")
        ra = _parse_reg_operand(operands[0])
        match = _MEM_OPERAND_RE.match(operands[1].replace(" ", ""))
        if not match:
            raise LanguageError(f"bad memory operand: {operands[1]!r}")
        disp_text = match.group(1) or "0"
        imm = _parse_imm_operand(disp_text, symbols, None)
        rb = _parse_reg_operand(match.group(2))
        return ReplacementInstr(opcode=opcode, ra=ra, rb=rb, imm=imm)

    if fmt is Format.OPERATE:
        if len(operands) != 3:
            raise LanguageError(f"{opcode.mnemonic} needs 'src1, src2, dest'")
        ra = _parse_reg_operand(operands[0])
        rc = _parse_reg_operand(operands[2])
        src2 = operands[1]
        if src2.startswith("#") or src2.lstrip("-").isdigit():
            return ReplacementInstr(
                opcode=opcode, ra=ra, rc=rc,
                imm=_parse_imm_operand(src2, symbols, None),
            )
        if _TRIGGER_FIELD_RE.match(src2):
            # A trigger field in the src2 slot: register by default; use
            # explicit '#T.P2' for immediates.
            return ReplacementInstr(
                opcode=opcode, ra=ra, rb=_parse_reg_operand(src2), rc=rc
            )
        return ReplacementInstr(
            opcode=opcode, ra=ra, rb=_parse_reg_operand(src2), rc=rc
        )

    if fmt is Format.BRANCH:
        if opcode is Opcode.OUT:
            if len(operands) != 1:
                raise LanguageError("out needs one register operand")
            return ReplacementInstr(opcode=opcode, ra=_parse_reg_operand(operands[0]))
        if opcode is Opcode.FAULT:
            if len(operands) != 1:
                raise LanguageError("fault needs one numeric code")
            return ReplacementInstr(
                opcode=opcode, ra=Lit(31),
                imm=_parse_imm_operand(operands[0], symbols, None),
            )
        if len(operands) == 1 and opcode.opclass is not OpClass.COND_BRANCH:
            return ReplacementInstr(
                opcode=opcode, ra=Lit(31),
                imm=_parse_imm_operand(operands[0], symbols, None),
            )
        if len(operands) != 2:
            raise LanguageError(f"{opcode.mnemonic} needs 'reg, target'")
        return ReplacementInstr(
            opcode=opcode,
            ra=_parse_reg_operand(operands[0]),
            imm=_parse_imm_operand(operands[1], symbols, None),
        )

    if fmt is Format.JUMP:
        if len(operands) != 2:
            raise LanguageError(f"{opcode.mnemonic} needs 'link, (addr)'")
        addr = operands[1].replace(" ", "")
        if not (addr.startswith("(") and addr.endswith(")")):
            raise LanguageError(f"bad jump operand: {operands[1]!r}")
        return ReplacementInstr(
            opcode=opcode,
            ra=_parse_reg_operand(operands[0]),
            rb=_parse_reg_operand(addr[1:-1]),
        )

    raise LanguageError(f"opcode {opcode.mnemonic} not usable in a "
                        "replacement sequence")


def parse_productions(source: str, name="acf", scope="user",
                      symbols: Optional[Dict[str, int]] = None,
                      tagged_dictionary: Optional[Dict[int, ReplacementSpec]] = None
                      ) -> ProductionSet:
    """Parse production-language source into a :class:`ProductionSet`.

    ``symbols`` resolves ``@name`` absolute targets.  ``tagged_dictionary``
    supplies replacement sequences for ``T.TAG`` productions (aware ACFs
    usually build their dictionaries programmatically).
    """
    pset = ProductionSet(name, scope=scope)
    patterns: List[Tuple[str, PatternSpec, str, int]] = []
    replacements: Dict[str, Tuple[List[ReplacementInstr], Dict[str, int]]] = {}
    current_block: Optional[str] = None

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue
        match = _PATTERN_RE.match(line)
        if match:
            pname, conditions, target = match.groups()
            fields: dict = {}
            for cond in conditions.split("&&"):
                try:
                    _parse_condition(cond, fields)
                except LanguageError as exc:
                    raise LanguageError(str(exc), lineno) from None
            try:
                pattern = PatternSpec(**fields)
            except ValueError as exc:
                raise LanguageError(str(exc), lineno) from None
            patterns.append((pname, pattern, target, lineno))
            current_block = None
            continue
        match = _REPLACEMENT_HEADER_RE.match(line)
        if match:
            current_block = match.group(1)
            if current_block in replacements:
                raise LanguageError(
                    f"replacement block {current_block} redefined", lineno
                )
            replacements[current_block] = ([], {})
            continue
        match = _LOCAL_LABEL_RE.match(line)
        if match and current_block is not None:
            instrs, labels = replacements[current_block]
            labels[match.group(1)] = len(instrs)
            continue
        if current_block is None:
            raise LanguageError(f"instruction outside a replacement block: "
                                f"{line!r}", lineno)
        try:
            rinstr = _parse_replacement_line(line, symbols)
        except (LanguageError, ValueError) as exc:
            raise LanguageError(str(exc), lineno) from None
        replacements[current_block][0].append(rinstr)

    # Patch local-label placeholders and register the replacement specs.
    seq_ids: Dict[str, int] = {}
    for block_name, (instrs, labels) in replacements.items():
        patched = []
        for rinstr in instrs:
            if isinstance(rinstr.imm, tuple) and rinstr.imm[0] == "local":
                label = rinstr.imm[1]
                if label not in labels:
                    raise LanguageError(
                        f"undefined local label .{label} in {block_name}"
                    )
                rinstr = ReplacementInstr(
                    opcode=rinstr.opcode, ra=rinstr.ra, rb=rinstr.rb,
                    rc=rinstr.rc, imm=Lit(labels[label]),
                )
            patched.append(rinstr)
        seq_id = int(block_name[1:])
        pset.add_replacement(
            seq_id, ReplacementSpec(instrs=tuple(patched), name=block_name)
        )
        seq_ids[block_name] = seq_id

    if tagged_dictionary:
        for seq_id, spec in tagged_dictionary.items():
            pset.add_replacement(seq_id, spec)

    for pname, pattern, target, lineno in patterns:
        if target.upper() == "T.TAG":
            pset.add_production(pattern, tagged=True, name=pname)
        elif target in seq_ids:
            pset.add_production(pattern, seq_id=seq_ids[target], name=pname)
        else:
            raise LanguageError(
                f"pattern {pname} references undefined replacement {target}",
                lineno,
            )
    return pset
