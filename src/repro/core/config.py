"""DISE mechanism configuration.

Defaults mirror the paper's Section 4 setup: 32 PT entries and 2K RT
entries, 8 bytes each (PT 512 B, RT 16 KB); a pipeline flush plus a 30-cycle
stall on a simple PT/RT miss, 150 cycles when the miss handler must compose
replacement sequences; and the elongated-pipeline engine placement chosen at
the end of Section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Engine placement options evaluated in Section 4.1 (Figure 6 top).
PLACEMENT_FREE = "free"    # idealised: expansion costs nothing
PLACEMENT_STALL = "stall"  # PT/RT in parallel: 1-cycle stall per expansion
PLACEMENT_PIPE = "pipe"    # extra decode stage: +1 branch-misprediction cycle

PLACEMENTS = (PLACEMENT_FREE, PLACEMENT_STALL, PLACEMENT_PIPE)


@dataclass
class DiseConfig:
    """Sizing and placement of the DISE engine."""

    pt_entries: int = 32
    rt_entries: int = 2048
    rt_assoc: int = 2
    rt_perfect: bool = False
    #: Instructions per RT block (Section 2.2's coalescing option; 1 = one
    #: instruction per entry).
    rt_block_size: int = 1
    placement: str = PLACEMENT_PIPE
    simple_miss_cycles: int = 30
    compose_miss_cycles: int = 150
    pt_entry_bytes: int = 8
    rt_entry_bytes: int = 8

    def __post_init__(self):
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )

    @property
    def pt_bytes(self) -> int:
        return self.pt_entries * self.pt_entry_bytes

    @property
    def rt_bytes(self) -> int:
        return self.rt_entries * self.rt_entry_bytes

    def with_changes(self, **changes) -> "DiseConfig":
        from dataclasses import replace

        return replace(self, **changes)
