"""Physical pattern-table (PT) and replacement-table (RT) models.

Functionally, matching and replacement are defined by the active production
set; the PT and RT determine only *when misses happen* and therefore what
the timing model charges (Section 2.3: the PT/RT are physical caches over a
larger virtual namespace, "faulted in" on demand like a software-managed
TLB).

* The **PT** is fully associative.  Miss detection uses the pattern counter
  table: each opcode's active-pattern count is compared against its
  PT-resident count; a fetched instance of an opcode whose counts differ
  triggers a fill of all patterns for that opcode.
* The **RT** is direct-mapped or set-associative.  Each entry holds one
  replacement instruction, tagged by (sequence id, DISEPC offset).  A miss
  on any entry of a sequence triggers a fill of the whole sequence.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple


class PatternTable:
    """Fully-associative physical PT with per-opcode fill granularity."""

    def __init__(self, entries=32):
        if entries < 1:
            raise ValueError("PT needs at least one entry")
        self.entries = entries
        #: pattern index -> True, in LRU order (oldest first).
        self._resident: "OrderedDict[int, bool]" = OrderedDict()
        #: opcode -> list of active pattern indexes (set by the engine).
        self._active_by_opcode: Dict[object, List[int]] = {}
        self.accesses = 0
        self.misses = 0
        self.fills = 0

    def set_active_patterns(self, active_by_opcode):
        """Install the active-pattern index (invalidates residence)."""
        self._active_by_opcode = active_by_opcode
        self._resident.clear()

    def active_count(self, opcode) -> int:
        return len(self._active_by_opcode.get(opcode, ()))

    def resident_count(self, opcode) -> int:
        needed = self._active_by_opcode.get(opcode, ())
        return sum(1 for index in needed if index in self._resident)

    def access(self, opcode) -> bool:
        """Record a fetch of ``opcode``; return True if it missed the PT."""
        needed = self._active_by_opcode.get(opcode)
        if not needed:
            return False
        self.accesses += 1
        missing = [index for index in needed if index not in self._resident]
        for index in needed:
            if index in self._resident:
                self._resident.move_to_end(index)
        if not missing:
            return False
        self.misses += 1
        needed_set = set(needed)
        for index in missing:
            if len(self._resident) >= self.entries:
                # Evict the least-recently-used pattern that is not part of
                # the fill group.  (A PT smaller than one opcode's pattern
                # group transiently overflows rather than livelocking.)
                for victim in self._resident:
                    if victim not in needed_set:
                        del self._resident[victim]
                        break
            self._resident[index] = True
            self.fills += 1
        return True

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class ReplacementTable:
    """Set-associative physical RT.

    By default each entry holds one replacement instruction, tagged
    (sequence id, DISEPC offset).  ``block_size > 1`` models the paper's
    coalescing option (Section 2.2): multiple sequential instruction
    specifications share one block, reducing RT read ports at the expense
    of internal fragmentation — a sequence of length L occupies
    ``ceil(L / block_size)`` blocks regardless of how full its last block
    is, so effective capacity drops for short sequences.
    """

    def __init__(self, entries=2048, assoc=2, perfect=False, block_size=1):
        if block_size < 1:
            raise ValueError("RT block size must be positive")
        if not perfect:
            if entries < 1 or assoc < 1 or entries % (assoc * block_size):
                raise ValueError(
                    "RT entries must be a positive multiple of "
                    "assoc * block_size"
                )
        self.entries = entries
        self.assoc = assoc
        self.perfect = perfect
        self.block_size = block_size
        self.nsets = 1 if perfect else entries // (assoc * block_size)
        #: set index -> OrderedDict[(seq_id, block_no) -> True], LRU order.
        self._sets: Dict[int, "OrderedDict[Tuple[int, int], bool]"] = {}
        self.accesses = 0
        self.misses = 0
        self.fills = 0

    def invalidate(self):
        self._sets.clear()

    def _set_index(self, seq_id, block_no):
        return (seq_id * 97 + block_no) % self.nsets

    def _blocks(self, length):
        return range((length + self.block_size - 1) // self.block_size)

    def access_sequence(self, seq_id, length) -> bool:
        """Access all entries of a sequence; True if any entry missed.

        On a miss the whole sequence is (re)filled, modelling the
        flush-and-procedurally-load miss handler of Section 2.3.
        """
        self.accesses += 1
        if self.perfect:
            return False
        missed = False
        for block_no in self._blocks(length):
            set_index = self._set_index(seq_id, block_no)
            entry_set = self._sets.get(set_index)
            key = (seq_id, block_no)
            if entry_set is not None and key in entry_set:
                entry_set.move_to_end(key)
            else:
                missed = True
        if missed:
            self.misses += 1
            for block_no in self._blocks(length):
                self._fill(seq_id, block_no)
        return missed

    def _fill(self, seq_id, block_no):
        set_index = self._set_index(seq_id, block_no)
        entry_set = self._sets.setdefault(set_index, OrderedDict())
        key = (seq_id, block_no)
        if key in entry_set:
            entry_set.move_to_end(key)
            return
        while len(entry_set) >= self.assoc:
            entry_set.popitem(last=False)
        entry_set[key] = True
        self.fills += 1

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


# ----------------------------------------------------------------------
# Phase-A outcome pass (see repro.sim.cycle, "outcome" engine)
# ----------------------------------------------------------------------
def replay_rt(events, entries=2048, assoc=2, perfect=False, block_size=1,
              passes=1) -> bytes:
    """Replay an expansion stream through a fresh physical RT.

    ``events`` is the trace's expansion stream in program order, one
    ``(seq_id, length)`` pair per expansion.  Returns one byte per event:
    1 where the sequence missed the RT (the whole sequence is refilled, as
    in :meth:`ReplacementTable.access_sequence`), 0 on a hit.  RT miss
    behaviour is a pure function of this stream and the RT geometry, so
    the cycle simulator's "outcome" engine computes it once per (trace,
    geometry) — a Figure-7 RT sweep recomputes only this column.

    ``passes=2`` models ``warm_start`` (first pass fills only, second
    records).
    """
    rt = ReplacementTable(entries=entries, assoc=assoc, perfect=perfect,
                          block_size=block_size)
    access = rt.access_sequence
    flags = bytearray(len(events))
    for p in range(passes):
        record = p == passes - 1
        for j, (seq_id, length) in enumerate(events):
            missed = access(seq_id, length)
            if record and missed:
                flags[j] = 1
    return bytes(flags)
