"""Software composition of ACF production sets (Section 3.3).

DISE hardware never expands replacement instructions recursively; composition
is performed in software on the production *specifications*:

* **Nested composition** — ``nest(inner=X, outer=Y)`` builds productions
  whose effect equals applying X to the fetch stream and then Y to the
  result, ``Y(X(application))``.  It consists of Y's productions plus X's
  productions with Y "executed" on (inlined into) X's replacement
  sequences.  Inlining may rename Y's dedicated scratch registers to avoid
  conflicts with X's.
* **Non-nested merge** — ``merge_nonnested(a, b)`` combines productions with
  overlapping patterns such that both original meanings are preserved; the
  simple concatenation case (both sequences end with the trigger) is
  supported, mirroring Figure 5's store-tracing/fault-isolation merge.  The
  paper notes general non-nested composition may be impossible; we raise
  :class:`ComposeError` for the unsupported shapes.

Static inlining requires deciding whether an outer pattern matches a
replacement slot whose fields are directives.  Slots with literal fields are
decidable; a pattern constraining a field that is trigger-dependent is
*statically undecidable* and raises :class:`ComposeError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.directives import Lit, TrigField
from repro.core.pattern import PatternSpec
from repro.core.production import Production, ProductionError, ProductionSet
from repro.core.replacement import (
    TRIGGER_INSN,
    ReplacementInstr,
    ReplacementSpec,
)
from repro.isa.opcodes import Format, OpClass, Opcode
from repro.isa.registers import DISE_REG_BASE, NUM_DISE_REGS, is_dise_reg

MAYBE = "maybe"


class ComposeError(ProductionError):
    """Raised when a composition cannot be performed statically."""


# ----------------------------------------------------------------------
# Directive-level trigger roles of a replacement slot (mirrors
# Instruction.rs/rt/rd but over directives).
# ----------------------------------------------------------------------
def _rinstr_role(rinstr: ReplacementInstr, role: str):
    fmt = rinstr.opcode.format
    if role == "rs":
        if fmt is Format.MEM:
            return rinstr.rb
        if fmt in (Format.OPERATE, Format.BRANCH):
            return rinstr.ra
        if fmt is Format.JUMP:
            return rinstr.rb
    elif role == "rt":
        if fmt is Format.MEM and rinstr.opcode.is_store:
            return rinstr.ra
        if fmt is Format.OPERATE:
            return rinstr.rb
    elif role == "rd":
        if fmt is Format.MEM and rinstr.opcode.is_load:
            return rinstr.ra
        if fmt is Format.OPERATE:
            return rinstr.rc
        if fmt is Format.JUMP:
            return rinstr.ra
    return None


def _pattern_matches_rinstr(pattern: PatternSpec, rinstr: ReplacementInstr):
    """Does ``pattern`` match instances of this replacement slot?

    Returns True, False, or MAYBE (trigger-dependent).
    """
    if pattern.pc_lo is not None:
        return MAYBE  # the trigger's PC is unknown statically
    opcode = rinstr.opcode
    if pattern.opcode is not None:
        if opcode is not pattern.opcode:
            return False
    elif opcode.opclass is not pattern.opclass:
        return False
    for role, required in pattern._regs_items:
        directive = _rinstr_role(rinstr, role)
        if directive is None:
            return False
        if isinstance(directive, Lit):
            if directive.value != required:
                return False
        else:
            return MAYBE
    if pattern.imm is not None or pattern.imm_sign is not None:
        directive = rinstr.imm
        if directive is None:
            return False
        if not isinstance(directive, Lit):
            return MAYBE
        value = directive.value
        if pattern.imm is not None and value != pattern.imm:
            return False
        if pattern.imm_sign is not None:
            if pattern.imm_sign > 0 and value < 0:
                return False
            if pattern.imm_sign < 0 and value >= 0:
                return False
    return True


def _pattern_subsumes(outer: PatternSpec, inner: PatternSpec):
    """Does ``outer`` match every trigger of ``inner``?  True/False/MAYBE."""
    if outer.pc_lo is not None and (outer.pc_lo, outer.pc_hi) != \
            (inner.pc_lo, inner.pc_hi):
        return MAYBE
    if outer.opcode is not None:
        if inner.opcode is not outer.opcode:
            # inner could still be a class containing just that opcode, but
            # statically we treat class-vs-opcode as undecidable unless the
            # classes already disagree.
            if inner.opcode is not None:
                return False
            if inner.opclass is not outer.opcode.opclass:
                return False
            return MAYBE
    else:
        inner_class = (
            inner.opclass if inner.opclass is not None else inner.opcode.opclass
        )
        if inner_class is not outer.opclass:
            return False
    for role, required in outer._regs_items:
        inner_regs = dict(inner._regs_items)
        if inner_regs.get(role) == required:
            continue
        if role in inner_regs:
            return False
        return MAYBE
    if outer.imm is not None:
        if inner.imm == outer.imm:
            pass
        elif inner.imm is not None:
            return False
        else:
            return MAYBE
    if outer.imm_sign is not None:
        if inner.imm_sign == outer.imm_sign:
            pass
        elif inner.imm is not None:
            if outer.imm_sign > 0 and inner.imm < 0:
                return False
            if outer.imm_sign < 0 and inner.imm >= 0:
                return False
        else:
            return MAYBE
    return True


# ----------------------------------------------------------------------
# Dedicated-register read/write analysis and renaming
# ----------------------------------------------------------------------
def _directive_regs(directive) -> Set[int]:
    if isinstance(directive, Lit) and is_dise_reg(directive.value):
        return {directive.value}
    return set()


def _rinstr_written_dedicated(rinstr: ReplacementInstr) -> Set[int]:
    if rinstr.is_trigger_copy:
        return set()
    fmt = rinstr.opcode.format
    if fmt is Format.OPERATE:
        return _directive_regs(rinstr.rc)
    if fmt is Format.MEM and (
        rinstr.opcode.is_load or rinstr.opcode in (Opcode.LDA, Opcode.LDAH)
    ):
        return _directive_regs(rinstr.ra)
    if fmt is Format.JUMP:
        return _directive_regs(rinstr.ra)
    return set()


def _rinstr_all_dedicated(rinstr: ReplacementInstr) -> Set[int]:
    if rinstr.is_trigger_copy:
        return set()
    regs: Set[int] = set()
    for directive in (rinstr.ra, rinstr.rb, rinstr.rc):
        regs |= _directive_regs(directive)
    return regs


def spec_dedicated_usage(spec: ReplacementSpec) -> Tuple[Set[int], Set[int]]:
    """(all dedicated regs referenced, dedicated regs written) by ``spec``."""
    used: Set[int] = set()
    written: Set[int] = set()
    for rinstr in spec.instrs:
        used |= _rinstr_all_dedicated(rinstr)
        written |= _rinstr_written_dedicated(rinstr)
    return used, written


def _rename_directive(directive, rename: Dict[int, int]):
    if isinstance(directive, Lit) and directive.value in rename:
        return Lit(rename[directive.value])
    return directive


def rename_dedicated(spec: ReplacementSpec,
                     rename: Dict[int, int]) -> ReplacementSpec:
    """Rewrite dedicated-register names throughout a replacement spec."""
    if not rename:
        return spec
    instrs = []
    for rinstr in spec.instrs:
        if rinstr.is_trigger_copy:
            instrs.append(rinstr)
            continue
        instrs.append(
            ReplacementInstr(
                opcode=rinstr.opcode,
                ra=_rename_directive(rinstr.ra, rename),
                rb=_rename_directive(rinstr.rb, rename),
                rc=_rename_directive(rinstr.rc, rename),
                imm=rinstr.imm,
            )
        )
    return ReplacementSpec(
        instrs=tuple(instrs), name=spec.name,
        composed_on_fill=spec.composed_on_fill,
    )


def _resolve_conflicts(outer_spec: ReplacementSpec,
                       inner_used: Set[int]) -> ReplacementSpec:
    """Rename the outer spec's *written* dedicated registers away from the
    inner spec's register set (Figure 5: "inlining may require DISE registers
    to be renamed to avoid conflicts")."""
    outer_used, outer_written = spec_dedicated_usage(outer_spec)
    conflicts = outer_written & inner_used
    if not conflicts:
        return outer_spec
    busy = outer_used | inner_used
    free = [
        DISE_REG_BASE + index
        for index in range(NUM_DISE_REGS)
        if DISE_REG_BASE + index not in busy
    ]
    if len(free) < len(conflicts):
        raise ComposeError(
            "not enough free dedicated registers to rename around conflicts "
            f"on {sorted(conflicts)}"
        )
    rename = dict(zip(sorted(conflicts), free))
    return rename_dedicated(outer_spec, rename)


# ----------------------------------------------------------------------
# Inlining (applying an outer production set to a replacement spec)
# ----------------------------------------------------------------------
def _substitute_trigger(directive, rinstr: ReplacementInstr):
    """Rebind an outer directive to the inlining site ``rinstr``.

    The outer production's "trigger" is the replacement slot itself, so
    ``T.RS`` etc. resolve to the slot's corresponding directive — which may
    itself be a literal or chain to the composed production's real trigger.
    """
    if not isinstance(directive, TrigField):
        return directive
    if directive.field in ("rs", "rt", "rd"):
        resolved = _rinstr_role(rinstr, directive.field)
        if resolved is None:
            raise ComposeError(
                f"inlined sequence needs T.{directive.field.upper()} but the "
                f"site {rinstr.render()!r} has no such field"
            )
        return resolved
    if directive.field == "imm":
        if rinstr.imm is None:
            raise ComposeError(
                f"inlined sequence needs T.IMM but site {rinstr.render()!r} "
                "has no immediate"
            )
        return rinstr.imm
    raise ComposeError(
        f"directive T.{directive.field.upper()} cannot be statically inlined"
    )


def _inline_at_slot(outer_spec: ReplacementSpec, rinstr: ReplacementInstr,
                    base_offset: int) -> List[ReplacementInstr]:
    """Inline an outer replacement spec at a concrete replacement slot.

    ``base_offset`` is the slot's offset in the composed sequence; the outer
    spec's internal (DISE) branch targets are rebased onto it.
    """
    out: List[ReplacementInstr] = []
    for outer_rinstr in outer_spec.instrs:
        if outer_rinstr.is_trigger_copy:
            out.append(rinstr)
            continue
        imm = outer_rinstr.imm
        if outer_rinstr.is_dise_branch:
            imm = Lit(imm.value + base_offset)
        elif isinstance(imm, TrigField):
            imm = _substitute_trigger(imm, rinstr)
        out.append(
            ReplacementInstr(
                opcode=outer_rinstr.opcode,
                ra=_substitute_trigger(outer_rinstr.ra, rinstr),
                rb=_substitute_trigger(outer_rinstr.rb, rinstr),
                rc=_substitute_trigger(outer_rinstr.rc, rinstr),
                imm=imm,
            )
        )
    return out


def _select_outer_production(outer_set: ProductionSet, verdicts) -> Optional[Production]:
    """Pick the most specific definitely-matching outer production.

    ``verdicts`` is a list of (production, True/False/MAYBE).  A MAYBE with
    specificity at or above the best definite match makes the composition
    statically undecidable.
    """
    definite = [p for p, v in verdicts if v is True]
    maybes = [p for p, v in verdicts if v is MAYBE]
    best = max(definite, key=lambda p: p.pattern.specificity, default=None)
    for production in maybes:
        if best is None or production.pattern.specificity >= best.pattern.specificity:
            raise ComposeError(
                f"outer pattern {production.pattern.render()!r} matches the "
                "inlining site only trigger-dependently; static composition "
                "is undecidable"
            )
    return best


def _splice_at_trigger(outer_spec: ReplacementSpec,
                       base_offset: int) -> List[ReplacementInstr]:
    """Splice an outer spec at a trigger-copy slot.

    The outer production's trigger is the composed production's trigger, so
    directives pass through unchanged; only internal DISE-branch targets are
    rebased.
    """
    out: List[ReplacementInstr] = []
    for rinstr in outer_spec.instrs:
        if rinstr.is_dise_branch:
            out.append(
                ReplacementInstr(
                    opcode=rinstr.opcode, ra=rinstr.ra, rb=rinstr.rb,
                    rc=rinstr.rc, imm=Lit(rinstr.imm.value + base_offset),
                )
            )
        else:
            out.append(rinstr)
    return out


def apply_to_spec(outer_set: ProductionSet, spec: ReplacementSpec,
                  inner_pattern: Optional[PatternSpec] = None,
                  composed_on_fill=False,
                  name: Optional[str] = None) -> ReplacementSpec:
    """Execute ``outer_set``'s productions on a replacement sequence spec.

    ``inner_pattern`` (when given) describes the triggers this spec replaces,
    so trigger-copy slots can be statically expanded too.
    """
    inner_used, _ = spec_dedicated_usage(spec)

    out: List[ReplacementInstr] = []
    #: original offset -> new offset, for retargeting the inner sequence's
    #: own DISE branches.  Inlined outer instructions are rebased at splice
    #: time and recorded as already-fixed.
    offset_map: Dict[int, int] = {}
    already_fixed: Set[int] = set()

    for offset, rinstr in enumerate(spec.instrs):
        offset_map[offset] = len(out)
        if rinstr.is_trigger_copy:
            if inner_pattern is None:
                out.append(rinstr)
                continue
            verdicts = [
                (p, _pattern_subsumes(p.pattern, inner_pattern))
                for p in outer_set.productions
            ]
            production = _select_outer_production(outer_set, verdicts)
            if production is None:
                out.append(rinstr)
                continue
            outer_spec = _outer_spec_for(outer_set, production)
            outer_spec = _resolve_conflicts(outer_spec, inner_used)
            spliced = _splice_at_trigger(outer_spec, len(out))
            already_fixed.update(range(len(out), len(out) + len(spliced)))
            out.extend(spliced)
            continue
        verdicts = [
            (p, _pattern_matches_rinstr(p.pattern, rinstr))
            for p in outer_set.productions
        ]
        production = _select_outer_production(outer_set, verdicts)
        if production is None:
            out.append(rinstr)
            continue
        outer_spec = _outer_spec_for(outer_set, production)
        outer_spec = _resolve_conflicts(outer_spec, inner_used)
        inlined = _inline_at_slot(outer_spec, rinstr, len(out))
        already_fixed.update(range(len(out), len(out) + len(inlined)))
        out.extend(inlined)

    out = _retarget_dise_branches(out, offset_map, already_fixed)
    return ReplacementSpec(
        instrs=tuple(out),
        name=name or (spec.name + "+inlined"),
        composed_on_fill=composed_on_fill or spec.composed_on_fill,
    )


def _outer_spec_for(outer_set: ProductionSet,
                    production: Production) -> ReplacementSpec:
    if production.tagged:
        raise ComposeError(
            "cannot statically inline a tagged production (the replacement "
            "depends on runtime tag bits)"
        )
    return outer_set.replacement(production.seq_id)


def _retarget_dise_branches(out: List[ReplacementInstr],
                            offset_map: Dict[int, int],
                            already_fixed: Set[int]) -> List[ReplacementInstr]:
    """Fix the inner sequence's DISE-branch DISEPC targets after inlining.

    Outer-originated branches (indices in ``already_fixed``) were rebased at
    splice time and are left alone.
    """
    fixed = []
    for index, rinstr in enumerate(out):
        if rinstr.is_dise_branch and index not in already_fixed:
            old_target = rinstr.imm.value
            if old_target not in offset_map:
                raise ComposeError(
                    f"DISE branch target {old_target} vanished during inlining"
                )
            fixed.append(
                ReplacementInstr(
                    opcode=rinstr.opcode,
                    ra=rinstr.ra, rb=rinstr.rb, rc=rinstr.rc,
                    imm=Lit(offset_map[old_target]),
                )
            )
        else:
            fixed.append(rinstr)
    return fixed


# ----------------------------------------------------------------------
# Public composition operations
# ----------------------------------------------------------------------
def nest(inner: ProductionSet, outer: ProductionSet, name=None,
         composed_on_fill=False) -> ProductionSet:
    """Nested composition: the result behaves as ``outer(inner(stream))``.

    Figure 5 (bottom left): nesting store-address tracing within memory
    fault isolation — the composed set is MFI's productions plus the SAT
    production with MFI inlined into its replacement sequence.
    """
    result = ProductionSet(
        name or f"{outer.name}({inner.name})",
        scope="kernel" if "kernel" in (inner.scope, outer.scope) else "user",
    )

    inner_patterns = [p.pattern for p in inner.productions]
    next_id = 0

    # Inner productions with the outer set executed on their sequences.
    for production in inner.productions:
        if production.tagged:
            spec = None  # tagged: compose every dictionary entry below
            continue
        composed_spec = apply_to_spec(
            outer, inner.replacement(production.seq_id),
            inner_pattern=production.pattern,
            composed_on_fill=composed_on_fill,
        )
        seq_id = next_id
        next_id += 1
        result.add_replacement(seq_id, composed_spec)
        result.add_production(production.pattern, seq_id=seq_id,
                              name=production.name)

    # Tagged inner productions: compose the whole dictionary, keep tag ids.
    tagged_inner = [p for p in inner.productions if p.tagged]
    if tagged_inner:
        if result.replacements:
            raise ComposeError(
                "mixing direct and tagged inner productions in one nest() is "
                "not supported; nest them separately"
            )
        for seq_id, spec in inner.replacements.items():
            composed_spec = apply_to_spec(
                outer, spec, inner_pattern=None,
                composed_on_fill=composed_on_fill,
            )
            result.add_replacement(seq_id, composed_spec)
        for production in tagged_inner:
            result.productions.append(production)
        next_id = max(result.replacements, default=-1) + 1

    # Outer productions for instructions the inner set does not touch.  Skip
    # patterns identical to an inner pattern (the composed entry covers them).
    for production in outer.productions:
        if any(production.pattern == p for p in inner_patterns):
            continue
        if production.tagged:
            raise ComposeError(
                "tagged outer productions cannot be carried into a nest() "
                "result alongside remapped ids"
            )
        spec = outer.replacement(production.seq_id)
        seq_id = next_id
        next_id += 1
        result.add_replacement(seq_id, spec)
        result.add_production(production.pattern, seq_id=seq_id,
                              name=production.name)
    return result


def merge_nonnested(first: ProductionSet, second: ProductionSet,
                    name=None) -> ProductionSet:
    """Non-nested composition of two transparent ACFs (Figure 5, right).

    Productions with identical patterns are merged by concatenating their
    replacement sequences with a single trigger instance; both sequences
    must end with their (sole) trigger copy — the shape for which simple
    concatenation preserves both meanings.  Other productions are unioned.
    """
    result = ProductionSet(
        name or f"{first.name}|{second.name}",
        scope="kernel" if "kernel" in (first.scope, second.scope) else "user",
    )
    if any(p.tagged for p in first.productions + second.productions):
        raise ComposeError("non-nested merge of tagged productions unsupported")

    second_by_pattern = {p.pattern: p for p in second.productions}
    merged_patterns = set()
    for production in first.productions:
        match = second_by_pattern.get(production.pattern)
        spec_a = first.replacement(production.seq_id)
        if match is None:
            result.define(production.pattern, spec_a, name=production.name)
            continue
        spec_b = second.replacement(match.seq_id)
        merged = concatenate_specs(spec_a, spec_b)
        result.define(production.pattern, merged,
                      name=f"{production.name}|{match.name}")
        merged_patterns.add(production.pattern)
    for production in second.productions:
        if production.pattern in merged_patterns:
            continue
        result.define(production.pattern,
                      second.replacement(production.seq_id),
                      name=production.name)
    return result


def concatenate_specs(spec_a: ReplacementSpec,
                      spec_b: ReplacementSpec) -> ReplacementSpec:
    """Concatenate two sequences keeping a single, final trigger instance."""
    for spec in (spec_a, spec_b):
        offsets = spec.trigger_copy_offsets
        if offsets != (len(spec) - 1,):
            raise ComposeError(
                "simple non-nested merge requires each sequence to end with "
                f"its sole trigger copy; {spec.name!r} does not"
            )
        if any(r.is_dise_branch for r in spec.instrs):
            raise ComposeError(
                "simple non-nested merge of sequences with internal control "
                "flow is unsupported"
            )
    used_a, _ = spec_dedicated_usage(spec_a)
    spec_b = _resolve_conflicts(spec_b, used_a)
    instrs = tuple(spec_a.instrs[:-1]) + tuple(spec_b.instrs)
    return ReplacementSpec(
        instrs=instrs,
        name=f"{spec_a.name}|{spec_b.name}",
        composed_on_fill=spec_a.composed_on_fill or spec_b.composed_on_fill,
    )
