"""The DISE controller: the interface between ACFs and the engine.

Per Section 2.3, the controller (a) abstracts the internal PT/RT formats —
productions are submitted in the external, directive-annotated native-ISA
representation and translated on fill; (b) virtualizes PT/RT sizes, with the
pattern counter table as the only architectural PT/RT state; and (c)
cooperates with the OS kernel to virtualize the *set* of productions across
processes: user-scope production sets act only on their owning process and
are deactivated on context switch, while kernel-approved sets persist.

This model implements all of that at functional granularity and exposes the
miss penalties the timing simulator charges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import DiseConfig
from repro.core.engine import DiseEngine
from repro.core.production import ProductionError, ProductionSet
from repro.core.registers import DiseRegisterFile
from repro.core.tables import PatternTable, ReplacementTable


@dataclass
class _Installed:
    production_set: ProductionSet
    active: bool
    owner_pid: Optional[int]


@dataclass(frozen=True)
class DiseSavedState:
    """Per-process DISE state saved across context switches.

    Consists of the dedicated registers, the interrupted PC:DISEPC pair, and
    the pattern counter table (represented here by the active production-set
    names — the PT/RT contents themselves are demand-loaded, Section 2.3).
    """

    dise_regs: Tuple[int, ...]
    pc: int
    disepc: int
    active_sets: Tuple[str, ...]


def combine_production_sets(sets: List[ProductionSet],
                            name="active") -> Optional[ProductionSet]:
    """Combine several production sets into the single active set.

    Tagged (aware) sets keep their replacement ids — those are trigger tag
    values and cannot be renamed; their id spaces must be disjoint.  Direct
    (transparent) sets are remapped into free id space above all claimed
    ids.
    """
    if not sets:
        return None
    combined = ProductionSet(
        name,
        scope="kernel" if any(s.scope == "kernel" for s in sets) else "user",
    )
    tagged_sets = [s for s in sets if any(p.tagged for p in s.productions)]
    direct_sets = [s for s in sets if s not in tagged_sets]

    for pset in tagged_sets:
        overlap = set(pset.replacements) & set(combined.replacements)
        if overlap:
            raise ProductionError(
                f"tag collision combining {pset.name!r}: ids "
                f"{sorted(overlap)[:4]} already claimed (use a different "
                "reserved opcode or disjoint tag ranges)"
            )
        combined.replacements.update(pset.replacements)
        combined.productions.extend(pset.productions)

    next_id = max(combined.replacements, default=-1) + 1
    for pset in direct_sets:
        remap = {}
        for seq_id in sorted(pset.replacements):
            remap[seq_id] = next_id
            combined.replacements[next_id] = pset.replacements[seq_id]
            next_id += 1
        for production in pset.productions:
            combined.add_production(
                production.pattern,
                seq_id=remap[production.seq_id],
                name=production.name,
            )
    return combined


class DiseController:
    """Owns the engine, the installed production sets, and miss costs."""

    def __init__(self, config: Optional[DiseConfig] = None):
        self.config = config or DiseConfig()
        self.engine = DiseEngine(
            pt=PatternTable(self.config.pt_entries),
            rt=ReplacementTable(
                entries=self.config.rt_entries,
                assoc=self.config.rt_assoc,
                perfect=self.config.rt_perfect,
                block_size=self.config.rt_block_size,
            ),
        )
        self._installed: Dict[str, _Installed] = {}
        self._order: List[str] = []
        self.current_pid: Optional[int] = None
        #: Callbacks fired after every rebuild of the active production set
        #: (install/uninstall/activation/context switch).  The functional
        #: simulator registers its translation-cache flush here, so stale
        #: superblocks can never be executed after a production-set swap.
        self._invalidation_listeners: List = []

    def add_invalidation_listener(self, callback):
        """Register ``callback()`` to run after every production-set change.

        Used by consumers that cache decisions derived from the active
        productions (e.g. translated superblocks); the engine's
        ``generation`` counter covers the same changes, so the listener is
        a prompt-flush optimisation plus the documented hook for state the
        generation check cannot see.
        """
        self._invalidation_listeners.append(callback)

    # ------------------------------------------------------------------
    # Production-set management (the user/kernel API)
    # ------------------------------------------------------------------
    def install(self, production_set: ProductionSet, owner_pid=None,
                activate=True):
        """Install a production set.

        ``owner_pid`` identifies the owning process for user-scope sets;
        kernel-scope sets ("inspected and approved", Section 2.3) may act on
        any process and ignore it.
        """
        name = production_set.name
        if name in self._installed:
            raise ProductionError(f"production set already installed: {name!r}")
        if production_set.scope == "user" and owner_pid is None:
            owner_pid = self.current_pid
        self._installed[name] = _Installed(
            production_set=production_set, active=activate, owner_pid=owner_pid
        )
        self._order.append(name)
        self._rebuild()

    def uninstall(self, name: str):
        if name not in self._installed:
            raise ProductionError(f"no such production set: {name!r}")
        del self._installed[name]
        self._order.remove(name)
        self._rebuild()

    def set_active(self, name: str, active: bool):
        try:
            self._installed[name].active = active
        except KeyError:
            raise ProductionError(f"no such production set: {name!r}") from None
        self._rebuild()

    def installed_names(self) -> Tuple[str, ...]:
        return tuple(self._order)

    def active_names(self) -> Tuple[str, ...]:
        return tuple(
            name for name in self._order
            if self._installed[name].active and self._visible(name)
        )

    def _visible(self, name: str) -> bool:
        entry = self._installed[name]
        if entry.production_set.scope == "kernel":
            return True
        return entry.owner_pid is None or entry.owner_pid == self.current_pid

    def _rebuild(self):
        active = [
            self._installed[name].production_set
            for name in self._order
            if self._installed[name].active and self._visible(name)
        ]
        self.engine.set_production_set(combine_production_sets(active))
        for callback in tuple(self._invalidation_listeners):
            callback()

    # ------------------------------------------------------------------
    # Context switching (the OS-kernel layer)
    # ------------------------------------------------------------------
    def context_switch(self, new_pid: Optional[int]):
        """Switch processes: user-scope sets of other processes deactivate."""
        self.current_pid = new_pid
        self._rebuild()

    def save_state(self, dise_regs: DiseRegisterFile, pc=0,
                   disepc=0) -> DiseSavedState:
        return DiseSavedState(
            dise_regs=dise_regs.snapshot(),
            pc=pc,
            disepc=disepc,
            active_sets=self.active_names(),
        )

    def restore_state(self, state: DiseSavedState,
                      dise_regs: DiseRegisterFile):
        dise_regs.restore(state.dise_regs)
        for name in self._order:
            self._installed[name].active = name in state.active_sets or (
                self._installed[name].production_set.scope == "kernel"
                and self._installed[name].active
            )
        self._rebuild()
        return state.pc, state.disepc

    # ------------------------------------------------------------------
    # Miss costs (charged by the timing model)
    # ------------------------------------------------------------------
    def miss_penalty(self, composed=False) -> int:
        """Stall cycles for one PT/RT miss (pipeline flush modelled on top)."""
        if composed:
            return self.config.compose_miss_cycles
        return self.config.simple_miss_cycles
