"""Pattern specifications — the matching half of a DISE production.

A pattern may constrain any combination of: opcode, opcode class, logical
register names (by trigger role: RS/RT/RD), the immediate value, and the
immediate's sign (Section 2.1: "conditional branches with negative
offsets").  Patterns are defined on instruction bits only.

When several active patterns match one fetched instruction, the engine picks
the **most specific** — the one constraining the greatest number of
instruction bits (Section 2.2).  That enables overlapping and negative
specifications, e.g. "all loads that don't use the stack pointer" = a
specific identity production for SP-relative loads plus a general one for
all loads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import reg_name

#: Specificity weight (matched bits) contributed by each constraint kind.
_OPCODE_BITS = 6
_OPCLASS_BITS = 4   # fewer than a full opcode: a class constrains fewer bits
_REG_BITS = 5
_IMM_BITS = 16
_SIGN_BITS = 1
_PC_BITS = 8   # a PC-range constraint outranks register/sign constraints

#: Register roles a pattern may constrain, mapped to Instruction accessors.
REG_ROLES = ("rs", "rt", "rd")


@dataclass(frozen=True)
class PatternSpec:
    """Matching criteria for fetched instructions.

    ``pc_lo``/``pc_hi`` optionally scope the pattern to a half-open address
    range — the PC-matching extension the paper explicitly leaves open
    (Section 2.1).  It makes region-scoped ACFs expressible: trace or check
    only within one function's text.
    """

    opcode: Optional[Opcode] = None
    opclass: Optional[OpClass] = None
    #: role name ('rs'/'rt'/'rd') -> required register id.
    regs: Optional[Dict[str, int]] = None
    imm: Optional[int] = None
    #: +1 => immediate must be >= 0; -1 => immediate must be < 0.
    imm_sign: Optional[int] = None
    #: Half-open trigger-PC range [pc_lo, pc_hi); None = unconstrained.
    pc_lo: Optional[int] = None
    pc_hi: Optional[int] = None

    def __post_init__(self):
        if self.opcode is None and self.opclass is None:
            raise ValueError("a pattern must constrain an opcode or opcode class")
        if self.opcode is not None and self.opclass is not None:
            if self.opcode.opclass is not self.opclass:
                raise ValueError(
                    f"opcode {self.opcode.name} is not in class {self.opclass.name}"
                )
        if self.regs:
            for role in self.regs:
                if role not in REG_ROLES:
                    raise ValueError(f"unknown register role: {role!r}")
        if self.imm_sign not in (None, 1, -1):
            raise ValueError("imm_sign must be None, +1 or -1")
        if (self.pc_lo is None) != (self.pc_hi is None):
            raise ValueError("pc_lo and pc_hi must be set together")
        if self.pc_lo is not None and self.pc_hi <= self.pc_lo:
            raise ValueError("empty PC range")
        # Freeze the regs dict into a hashable sorted tuple for dataclass
        # hashing; expose it via the property below.
        object.__setattr__(
            self, "_regs_items",
            tuple(sorted(self.regs.items())) if self.regs else ()
        )

    # regs is a dict (unhashable); exclude it from hash/eq via the tuple.
    def __hash__(self):
        return hash((self.opcode, self.opclass, self._regs_items,
                     self.imm, self.imm_sign, self.pc_lo, self.pc_hi))

    def __eq__(self, other):
        if not isinstance(other, PatternSpec):
            return NotImplemented
        return (
            self.opcode is other.opcode
            and self.opclass is other.opclass
            and self._regs_items == other._regs_items
            and self.imm == other.imm
            and self.imm_sign == other.imm_sign
            and self.pc_lo == other.pc_lo
            and self.pc_hi == other.pc_hi
        )

    # ------------------------------------------------------------------
    @property
    def specificity(self) -> int:
        """Number of instruction bits this pattern constrains."""
        bits = 0
        if self.opcode is not None:
            bits += _OPCODE_BITS
        elif self.opclass is not None:
            bits += _OPCLASS_BITS
        bits += _REG_BITS * len(self._regs_items)
        if self.imm is not None:
            bits += _IMM_BITS
        elif self.imm_sign is not None:
            bits += _SIGN_BITS
        if self.pc_lo is not None:
            bits += _PC_BITS
        return bits

    def matches_pc(self, pc: int) -> bool:
        """True if a trigger at ``pc`` satisfies the PC constraint."""
        if self.pc_lo is None:
            return True
        return self.pc_lo <= pc < self.pc_hi

    def matches(self, instr: Instruction) -> bool:
        """True if ``instr`` triggers this pattern (instruction bits only;
        PC scoping is applied by the engine via :meth:`matches_pc`)."""
        if self.opcode is not None:
            if instr.opcode is not self.opcode:
                return False
        elif instr.opclass is not self.opclass:
            return False
        for role, required in self._regs_items:
            if getattr(instr, role) != required:
                return False
        if self.imm is not None:
            if instr.imm != self.imm:
                return False
        elif self.imm_sign is not None:
            if instr.imm is None:
                return False
            if self.imm_sign > 0 and instr.imm < 0:
                return False
            if self.imm_sign < 0 and instr.imm >= 0:
                return False
        return True

    def could_match_opcode(self, opcode: Opcode) -> bool:
        """True if some instruction with ``opcode`` could trigger this pattern.

        Used by the controller's pattern counter table, which tracks active
        and PT-resident pattern counts per opcode (Section 2.3).
        """
        if self.opcode is not None:
            return opcode is self.opcode
        return opcode.opclass is self.opclass

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render in the paper's pattern syntax."""
        parts = []
        if self.opcode is not None:
            parts.append(f"T.OP == {self.opcode.mnemonic}")
        if self.opclass is not None and self.opcode is None:
            parts.append(f"T.OPCLASS == {self.opclass.value}")
        for role, required in self._regs_items:
            parts.append(f"T.{role.upper()} == {reg_name(required)}")
        if self.imm is not None:
            parts.append(f"T.IMM == {self.imm}")
        if self.imm_sign is not None:
            parts.append(f"T.IMM {'>= 0' if self.imm_sign > 0 else '< 0'}")
        if self.pc_lo is not None:
            parts.append(f"T.PC in [{self.pc_lo:#x}, {self.pc_hi:#x})")
        return " && ".join(parts)


def match_loads():
    """Pattern matching every load (Figure 1's P2)."""
    return PatternSpec(opclass=OpClass.LOAD)


def match_stores():
    """Pattern matching every store (Figure 1's P1)."""
    return PatternSpec(opclass=OpClass.STORE)


def match_indirect_jumps():
    """Pattern matching jmp/jsr/ret (the third unsafe class)."""
    return PatternSpec(opclass=OpClass.INDIRECT_JUMP)


def match_opcode(opcode: Opcode):
    """Pattern matching one exact opcode."""
    return PatternSpec(opcode=opcode)
