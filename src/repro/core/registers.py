"""The DISE dedicated register file.

Dedicated registers (``$dr0``..``$dr7``) are accessible only from replacement
sequences (Section 2.1).  They provide per-expansion scratch storage and
persistent storage across expansions, letting global ACF behaviour be
synthesised from independent local expansions (e.g. the trace-buffer cursor
of store-address tracing, or MFI's legal-segment id).

The file is part of per-process DISE state and is saved/restored across
context switches by the OS-kernel layer (Section 2.3).
"""

from __future__ import annotations

from typing import Tuple

from repro.isa.registers import DISE_REG_BASE, NUM_DISE_REGS, is_dise_reg


class DiseRegisterFile:
    """Eight 64-bit dedicated registers."""

    __slots__ = ("_values",)

    def __init__(self, values=None):
        if values is None:
            self._values = [0] * NUM_DISE_REGS
        else:
            values = list(values)
            if len(values) != NUM_DISE_REGS:
                raise ValueError(f"expected {NUM_DISE_REGS} values")
            self._values = values

    def read(self, reg: int) -> int:
        return self._values[self._index(reg)]

    def write(self, reg: int, value: int):
        self._values[self._index(reg)] = value & 0xFFFFFFFFFFFFFFFF

    def snapshot(self) -> Tuple[int, ...]:
        """Immutable copy of the register contents (context-switch save)."""
        return tuple(self._values)

    def restore(self, snapshot):
        snapshot = list(snapshot)
        if len(snapshot) != NUM_DISE_REGS:
            raise ValueError(f"expected {NUM_DISE_REGS} values")
        self._values = snapshot

    @staticmethod
    def _index(reg: int) -> int:
        if not is_dise_reg(reg):
            raise ValueError(f"not a DISE dedicated register id: {reg}")
        return reg - DISE_REG_BASE

    def __repr__(self):
        cells = ", ".join(
            f"$dr{index}={value:#x}" for index, value in enumerate(self._values)
        )
        return f"DiseRegisterFile({cells})"
