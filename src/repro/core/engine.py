"""The DISE engine: matching, instantiation, and expansion.

The engine inspects every fetched application instruction, matches it
against the active patterns (most-specific wins), and — on a match —
instantiates the bound replacement sequence by executing the per-field
directives against the trigger's bits (the instantiation logic, IL, of
Section 2.2).

The engine is a peephole, native-to-native expander: each expansion is
physically independent, and replacement instructions are never themselves
candidates for expansion (no recursion; composition is done in software,
Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.directives import AbsTarget, Lit, TrigField
from repro.core.production import Production, ProductionSet
from repro.core.replacement import ReplacementSpec
from repro.core.tables import PatternTable, ReplacementTable
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Opcode
from repro.telemetry import registry as _telemetry


class ExpansionError(RuntimeError):
    """Raised when a trigger cannot be expanded (e.g. undefined codeword tag
    or a directive referencing a trigger field the trigger lacks)."""


def _sign_extend(value, bits):
    sign_bit = 1 << (bits - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


@dataclass(frozen=True)
class Expansion:
    """A fully instantiated dynamic replacement sequence."""

    seq_id: int
    trigger: Instruction
    trigger_pc: int
    instrs: Tuple[Instruction, ...]
    #: Offsets (DISEPCs) of instructions that are copies of the trigger.
    trigger_offsets: Tuple[int, ...]
    #: True when the sequence's RT image is built by composition on fill.
    composed: bool

    def __len__(self):
        return len(self.instrs)


class _EngineTelemetry:
    """Per-engine metric handles, built only when telemetry is enabled.

    Resolved once per production-set installation so :meth:`DiseEngine.process`
    pays a single attribute check (and nothing at all for non-trigger
    opcodes, which never reach it).
    """

    __slots__ = ("match_counters", "replacement_length", "pt_occupancy",
                 "rt_occupancy")

    def __init__(self, productions):
        self.match_counters = {
            id(production): _telemetry.counter(
                "engine.production."
                f"{production.name or f'seq{production.seq_id}'}"
            )
            for production in productions
        }
        self.replacement_length = _telemetry.histogram(
            "engine.replacement_length")
        self.pt_occupancy = _telemetry.gauge("engine.pt_occupancy")
        self.rt_occupancy = _telemetry.gauge("engine.rt_occupancy")

    def record(self, engine, production, expansion):
        counter = self.match_counters.get(id(production))
        if counter is None:
            # Pre-translated trigger sites can carry the production object
            # of another equal-signature installation (superblocks are
            # shared image-wide); resolve by the stable counter name.
            counter = _telemetry.counter(
                "engine.production."
                f"{production.name or f'seq{production.seq_id}'}"
            )
        counter.inc()
        self.replacement_length.observe(len(expansion.instrs))
        self.pt_occupancy.set(len(engine.pt._resident))
        self.rt_occupancy.set(
            sum(len(entries) for entries in engine.rt._sets.values())
        )


class DiseEngine:
    """Matches fetched instructions and produces expansions."""

    def __init__(self, pt: Optional[PatternTable] = None,
                 rt: Optional[ReplacementTable] = None):
        self.pt = pt or PatternTable()
        self.rt = rt or ReplacementTable()
        #: Metric handles, or None (telemetry disabled).  Re-resolved on
        #: every production-set change, so flipping telemetry takes effect
        #: at the next installation.
        self._tm: Optional[_EngineTelemetry] = None
        self._productions: List[Production] = []
        self._replacements: Dict[int, ReplacementSpec] = {}
        self._candidates_by_opcode: Dict[Opcode, List[Production]] = {}
        self._expansion_cache: Dict[tuple, Expansion] = {}
        self._pc_dependent: Dict[int, bool] = {}
        #: Opcodes at least one active pattern could match.  Everything else
        #: passes through untouched, so callers (and :meth:`process` itself)
        #: can skip matching entirely in O(1).
        self.trigger_opcodes: frozenset = frozenset()
        #: Bumped on every production-set change; consumers that cache
        #: per-opcode decisions (the functional simulator's decode cache)
        #: compare it to invalidate.
        self.generation = 0
        #: Content signature of the active production set (None when no
        #: set is active).  Unlike ``generation`` — a per-engine counter —
        #: the signature is comparable *across* engines, so caches keyed
        #: by it (the simulator's shared translation store) can be reused
        #: by every machine running the same productions.
        self.production_signature: Optional[tuple] = None
        self.expansions = 0
        self.inspected = 0

    # ------------------------------------------------------------------
    # Configuration (driven by the controller)
    # ------------------------------------------------------------------
    def set_production_set(self, production_set: Optional[ProductionSet]):
        """Install the active production set (or clear with ``None``)."""
        self._expansion_cache.clear()
        self._pc_dependent.clear()
        self._candidates_by_opcode = {}
        self.trigger_opcodes = frozenset()
        self.generation += 1
        self._tm = None
        self.production_signature = None
        if production_set is None:
            self._productions = []
            self._replacements = {}
            self.pt.set_active_patterns({})
            self.rt.invalidate()
            return
        self._productions = list(production_set.productions)
        self._replacements = dict(production_set.replacements)
        # Productions and replacement specs are frozen dataclasses, so
        # their reprs are a faithful value signature.
        self.production_signature = (
            tuple(repr(p) for p in self._productions),
            tuple((seq_id, repr(self._replacements[seq_id]))
                  for seq_id in sorted(self._replacements)),
        )

        by_opcode: Dict[Opcode, List[Production]] = {}
        active_indexes: Dict[Opcode, List[int]] = {}
        for opcode in Opcode:
            matching = [
                (index, production)
                for index, production in enumerate(self._productions)
                if production.pattern.could_match_opcode(opcode)
            ]
            if matching:
                ordered = sorted(
                    matching, key=lambda pair: -pair[1].pattern.specificity
                )
                by_opcode[opcode] = [production for _, production in ordered]
                active_indexes[opcode] = [index for index, _ in matching]
        self._candidates_by_opcode = by_opcode
        self.trigger_opcodes = frozenset(by_opcode)
        self.pt.set_active_patterns(active_indexes)
        self.rt.invalidate()
        if _telemetry.enabled():
            self._tm = _EngineTelemetry(self._productions)

    @property
    def active_production_count(self) -> int:
        return len(self._productions)

    def replacement(self, seq_id: int) -> ReplacementSpec:
        try:
            return self._replacements[seq_id]
        except KeyError:
            raise ExpansionError(
                f"no replacement sequence with id {seq_id} (stray codeword?)"
            ) from None

    # ------------------------------------------------------------------
    # Matching and expansion
    # ------------------------------------------------------------------
    def match(self, instr: Instruction,
              pc: Optional[int] = None) -> Optional[Production]:
        """The most specific matching production, or None.

        ``pc`` enables PC-scoped patterns (the attribute-matching extension
        of Section 2.1); ``None`` matches them unconditionally.
        """
        candidates = self._candidates_by_opcode.get(instr.opcode)
        if not candidates:
            return None
        for production in candidates:  # pre-sorted by specificity desc
            if production.pattern.matches(instr) and (
                pc is None or production.pattern.matches_pc(pc)
            ):
                return production
        return None

    def process(self, instr: Instruction, pc: int):
        """Inspect one fetched instruction.

        Returns ``(expansion, pt_miss, rt_miss)``; ``expansion`` is ``None``
        (and the miss flags are False except a possible PT fill miss) when
        the instruction passes through unexpanded.
        """
        self.inspected += 1
        if instr.opcode not in self.trigger_opcodes:
            # No active pattern can match: the PT access would be a pure
            # miss-free no-op and the match a guaranteed None.
            return None, False, False
        pt_miss = self.pt.access(instr.opcode)
        production = self.match(instr, pc)
        if production is None:
            return None, pt_miss, False
        seq_id = production.select_seq_id(instr)
        spec = self.replacement(seq_id)
        rt_miss = self.rt.access_sequence(seq_id, len(spec))
        expansion = self._instantiate_cached(seq_id, spec, instr, pc)
        self.expansions += 1
        if self._tm is not None:
            self._tm.record(self, production, expansion)
        return expansion, pt_miss, rt_miss

    def preexpand(self, instr: Instruction, pc: int):
        """Match and instantiate a potential trigger *without* side effects.

        Block-scope variant of :meth:`process` used by the functional
        simulator's superblock translator: matching and instantiation are
        pure functions of ``(instr, pc, generation)``, so they can be
        hoisted to translation time, while the stateful PT/RT accesses (and
        the inspected/expansions counters) stay at run time.  Shares
        :meth:`_instantiate_cached`, so a translation and a later
        interpretive run of the same site reuse one :class:`Expansion`.

        Returns ``None`` when no production matches, else
        ``(production, seq_id, spec, expansion)``.  May raise
        :class:`ExpansionError` exactly where :meth:`process` would.
        """
        production = self.match(instr, pc)
        if production is None:
            return None
        seq_id = production.select_seq_id(instr)
        spec = self.replacement(seq_id)
        expansion = self._instantiate_cached(seq_id, spec, instr, pc)
        return production, seq_id, spec, expansion

    # ------------------------------------------------------------------
    # Instantiation logic (IL)
    # ------------------------------------------------------------------
    def _instantiate_cached(self, seq_id, spec, trigger, pc) -> Expansion:
        pc_dep = self._pc_dependent.get(seq_id)
        if pc_dep is None:
            pc_dep = _spec_is_pc_dependent(spec)
            self._pc_dependent[seq_id] = pc_dep
        key = (seq_id, trigger, pc) if pc_dep else (seq_id, trigger)
        cached = self._expansion_cache.get(key)
        if cached is None:
            cached = instantiate(spec, seq_id, trigger, pc)
            self._expansion_cache[key] = cached
        return cached


def _spec_is_pc_dependent(spec: ReplacementSpec) -> bool:
    for rinstr in spec.instrs:
        if isinstance(rinstr.imm, AbsTarget):
            return True
        if isinstance(rinstr.imm, TrigField) and rinstr.imm.field == "pc":
            return True
    return False


def _trigger_reg_value(trigger: Instruction, fieldname: str):
    if fieldname == "rs":
        value = trigger.rs
    elif fieldname == "rt":
        value = trigger.rt
    elif fieldname == "rd":
        value = trigger.rd
    elif fieldname == "p1":
        value = trigger.ra
    elif fieldname == "p2":
        value = trigger.rb
    elif fieldname == "p3":
        value = trigger.rc
    else:
        raise ExpansionError(f"field T.{fieldname.upper()} not a register field")
    if value is None:
        raise ExpansionError(
            f"trigger {trigger} has no T.{fieldname.upper()} field"
        )
    return value


def _trigger_imm_value(trigger: Instruction, pc: int, fieldname: str):
    if fieldname == "imm":
        value = trigger.imm
    elif fieldname == "pc":
        value = pc
    elif fieldname == "tag":
        value = trigger.tag
    elif fieldname == "p1":
        value = None if trigger.ra is None else _sign_extend(trigger.ra, 5)
    elif fieldname == "p2":
        value = None if trigger.rb is None else _sign_extend(trigger.rb, 5)
    elif fieldname == "p3":
        value = None if trigger.rc is None else _sign_extend(trigger.rc, 5)
    elif fieldname == "p23":
        if trigger.rb is None or trigger.rc is None:
            value = None
        else:
            value = _sign_extend((trigger.rb << 5) | trigger.rc, 10)
    else:
        raise ExpansionError(f"field T.{fieldname.upper()} not an immediate field")
    if value is None:
        raise ExpansionError(
            f"trigger {trigger} has no T.{fieldname.upper()} field"
        )
    return value


def _resolve_reg(directive, trigger):
    if directive is None:
        return None
    if isinstance(directive, Lit):
        return directive.value
    if isinstance(directive, TrigField):
        return _trigger_reg_value(trigger, directive.field)
    raise ExpansionError(f"bad register directive: {directive!r}")


def _resolve_imm(directive, trigger, pc):
    if directive is None:
        return None
    if isinstance(directive, Lit):
        return directive.value
    if isinstance(directive, TrigField):
        return _trigger_imm_value(trigger, pc, directive.field)
    if isinstance(directive, AbsTarget):
        # PC-relative displacement against the trigger's PC: the expanded
        # branch executes with PC == trigger PC.
        delta = directive.address - (pc + INSTRUCTION_BYTES)
        if delta % INSTRUCTION_BYTES:
            raise ExpansionError(
                f"unaligned absolute target {directive.address:#x} from pc {pc:#x}"
            )
        return delta // INSTRUCTION_BYTES
    raise ExpansionError(f"bad immediate directive: {directive!r}")


def instantiate(spec: ReplacementSpec, seq_id: int,
                trigger: Instruction, pc: int) -> Expansion:
    """Run the instantiation directives; produce the dynamic sequence."""
    instrs = []
    trigger_offsets = []
    for offset, rinstr in enumerate(spec.instrs):
        if rinstr.is_trigger_copy:
            instrs.append(trigger)
            trigger_offsets.append(offset)
            continue
        instrs.append(
            Instruction(
                rinstr.opcode,
                ra=_resolve_reg(rinstr.ra, trigger),
                rb=_resolve_reg(rinstr.rb, trigger),
                rc=_resolve_reg(rinstr.rc, trigger),
                imm=_resolve_imm(rinstr.imm, trigger, pc),
            )
        )
    return Expansion(
        seq_id=seq_id,
        trigger=trigger,
        trigger_pc=pc,
        instrs=tuple(instrs),
        trigger_offsets=tuple(trigger_offsets),
        composed=spec.composed_on_fill,
    )
