"""Productions and production sets.

A production binds a pattern specification to a replacement sequence.  The
binding is either *direct* (transparent ACFs: the PT entry names the
replacement-sequence identifier) or *tagged* (aware ACFs: the identifier is
taken from the trigger's explicit tag bits — Section 2.1, explicit tagging).

A :class:`ProductionSet` is the unit an ACF hands to the DISE controller: a
list of productions plus the replacement dictionary (identifier ->
:class:`ReplacementSpec`).  Aware ACFs with many dictionary entries share a
single tagged production whose pattern matches the reserved opcode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.pattern import PatternSpec
from repro.core.replacement import ReplacementSpec


class ProductionError(ValueError):
    """Raised on ill-formed productions or production sets."""


@dataclass(frozen=True)
class Production:
    """One pattern -> replacement-sequence binding."""

    pattern: PatternSpec
    #: Replacement-sequence id for direct productions; ``None`` when tagged.
    seq_id: Optional[int] = None
    #: True when the id comes from the trigger's tag bits (aware ACFs).
    tagged: bool = False
    name: str = ""

    def __post_init__(self):
        if self.tagged == (self.seq_id is not None):
            raise ProductionError(
                "a production is either direct (seq_id) or tagged, not both/neither"
            )

    def select_seq_id(self, trigger) -> Optional[int]:
        """The replacement-sequence id this trigger expands to."""
        if self.tagged:
            return trigger.tag
        return self.seq_id

    def render(self) -> str:
        target = "T.TAG" if self.tagged else f"R{self.seq_id}"
        return f"{self.name or 'P?'}: {self.pattern.render()} -> {target}"


class ProductionSet:
    """A named collection of productions plus their replacement dictionary.

    ``scope`` models the OS-kernel production-virtualization policy of
    Section 2.3: ``"kernel"`` sets were submitted to and approved by the
    kernel and survive context switches; ``"user"`` sets live in one
    application's data space and are deactivated when it is switched out.
    """

    def __init__(self, name, scope="user"):
        if scope not in ("user", "kernel"):
            raise ProductionError(f"unknown scope: {scope!r}")
        self.name = name
        self.scope = scope
        self.productions: List[Production] = []
        self.replacements: Dict[int, ReplacementSpec] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_replacement(self, seq_id: int, spec: ReplacementSpec):
        if seq_id in self.replacements:
            raise ProductionError(f"replacement id {seq_id} already defined")
        self.replacements[seq_id] = spec
        return seq_id

    def next_seq_id(self) -> int:
        return max(self.replacements, default=-1) + 1

    def add_production(self, pattern: PatternSpec, seq_id=None, tagged=False,
                       name="") -> Production:
        production = Production(
            pattern=pattern, seq_id=seq_id, tagged=tagged, name=name
        )
        if not tagged and seq_id not in self.replacements:
            raise ProductionError(
                f"production references undefined replacement id {seq_id}"
            )
        self.productions.append(production)
        return production

    def define(self, pattern: PatternSpec, spec: ReplacementSpec, name="") -> int:
        """Add a replacement and a direct production for it in one step."""
        seq_id = self.add_replacement(self.next_seq_id(), spec)
        self.add_production(pattern, seq_id=seq_id, name=name)
        return seq_id

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self):
        return len(self.productions)

    def replacement(self, seq_id: int) -> ReplacementSpec:
        try:
            return self.replacements[seq_id]
        except KeyError:
            raise ProductionError(f"no replacement sequence with id {seq_id}") from None

    def total_replacement_instrs(self) -> int:
        return sum(len(spec) for spec in self.replacements.values())

    def render(self) -> str:
        lines = [f"# production set {self.name!r} (scope={self.scope})"]
        lines.extend(p.render() for p in self.productions)
        for seq_id in sorted(self.replacements):
            spec = self.replacements[seq_id]
            lines.append(f"R{seq_id}:" if not spec.name else f"{spec.name}:")
            lines.extend(f"    {rinstr.render()}" for rinstr in spec.instrs)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def merged_with(self, other: "ProductionSet",
                    name: Optional[str] = None) -> "ProductionSet":
        """Union of two sets with disjoint replacement-id namespaces.

        The other set's replacement ids are shifted past this set's; tagged
        productions keep their tag-relative ids, so tag spaces must not
        collide — callers composing two aware ACFs must use distinct
        reserved opcodes or disjoint tag ranges (Section 3.3, aware with
        aware).
        """
        merged = ProductionSet(
            name or f"{self.name}+{other.name}",
            scope="kernel" if "kernel" in (self.scope, other.scope) else "user",
        )
        merged.productions.extend(self.productions)
        merged.replacements.update(self.replacements)

        has_tagged = any(p.tagged for p in other.productions)
        if has_tagged:
            overlap = set(other.replacements) & set(merged.replacements)
            if overlap:
                raise ProductionError(
                    "cannot shift tagged replacement ids; tag collision on "
                    f"{sorted(overlap)[:4]}..."
                )
            shift = 0
        else:
            shift = max(merged.replacements, default=-1) + 1 - min(
                other.replacements, default=0
            )
            shift = max(shift, 0)
        for seq_id, spec in other.replacements.items():
            merged.replacements[seq_id + shift] = spec
        for production in other.productions:
            if production.tagged:
                merged.productions.append(production)
            else:
                merged.productions.append(
                    Production(
                        pattern=production.pattern,
                        seq_id=production.seq_id + shift,
                        name=production.name,
                    )
                )
        return merged
