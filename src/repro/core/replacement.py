"""Replacement-sequence specifications — the expansion half of a production.

A :class:`ReplacementSpec` is a short program template: a list of
:class:`ReplacementInstr`, each either the special whole-trigger copy
(``T.INSN``) or an opcode plus per-field instantiation directives
(:mod:`repro.core.directives`).

Control flow inside sequences follows the paper's two-level model
(Section 2.1):

* **DISE branches** (``dbeq``/``dbne``/``dbr``) transfer control *within*
  the dynamic replacement sequence: their immediate directive is a literal
  target DISEPC (an offset into this sequence).  One sequence can never jump
  into the middle of another.
* **Application branches** transfer control at the application level; their
  targets are absolute addresses (:class:`~repro.core.directives.AbsTarget`)
  or trigger-relative displacements.  Replacement instructions after a
  non-trigger application branch belong to its not-taken path and are
  squashed if it is taken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.directives import (
    AbsTarget,
    Directive,
    Lit,
    TrigField,
    validate_imm_directive,
    validate_reg_directive,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, OpClass, Opcode
from repro.isa.registers import is_dise_reg


@dataclass(frozen=True)
class ReplacementInstr:
    """One instruction slot of a replacement sequence specification.

    ``opcode is None`` denotes the whole-trigger directive ``T.INSN``.
    """

    opcode: Optional[Opcode] = None
    ra: Optional[Directive] = None
    rb: Optional[Directive] = None
    rc: Optional[Directive] = None
    imm: Optional[Directive] = None

    @property
    def is_trigger_copy(self) -> bool:
        return self.opcode is None

    @property
    def is_dise_branch(self) -> bool:
        return self.opcode is not None and self.opcode.is_dise_branch

    @property
    def is_app_branch(self) -> bool:
        return self.opcode is not None and self.opcode.is_branch

    def validate(self, length: int, offset: int):
        """Validate directives; ``length`` is the enclosing sequence length."""
        if self.is_trigger_copy:
            if any(d is not None for d in (self.ra, self.rb, self.rc, self.imm)):
                raise ValueError("T.INSN carries no field directives")
            return
        fmt = self.opcode.format
        for directive in (self.ra, self.rb, self.rc):
            if directive is not None:
                validate_reg_directive(directive)
        if self.imm is not None:
            validate_imm_directive(self.imm)
        if self.is_dise_branch:
            if not isinstance(self.imm, Lit):
                raise ValueError("DISE branch target must be a literal DISEPC")
            if not 0 <= self.imm.value < length:
                raise ValueError(
                    f"DISE branch target {self.imm.value} outside sequence "
                    f"of length {length}"
                )
        if fmt is Format.OPERATE and self.rc is None:
            raise ValueError(f"operate instruction at offset {offset} needs rc")

    def render(self) -> str:
        if self.is_trigger_copy:
            return "T.INSN"

        def show(directive, kind):
            if directive is None:
                return "?"
            if isinstance(directive, Lit):
                return directive.render_reg() if kind == "reg" else directive.render_imm()
            if isinstance(directive, TrigField):
                return directive.render()
            if isinstance(directive, AbsTarget):
                return directive.render()
            raise AssertionError

        op = self.opcode
        fmt = op.format
        if fmt is Format.NULLARY:
            return op.mnemonic
        if fmt is Format.MEM:
            return (f"{op.mnemonic} {show(self.ra, 'reg')}, "
                    f"{show(self.imm, 'imm')}({show(self.rb, 'reg')})")
        if fmt is Format.OPERATE:
            src2 = show(self.rb, "reg") if self.rb is not None else f"#{show(self.imm, 'imm')}"
            return f"{op.mnemonic} {show(self.ra, 'reg')}, {src2}, {show(self.rc, 'reg')}"
        if fmt is Format.BRANCH:
            if op is Opcode.OUT:
                return f"{op.mnemonic} {show(self.ra, 'reg')}"
            if op is Opcode.FAULT:
                return f"{op.mnemonic} {show(self.imm, 'imm')}"
            return f"{op.mnemonic} {show(self.ra, 'reg')}, {show(self.imm, 'imm')}"
        if fmt is Format.JUMP:
            return f"{op.mnemonic} {show(self.ra, 'reg')}, ({show(self.rb, 'reg')})"
        if fmt is Format.CODEWORD:
            return (f"{op.mnemonic} {show(self.ra, 'reg')}, {show(self.rb, 'reg')}, "
                    f"{show(self.rc, 'reg')}, {show(self.imm, 'imm')}")
        raise AssertionError(f"unhandled format {fmt}")


#: The whole-trigger replacement slot (``T.INSN``).
TRIGGER_INSN = ReplacementInstr(opcode=None)


@dataclass(frozen=True)
class ReplacementSpec:
    """An ordered, validated replacement sequence specification."""

    instrs: Tuple[ReplacementInstr, ...]
    name: str = ""
    #: True when this sequence is produced by composition in the RT miss
    #: handler (Section 3.3) — its RT fills cost the long miss latency.
    composed_on_fill: bool = False

    def __post_init__(self):
        instrs = tuple(self.instrs)
        object.__setattr__(self, "instrs", instrs)
        if not instrs:
            raise ValueError("replacement sequence cannot be empty")
        for offset, rinstr in enumerate(instrs):
            rinstr.validate(len(instrs), offset)

    def __len__(self):
        return len(self.instrs)

    def __iter__(self):
        return iter(self.instrs)

    @property
    def uses_dedicated_registers(self) -> bool:
        for rinstr in self.instrs:
            for directive in (rinstr.ra, rinstr.rb, rinstr.rc):
                if isinstance(directive, Lit) and is_dise_reg(directive.value):
                    return True
        return False

    @property
    def trigger_copy_offsets(self) -> Tuple[int, ...]:
        return tuple(
            offset for offset, rinstr in enumerate(self.instrs)
            if rinstr.is_trigger_copy
        )

    def render(self) -> str:
        lines = [f"{self.name or 'R?'}:"]
        lines.extend(f"    {rinstr.render()}" for rinstr in self.instrs)
        return "\n".join(lines)


def identity_replacement(name="identity") -> ReplacementSpec:
    """The identity expansion: replace the trigger with itself.

    Used for negative pattern specifications (Section 2.2).
    """
    return ReplacementSpec(instrs=(TRIGGER_INSN,), name=name)
