"""DISE core: productions, the engine (PT/RT/IL), the controller, and
software composition — the paper's primary contribution."""

from repro.core.compose import (
    ComposeError,
    apply_to_spec,
    concatenate_specs,
    merge_nonnested,
    nest,
    rename_dedicated,
    spec_dedicated_usage,
)
from repro.core.config import (
    DiseConfig,
    PLACEMENT_FREE,
    PLACEMENT_PIPE,
    PLACEMENT_STALL,
    PLACEMENTS,
)
from repro.core.controller import (
    DiseController,
    DiseSavedState,
    combine_production_sets,
)
from repro.core.directives import (
    AbsTarget,
    Directive,
    Lit,
    T_IMM,
    T_P1,
    T_P2,
    T_P23,
    T_P3,
    T_PC,
    T_RD,
    T_RS,
    T_RT,
    T_TAG,
    TrigField,
)
from repro.core.engine import (
    DiseEngine,
    Expansion,
    ExpansionError,
    instantiate,
)
from repro.core.language import LanguageError, parse_productions
from repro.core.pattern import (
    PatternSpec,
    match_indirect_jumps,
    match_loads,
    match_opcode,
    match_stores,
)
from repro.core.production import Production, ProductionError, ProductionSet
from repro.core.registers import DiseRegisterFile
from repro.core.replacement import (
    TRIGGER_INSN,
    ReplacementInstr,
    ReplacementSpec,
    identity_replacement,
)
from repro.core.tables import PatternTable, ReplacementTable

__all__ = [
    "ComposeError",
    "apply_to_spec",
    "concatenate_specs",
    "merge_nonnested",
    "nest",
    "rename_dedicated",
    "spec_dedicated_usage",
    "DiseConfig",
    "PLACEMENT_FREE",
    "PLACEMENT_PIPE",
    "PLACEMENT_STALL",
    "PLACEMENTS",
    "DiseController",
    "DiseSavedState",
    "combine_production_sets",
    "AbsTarget",
    "Directive",
    "Lit",
    "T_IMM",
    "T_P1",
    "T_P2",
    "T_P23",
    "T_P3",
    "T_PC",
    "T_RD",
    "T_RS",
    "T_RT",
    "T_TAG",
    "TrigField",
    "DiseEngine",
    "Expansion",
    "ExpansionError",
    "instantiate",
    "LanguageError",
    "parse_productions",
    "PatternSpec",
    "match_indirect_jumps",
    "match_loads",
    "match_opcode",
    "match_stores",
    "Production",
    "ProductionError",
    "ProductionSet",
    "DiseRegisterFile",
    "TRIGGER_INSN",
    "ReplacementInstr",
    "ReplacementSpec",
    "identity_replacement",
    "PatternTable",
    "ReplacementTable",
]
