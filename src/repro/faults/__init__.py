"""Deterministic fault injection for validating DISE MFI at scale.

The paper's flagship ACF is memory fault isolation; the unit tests check it
on hand-written wild accesses.  This package demonstrates the claim the
evaluation rests on — that the production set contains *injected* memory
faults at scale — via a seeded campaign:

* :mod:`repro.faults.inject` defines the fault taxonomy (out-of-segment
  loads/stores, wild indirect jumps, corrupted displacement fields,
  stack/heap overruns, bit flips in encoded instructions) and the
  deterministic machinery that plants one fault in a workload;
* :mod:`repro.faults.campaign` drives a campaign — every fault runs under
  plain simulation and under the MFI production set, outcomes are
  classified (contained / escaped / benign / crash / hang), and a
  machine-readable report with per-fault-class containment rates comes
  out.  Campaigns checkpoint their progress and can be resumed.

See ``docs/fault_injection.md`` for the full story.
"""

from repro.faults.campaign import (
    CampaignConfig,
    CampaignInterrupted,
    load_report,
    render_summary,
    run_campaign,
)
from repro.faults.inject import (
    FAULT_CLASSES,
    MFI_GUARDED_CLASSES,
    FaultSpec,
    OUTCOMES,
)

__all__ = [
    "CampaignConfig",
    "CampaignInterrupted",
    "FaultSpec",
    "FAULT_CLASSES",
    "MFI_GUARDED_CLASSES",
    "OUTCOMES",
    "load_report",
    "render_summary",
    "run_campaign",
]
