"""Seeded fault-injection campaigns over the MFI production set.

A campaign plants ``config.faults`` single faults (drawn from the taxonomy
in :mod:`repro.faults.inject`) into synthetic benchmarks and runs every
faulted program twice — under plain simulation and under the DISE MFI
production set — then classifies each outcome:

``contained``
    the MFI run raised the MFI fault code: the check caught the fault
    before the unsafe access executed;
``escaped``
    neither run crashed the *model*, but some architectural outcome
    (fault code, outputs, final memory) diverged from the unfaulted
    baseline — the fault did damage MFI did not stop;
``benign``
    both runs match their unfaulted baselines bit-for-bit — the corrupted
    state was dead;
``crash`` / ``hang``
    the MFI run died in the simulator (architecturally impossible state)
    or exceeded its dynamic-instruction budget;
``skipped``
    the benchmark offered no viable site for the drawn class.

Everything is a pure function of ``config.seed``: each fault gets its own
``random.Random(f"{seed}:{fault_id}")``, so results are independent of
iteration order and identical across resumed and cold runs.  Campaigns
ride on the execution fabric (:mod:`repro.fabric`): each fault is a
content-addressed task, which supplies checkpoint/resume, optional
process-pool fan-out (``REPRO_JOBS``), crash supervision, and — with
``REPRO_FABRIC_STORE`` enabled — cross-campaign dedupe (a 500-fault
campaign reuses every record a 300-fault campaign over the same seed
already computed).
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import tempfile
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.acf.base import AcfInstallation, plain_installation
from repro.acf.mfi import MFI_FAULT_CODE, attach_mfi, ensure_error_stub
from repro.core.config import DiseConfig
from repro.errors import (
    CampaignError,
    CheckpointError,
    ExecutionError,
    ExecutionTimeout,
    ReproError,
)
from repro.fabric.engine import Fabric
from repro.fabric.task import Task, register_recipe
from repro.faults.inject import (
    FAULT_CLASSES,
    FaultSpec,
    OUTCOMES,
    make_fault,
    mutate_image,
    profile_sites,
    state_mutator,
)
from repro.sim.batch import BatchMachine
from repro.telemetry import events as _events
from repro.telemetry import registry as _telemetry
from repro.workloads.generator import generate_by_name

#: Version stamp on reports and checkpoints.
REPORT_SCHEMA = 1

#: Functional-run DISE configuration.  Containment is an architectural
#: property; RT behaviour only affects timing, so a perfect RT keeps the
#: campaign fast without changing any outcome.
_CAMPAIGN_DISE = DiseConfig(rt_perfect=True)


class CampaignInterrupted(ReproError):
    """The campaign stopped early (induced interruption / test hook).

    Progress up to the interruption is in the checkpoint; re-run with
    ``resume=True`` to finish.
    """


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign's results."""

    seed: int = 2003
    faults: int = 500
    benchmarks: Tuple[str, ...] = ("bzip2", "gzip", "mcf", "parser")
    #: Workload scale factor (fraction of the full synthetic trip counts).
    scale: float = 0.05
    classes: Tuple[str, ...] = FAULT_CLASSES
    #: MFI production-set variant (``dise3`` / ``dise4``).
    variant: str = "dise3"
    #: Absolute cap on dynamic instructions per run (the per-benchmark
    #: hang budget is derived from the baselines and clamped to this).
    max_steps: int = 2_000_000
    #: Checkpoint after this many newly computed faults.
    checkpoint_every: int = 50

    def validate(self):
        if self.faults < 1:
            raise CampaignError("campaign needs at least one fault")
        if not self.benchmarks:
            raise CampaignError("campaign needs at least one benchmark")
        if not self.classes:
            raise CampaignError("campaign needs at least one fault class")
        unknown = [c for c in self.classes if c not in FAULT_CLASSES]
        if unknown:
            raise CampaignError(
                f"unknown fault classes {unknown}; choose from "
                f"{list(FAULT_CLASSES)}"
            )
        if self.scale <= 0:
            raise CampaignError("scale must be positive")

    def fingerprint(self) -> Dict[str, object]:
        """JSON-stable identity used to match checkpoints to configs."""
        return {
            "seed": self.seed,
            "faults": self.faults,
            "benchmarks": list(self.benchmarks),
            "scale": self.scale,
            "classes": list(self.classes),
            "variant": self.variant,
            "max_steps": self.max_steps,
        }


# ----------------------------------------------------------------------
# Per-benchmark preparation
# ----------------------------------------------------------------------
def _digest(value: object) -> str:
    return hashlib.sha256(repr(value).encode()).hexdigest()[:16]


def _summarize(fault_code, halted, outputs, memory) -> Dict[str, object]:
    status = "fault" if fault_code is not None else "halt"
    return {
        "status": status,
        "fault_code": fault_code,
        "outputs": _digest(list(outputs)),
        "memory": _digest(sorted(memory._nonzero().items())),
    }


#: Keys that must match for two runs to count as the same outcome.
_COMPARE_KEYS = ("status", "fault_code", "outputs", "memory")


def _same_outcome(a: Dict[str, object], b: Dict[str, object]) -> bool:
    return all(a.get(k) == b.get(k) for k in _COMPARE_KEYS)


class _Bench:
    """A prepared benchmark: images, baselines, site pools, hang budget."""

    def __init__(self, name: str, *, scale: float, variant: str,
                 max_steps: int):
        self.name = name
        try:
            image = generate_by_name(name, scale=scale)
        except KeyError:
            raise CampaignError(f"unknown benchmark {name!r}") from None
        # Both variants run the *same* stubbed image, so every instruction
        # has the same address under plain and MFI execution and one
        # FaultSpec applies identically to both.
        self.image = ensure_error_stub(image)
        self.plain = plain_installation(self.image)
        self.mfi = attach_mfi(self.image, variant=variant)

        plain_trace = self.plain.run(max_steps=max_steps)
        self.profile = profile_sites(self.image, plain_trace)
        self.plain_base = _summarize(
            plain_trace.fault_code, plain_trace.halted,
            plain_trace.outputs, plain_trace.final_memory,
        )
        mfi_trace = self.mfi.run(_CAMPAIGN_DISE, record_trace=False,
                                 max_steps=max_steps)
        self.mfi_base = _summarize(
            mfi_trace.fault_code, mfi_trace.halted,
            mfi_trace.outputs, mfi_trace.final_memory,
        )
        # Unfaulted control: MFI must neither fire nor perturb outputs.
        self.control = {
            "false_positive": mfi_trace.fault_code is not None,
            "outputs_match": list(mfi_trace.outputs) == list(plain_trace.outputs),
            "plain_instructions": plain_trace.instructions,
            "mfi_instructions": mfi_trace.instructions,
        }
        # Hang budget: generous multiple of the slower baseline, so a
        # corrupted loop counter is detected without a 2M-step wait.
        budget = max(plain_trace.instructions, mfi_trace.instructions) * 5
        self.max_steps = min(budget + 10_000, max_steps)


#: Per-process memo of prepared benchmarks, keyed by everything a
#: :class:`_Bench` depends on.  Fabric workers fill it on demand (baseline
#: prep amortizes across the faults a worker handles); the parent reuses
#: it for the report's control section.
_BENCHES: Dict[Tuple[str, float, str, int], _Bench] = {}


def _bench_for(name: str, scale: float, variant: str,
               max_steps: int) -> _Bench:
    key = (name, scale, variant, max_steps)
    if key not in _BENCHES:
        with _events.span("campaign.prepare_bench", bench=name):
            _BENCHES[key] = _Bench(name, scale=scale, variant=variant,
                                   max_steps=max_steps)
    return _BENCHES[key]


# ----------------------------------------------------------------------
# Running one faulted program
# ----------------------------------------------------------------------
def _drive(machine, site_index: Optional[int], visit: int,
           mutator: Optional[Callable], reg: Optional[int],
           max_steps: int):
    """Run to halt, applying the state corruption at the fault's dynamic
    site (the *visit*-th time control reaches it at app level)."""
    fired = mutator is None
    visits = 0
    steps = 0
    while not machine.halted and steps < max_steps:
        if (not fired and machine._exp is None
                and machine.idx == site_index):
            visits += 1
            if visits == visit:
                mutator(machine, reg)
                fired = True
        machine.step()
        steps += 1
    if not machine.halted:
        raise ExecutionTimeout(
            f"faulted run did not halt within {max_steps} dynamic "
            "instructions", steps=max_steps, index=machine.idx,
        )


def _run_variant(spec: FaultSpec, bench: _Bench,
                 mfi: bool) -> Dict[str, object]:
    """Run one faulted program under one variant; never raises."""
    base = bench.mfi if mfi else bench.plain
    mutator = state_mutator(spec)
    if mutator is None:
        image = mutate_image(spec, bench.image)
        installation = AcfInstallation(
            image=image, production_sets=base.production_sets,
            init_machine=base.init_machine, name=base.name,
        )
        site_index = None
        reg = None
    else:
        installation = base
        site_index = bench.image.index_of_addr[spec.site_pc]
        reg = bench.image.instructions[site_index].rs
    machine = installation.make_machine(
        _CAMPAIGN_DISE if mfi else None, record_trace=False,
    )
    try:
        _drive(machine, site_index, spec.visit, mutator, reg,
               bench.max_steps)
    except ExecutionTimeout as exc:
        return {"status": "hang", "error": exc.details()}
    except ExecutionError as exc:
        return {"status": "crash", "error": exc.details()}
    return _summarize(machine.fault_code, machine.halted,
                      machine.outputs, machine.mem)


def _classify(record: Dict[str, object], bench: _Bench) -> str:
    mfi_run = record["mfi"]
    plain_run = record["plain"]
    if (mfi_run["status"] == "fault"
            and mfi_run["fault_code"] == MFI_FAULT_CODE):
        return "contained"
    if mfi_run["status"] == "hang":
        return "hang"
    if mfi_run["status"] == "crash":
        return "crash"
    if (not _same_outcome(plain_run, bench.plain_base)
            or not _same_outcome(mfi_run, bench.mfi_base)):
        return "escaped"
    return "benign"


def _run_one(spec: Optional[FaultSpec], fault_id: str, bench_name: str,
             fault_class: str, bench: Optional[_Bench]) -> Dict[str, object]:
    if spec is None:
        return {
            "spec": {"id": fault_id, "bench": bench_name,
                     "class": fault_class, "guarded": False},
            "outcome": "skipped",
        }
    plain_run = _run_variant(spec, bench, mfi=False)
    mfi_run = _run_variant(spec, bench, mfi=True)
    record = {"spec": spec.to_dict(), "plain": plain_run, "mfi": mfi_run}
    record["outcome"] = _classify(record, bench)
    return record


# ----------------------------------------------------------------------
# Batched execution (REPRO_BATCH / batch=): same results, cohort-stepped
# ----------------------------------------------------------------------
def _add_variant_lane(cohort: BatchMachine, spec: FaultSpec, bench: _Bench,
                      mfi: bool) -> int:
    """One faulted variant run as a batch lane (state-mutator faults)."""
    base = bench.mfi if mfi else bench.plain
    site_index = bench.image.index_of_addr[spec.site_pc]
    reg = bench.image.instructions[site_index].rs
    machine = base.make_machine(
        _CAMPAIGN_DISE if mfi else None, record_trace=False,
    )
    return cohort.add_lane(
        machine, max_steps=bench.max_steps,
        watch=(site_index, spec.visit, state_mutator(spec), reg),
    )


def _lane_result(cohort: BatchMachine, lane: int,
                 max_steps: int) -> Dict[str, object]:
    """Map a finished lane to :func:`_run_variant`'s result dict."""
    outcome = cohort.outcomes()[lane]
    machine = outcome.machine
    if outcome.status == "error":
        return {"status": "crash", "error": outcome.error.details()}
    if outcome.status == "timeout":
        exc = ExecutionTimeout(
            f"faulted run did not halt within {max_steps} dynamic "
            "instructions", steps=max_steps, index=machine.idx,
        )
        return {"status": "hang", "error": exc.details()}
    return _summarize(machine.fault_code, machine.halted,
                      machine.outputs, machine.mem)


def _run_wave(wave: List[Tuple[str, str, str, Optional[_Bench],
                               Optional[FaultSpec]]]
              ) -> List[Dict[str, object]]:
    """Run one wave of faults, cohort-stepping the state-mutator pairs.

    Image-mutation and skipped faults take the scalar path — each one
    executes a different text segment, so there is nothing to share.
    Returns one record per wave entry, in order.
    """
    cohort = BatchMachine()
    lanes: Dict[int, Tuple[int, int]] = {}
    for pos, (fault_id, bench_name, fault_class, bench, spec) in \
            enumerate(wave):
        if spec is not None and state_mutator(spec) is not None:
            lanes[pos] = (_add_variant_lane(cohort, spec, bench, False),
                          _add_variant_lane(cohort, spec, bench, True))
    if lanes:
        cohort.run()
    records = []
    for pos, (fault_id, bench_name, fault_class, bench, spec) in \
            enumerate(wave):
        if pos not in lanes:
            records.append(_run_one(spec, fault_id, bench_name,
                                    fault_class, bench))
            continue
        plain_lane, mfi_lane = lanes[pos]
        record = {
            "spec": spec.to_dict(),
            "plain": _lane_result(cohort, plain_lane, bench.max_steps),
            "mfi": _lane_result(cohort, mfi_lane, bench.max_steps),
        }
        record["outcome"] = _classify(record, bench)
        records.append(record)
    return records


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------
def _atomic_write_json(path: str, payload: Dict[str, object]):
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


# ----------------------------------------------------------------------
# The fabric recipe: one planned fault (plus its cohort batch form)
# ----------------------------------------------------------------------
def _plan_fault(params: Dict[str, object]):
    """Plan one fault from its task parameters (pure given the params)."""
    fault_id = params["fault_id"]
    # Per-fault generator: results are a pure function of
    # (seed, fault_id), independent of iteration order and resume.
    rng = random.Random(f"{params['seed']}:{fault_id}")
    bench_name = rng.choice(params["benchmarks"])
    fault_class = rng.choice(params["classes"])
    bench = _bench_for(bench_name, params["scale"], params["variant"],
                       params["max_steps"])
    spec = make_fault(rng, fault_id, bench_name, fault_class,
                      bench.profile, bench.image)
    return fault_id, bench_name, fault_class, bench, spec


def _fault_recipe(params: Dict[str, object]) -> Dict[str, object]:
    fault_id, bench_name, fault_class, bench, spec = _plan_fault(params)
    return _run_one(spec, fault_id, bench_name, fault_class, bench)


def _fault_batch(params_list) -> List[Dict[str, object]]:
    """Cohort form: one wave of faults, lockstepping same-image pairs."""
    return _run_wave([_plan_fault(params) for params in params_list])


register_recipe("repro.faults.campaign:fault", _fault_recipe, _fault_batch)


def _fault_task(config: CampaignConfig, index: int) -> Task:
    fault_id = f"f{index:04d}"
    return Task(
        recipe="repro.faults.campaign:fault",
        params={
            "seed": config.seed,
            "fault_id": fault_id,
            "benchmarks": list(config.benchmarks),
            "classes": list(config.classes),
            "scale": config.scale,
            "variant": config.variant,
            "max_steps": config.max_steps,
        },
        task_id=fault_id,
    )


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------
def run_campaign(config: CampaignConfig,
                 checkpoint_path: Optional[str] = None,
                 resume: bool = False,
                 progress: Optional[Callable[[str, str, int, int], None]] = None,
                 stop_after: Optional[int] = None,
                 batch: Optional[int] = None,
                 jobs: Optional[int] = None,
                 fabric_options: Optional[Dict[str, object]] = None
                 ) -> Dict[str, object]:
    """Run (or resume) a campaign; returns the machine-readable report.

    ``progress(fault_id, outcome, done, total)`` is called after every
    newly computed fault.  ``stop_after`` — a test hook modelling an
    interrupted run — checkpoints and raises :class:`CampaignInterrupted`
    after that many *newly computed* faults.

    ``batch`` (default: the ``REPRO_BATCH`` environment variable) runs
    same-image fault pairs as a lockstep cohort per wave, and ``jobs``
    (default: ``REPRO_JOBS``) fans faults out over supervised worker
    processes — both pure execution accelerators: records, checkpoints,
    progress counts and reports are bit-identical to the serial path, so
    neither is part of the config fingerprint.  ``fabric_options`` passes
    extra :class:`~repro.fabric.engine.Fabric` knobs through (``store``,
    ``chaos``, ``task_timeout``...).
    """
    config.validate()
    if resume and not checkpoint_path:
        raise CheckpointError("resume requested without a checkpoint path")

    fresh = 0

    def on_result(fault_id: str, record: Dict[str, object], done: int,
                  total: int):
        nonlocal fresh
        outcome = record["outcome"]
        fault_class = record["spec"]["class"]
        _telemetry.counter(f"faults.outcome.{outcome}").inc()
        if outcome != "skipped":
            _telemetry.counter(f"faults.injected.{fault_class}").inc()
        if outcome == "contained":
            _telemetry.counter(f"faults.contained.{fault_class}").inc()
        fresh += 1
        if progress is not None:
            progress(fault_id, outcome, done, total)
        if stop_after is not None and fresh >= stop_after:
            # The fabric checkpoints completed work before re-raising.
            raise CampaignInterrupted(
                f"campaign interrupted after {fresh} faults "
                f"({done}/{total} complete)"
            )

    fabric = Fabric(
        "faults", config.fingerprint(), checkpoint_path=checkpoint_path,
        resume=resume, jobs=jobs, checkpoint_every=config.checkpoint_every,
        **(fabric_options or {}),
    )
    tasks = [_fault_task(config, i) for i in range(config.faults)]
    records = fabric.run(tasks, on_result=on_result, batch=batch)

    # Benchmarks never drawn by the seed still contribute their control
    # run, so the false-positive check always covers the configured set.
    benches = {
        name: _bench_for(name, config.scale, config.variant,
                         config.max_steps)
        for name in config.benchmarks
    }
    return _build_report(config, records, benches)


def _build_report(config: CampaignConfig,
                  records: Dict[str, Dict[str, object]],
                  benches: Dict[str, _Bench]) -> Dict[str, object]:
    per_class: Dict[str, Dict[str, object]] = {
        c: {outcome: 0 for outcome in OUTCOMES} for c in config.classes
    }
    totals = {outcome: 0 for outcome in OUTCOMES}
    guarded_total = 0
    guarded_contained = 0
    for record in records.values():
        outcome = record["outcome"]
        fault_class = record["spec"]["class"]
        per_class[fault_class][outcome] += 1
        totals[outcome] += 1
        if record["spec"].get("guarded"):
            guarded_total += 1
            if outcome == "contained":
                guarded_contained += 1
    for counts in per_class.values():
        total = sum(counts[o] for o in OUTCOMES)
        active = total - counts["skipped"]
        counts["total"] = total
        counts["containment_rate"] = (
            round(counts["contained"] / active, 6) if active else None
        )
    control = {name: bench.control for name, bench in benches.items()}
    return {
        "schema": REPORT_SCHEMA,
        "config": config.fingerprint(),
        "control": control,
        "summary": {
            "faults": len(records),
            "outcomes": totals,
            "classes": per_class,
            "guarded": {
                "total": guarded_total,
                "contained": guarded_contained,
                "containment_rate": (
                    round(guarded_contained / guarded_total, 6)
                    if guarded_total else None
                ),
            },
            "false_positives": sum(
                1 for c in control.values() if c["false_positive"]
            ),
        },
        "faults": [records[fid] for fid in sorted(records)],
    }


# ----------------------------------------------------------------------
# Report I/O and rendering
# ----------------------------------------------------------------------
def save_report(report: Dict[str, object], path: str):
    """Write a report deterministically (sorted keys, no timestamps)."""
    _atomic_write_json(path, report)


def load_report(path: str) -> Dict[str, object]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"unreadable campaign report {path}: "
                            f"{exc}") from exc


def render_summary(report: Dict[str, object]) -> str:
    """Human-readable summary of a campaign report (markdown)."""
    summary = report["summary"]
    config = report["config"]
    lines: List[str] = []
    lines.append(f"# MFI fault-injection campaign (seed {config['seed']})")
    lines.append("")
    lines.append(
        f"{summary['faults']} faults over {', '.join(config['benchmarks'])} "
        f"(scale {config['scale']}, variant {config['variant']})."
    )
    guarded = summary["guarded"]
    rate = guarded["containment_rate"]
    lines.append(
        f"MFI-guarded faults contained: {guarded['contained']}/"
        f"{guarded['total']}"
        + (f" ({rate * 100:.1f}%)" if rate is not None else "")
    )
    lines.append(
        f"False positives on unfaulted controls: "
        f"{summary['false_positives']}"
    )
    lines.append("")
    header = ["class", "total"] + list(OUTCOMES) + ["containment"]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for fault_class, counts in summary["classes"].items():
        rate = counts["containment_rate"]
        row = [fault_class, str(counts["total"])]
        row += [str(counts[o]) for o in OUTCOMES]
        row.append(f"{rate * 100:.1f}%" if rate is not None else "—")
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    lines.append("Outcomes: " + ", ".join(
        f"{name}={count}" for name, count in summary["outcomes"].items()
    ))
    return "\n".join(lines)
