"""Fault taxonomy and deterministic single-fault injection.

Two injection mechanisms cover the taxonomy:

* **State corruption** (``oob_load``, ``oob_store``, ``wild_jump``,
  ``stack_overrun``, ``heap_overrun``) — the campaign driver runs the
  program and, immediately before the *n*-th dynamic visit to a chosen
  instruction, overwrites (or offsets) that instruction's address
  register.  This models transient corruption — a bad pointer arriving at
  an unsafe instruction — without touching program layout, so the plain
  and MFI images stay address-identical and the fault fires at the same
  architectural point under both.

* **Image mutation** (``corrupt_disp``, ``bitflip``) — one instruction is
  replaced in place (same 4 bytes, no re-layout): either its displacement
  field is rewritten, or one bit of its encoded form is flipped and the
  word re-decoded.  Direct-branch targets are re-derived from the mutated
  displacement, so a corrupted branch really goes where its bits say.

Sites are drawn from a *profiling trace* of the unfaulted program, so every
injected fault targets an instruction that actually executes.  All choices
come from a caller-supplied ``random.Random``, making each fault a pure
function of its seed.

MFI guards segment-granularity isolation: a fault is *guarded* exactly when
the corrupted address register leaves the program's legal segment (checked
the same way the production set checks it, ``reg >> SEGMENT_SHIFT``).
In-segment corruption — small heap overruns, displacement rewrites —
escapes by design and the campaign reports it as such.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import CampaignError
from repro.isa.encoding import decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass, Opcode
from repro.program.builder import SEGMENT_SHIFT
from repro.program.image import ProgramImage
from repro.sim.memory import MASK64
from repro.sim.trace import TraceResult

#: The fault taxonomy, in campaign order.
FAULT_CLASSES = (
    "oob_load",        # load base register -> out-of-segment address
    "oob_store",       # store base register -> out-of-segment address
    "wild_jump",       # indirect-jump target register -> out-of-segment
    "corrupt_disp",    # rewrite a load/store displacement field
    "stack_overrun",   # walk an address register below its segment
    "heap_overrun",    # walk an address register past its allocation
    "bitflip",         # flip one bit of an encoded instruction
)

#: Classes whose every instance MFI guarantees to contain (the corrupted
#: register provably leaves the legal segment).
MFI_GUARDED_CLASSES = frozenset({"oob_load", "oob_store", "wild_jump"})

#: Possible per-fault outcomes (see campaign classification).
OUTCOMES = ("contained", "escaped", "benign", "crash", "hang", "skipped")

#: Direct branches whose target index must be re-derived after mutation.
_DIRECT_BRANCHES = (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BLE,
                    Opcode.BGT, Opcode.BGE, Opcode.BR, Opcode.BSR)

#: User registers (0..30 minus the hardwired zero) are mutable fault
#: targets; DISE dedicated registers are not architectural program state.
_ZERO = 31


@dataclass(frozen=True)
class FaultSpec:
    """One planted fault, fully determined by its fields."""

    fault_id: str
    bench: str
    fault_class: str
    #: App-level pc of the targeted instruction.
    site_pc: int
    #: 1-based dynamic occurrence of ``site_pc`` at which to inject
    #: (state-corruption classes; ``0`` for image mutations, which are
    #: present from the first fetch).
    visit: int
    #: Whether MFI's segment check provably fires for this fault.
    guarded: bool
    #: Class-specific parameters, as a sorted item tuple (hashable).
    detail: Tuple[Tuple[str, object], ...] = ()

    def detail_dict(self) -> Dict[str, object]:
        return dict(self.detail)

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.fault_id,
            "bench": self.bench,
            "class": self.fault_class,
            "site_pc": self.site_pc,
            "visit": self.visit,
            "guarded": self.guarded,
            "detail": self.detail_dict(),
        }


# ----------------------------------------------------------------------
# Site profiling
# ----------------------------------------------------------------------
@dataclass
class SiteProfile:
    """Executed injection sites harvested from an unfaulted trace.

    Each pool entry is ``(pc, visit, base)`` — the instruction address,
    the 1-based dynamic occurrence, and (for memory operations) the value
    the base register held on that visit, recovered from the traced
    effective address.  ``base`` is ``None`` where it is unknowable from
    the trace (jumps) or irrelevant.
    """

    loads: List[Tuple[int, int, int]]
    stores: List[Tuple[int, int, int]]
    jumps: List[Tuple[int, int, Optional[int]]]
    mem_sites: List[int]          # unique pcs of executed loads/stores
    executed: List[int]           # unique pcs of all executed instructions


def profile_sites(image: ProgramImage, trace: TraceResult) -> SiteProfile:
    """Harvest per-class injection-site pools from a profiling trace."""
    index_of_addr = image.index_of_addr
    visits: Dict[int, int] = {}
    loads: List[Tuple[int, int, int]] = []
    stores: List[Tuple[int, int, int]] = []
    jumps: List[Tuple[int, int, Optional[int]]] = []
    mem_sites: List[int] = []
    seen_mem = set()
    executed: List[int] = []
    seen_exec = set()

    for op in trace.ops:
        pc = op.pc
        idx = index_of_addr.get(pc)
        if idx is None:
            continue
        visit = visits.get(pc, 0) + 1
        visits[pc] = visit
        if pc not in seen_exec:
            seen_exec.add(pc)
            executed.append(pc)
        instr = image.instructions[idx]
        opclass = instr.opclass
        if opclass in (OpClass.LOAD, OpClass.STORE):
            base_reg = instr.rb
            if base_reg is None or base_reg == _ZERO or base_reg >= 32:
                continue
            if op.mem_addr is None:
                continue
            base = (op.mem_addr - (instr.imm or 0)) & MASK64
            (loads if opclass is OpClass.LOAD else stores).append(
                (pc, visit, base)
            )
            if pc not in seen_mem:
                seen_mem.add(pc)
                mem_sites.append(pc)
        elif opclass is OpClass.INDIRECT_JUMP:
            target_reg = instr.rb
            if target_reg is None or target_reg == _ZERO or target_reg >= 32:
                continue
            jumps.append((pc, visit, None))
    return SiteProfile(loads=loads, stores=stores, jumps=jumps,
                       mem_sites=mem_sites, executed=executed)


# ----------------------------------------------------------------------
# Image mutation
# ----------------------------------------------------------------------
def _retarget(image: ProgramImage, index: int,
              instr: Instruction) -> Optional[int]:
    """Resolved target index for a (possibly mutated) direct branch."""
    if instr.opcode in _DIRECT_BRANCHES and instr.imm is not None:
        target_pc = image.addresses[index] + 4 + instr.imm * 4
        return image.index_of_addr.get(target_pc)
    return None


def replace_instruction(image: ProgramImage, index: int,
                        new_instr: Instruction) -> ProgramImage:
    """A copy of ``image`` with one same-size instruction swapped in.

    No re-layout happens (the mutation occupies the original 4 bytes);
    the direct-branch target at ``index`` is re-derived from the mutated
    displacement, so a corrupted branch goes where its bits now point —
    possibly nowhere, which the simulator reports as an execution error.
    """
    instructions = list(image.instructions)
    instructions[index] = new_instr
    target_index = list(image.target_index)
    target_index[index] = _retarget(image, index, new_instr)
    return ProgramImage(
        instructions=instructions,
        addresses=list(image.addresses),
        sizes=list(image.sizes),
        target_index=target_index,
        symbols=dict(image.symbols),
        entry_index=image.entry_index,
        text_base=image.text_base,
        data_base=image.data_base,
        data_words=dict(image.data_words),
        data_size=image.data_size,
        load_addresses=dict(image.load_addresses),
    )


# ----------------------------------------------------------------------
# Fault generation
# ----------------------------------------------------------------------
def _oob_address(rng: random.Random) -> int:
    """A word-aligned address outside both the text and data segments."""
    segment = rng.randrange(2, 64)
    offset = rng.randrange(0, 1 << SEGMENT_SHIFT, 8)
    return (segment << SEGMENT_SHIFT) | offset


#: Overrun magnitudes: the small ones usually stay inside the segment
#: (escaping MFI by design), the large ones cross it (guarded).
_OVERRUN_DELTAS = (1 << 12, 1 << 16, 1 << 20, 1 << 26, 3 << 26)


def make_fault(rng: random.Random, fault_id: str, bench: str,
               fault_class: str, profile: SiteProfile,
               image: ProgramImage) -> Optional[FaultSpec]:
    """Draw one :class:`FaultSpec` for ``fault_class`` from the site pools.

    Returns ``None`` when the benchmark offers no viable site (empty pool,
    or no decodable bit flip) — the campaign records such draws as
    ``skipped``.
    """
    data_seg = image.data_base >> SEGMENT_SHIFT

    if fault_class in ("oob_load", "oob_store"):
        pool = profile.loads if fault_class == "oob_load" else profile.stores
        if not pool:
            return None
        pc, visit, _base = rng.choice(pool)
        value = _oob_address(rng)
        return FaultSpec(fault_id, bench, fault_class, pc, visit,
                         guarded=True, detail=(("value", value),))

    if fault_class == "wild_jump":
        if not profile.jumps:
            return None
        pc, visit, _ = rng.choice(profile.jumps)
        value = _oob_address(rng)
        return FaultSpec(fault_id, bench, fault_class, pc, visit,
                         guarded=True, detail=(("value", value),))

    if fault_class in ("stack_overrun", "heap_overrun"):
        pool = profile.loads + profile.stores
        if not pool:
            return None
        pc, visit, base = rng.choice(pool)
        delta = rng.choice(_OVERRUN_DELTAS)
        signed_delta = -delta if fault_class == "stack_overrun" else delta
        corrupted = (base + signed_delta) & MASK64
        guarded = (corrupted >> SEGMENT_SHIFT) != data_seg
        return FaultSpec(fault_id, bench, fault_class, pc, visit,
                         guarded=guarded, detail=(("delta", signed_delta),))

    if fault_class == "corrupt_disp":
        if not profile.mem_sites:
            return None
        pc = rng.choice(profile.mem_sites)
        instr = image.instructions[image.index_of_addr[pc]]
        new_imm = instr.imm
        while new_imm == instr.imm:
            new_imm = rng.randrange(-(1 << 15), 1 << 15)
        # The displacement never reaches the segment check (MFI tests the
        # base *register*), so this class is unguarded by construction.
        return FaultSpec(fault_id, bench, fault_class, pc, visit=0,
                         guarded=False, detail=(("new_imm", new_imm),))

    if fault_class == "bitflip":
        if not profile.executed:
            return None
        pc = rng.choice(profile.executed)
        instr = image.instructions[image.index_of_addr[pc]]
        word = encode(instr)
        for bit in rng.sample(range(32), 32):
            flipped = word ^ (1 << bit)
            try:
                mutated = decode(flipped)
            except ValueError:
                continue
            if mutated != instr:
                return FaultSpec(fault_id, bench, fault_class, pc, visit=0,
                                 guarded=False, detail=(("bit", bit),))
        return None

    raise CampaignError(f"unknown fault class {fault_class!r}; "
                        f"choose from {FAULT_CLASSES}")


# ----------------------------------------------------------------------
# Applying a fault
# ----------------------------------------------------------------------
def state_mutator(spec: FaultSpec) -> Optional[Callable]:
    """The register corruption to apply at the fault's dynamic site, or
    ``None`` for image-mutation classes."""
    detail = spec.detail_dict()
    if spec.fault_class in ("oob_load", "oob_store", "wild_jump"):
        value = detail["value"]

        def corrupt(machine, reg):
            machine.regs[reg] = value

        return corrupt
    if spec.fault_class in ("stack_overrun", "heap_overrun"):
        delta = detail["delta"]

        def overrun(machine, reg):
            machine.regs[reg] = (machine.regs[reg] + delta) & MASK64

        return overrun
    return None


def mutate_image(spec: FaultSpec, image: ProgramImage) -> ProgramImage:
    """Apply an image-mutation fault; identity for state-corruption ones."""
    detail = spec.detail_dict()
    if spec.fault_class == "corrupt_disp":
        index = image.index_of_addr[spec.site_pc]
        instr = image.instructions[index]
        return replace_instruction(
            image, index, instr.with_fields(imm=detail["new_imm"])
        )
    if spec.fault_class == "bitflip":
        index = image.index_of_addr[spec.site_pc]
        instr = image.instructions[index]
        mutated = decode(encode(instr) ^ (1 << detail["bit"]))
        return replace_instruction(image, index, mutated)
    return image
